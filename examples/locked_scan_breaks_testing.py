#!/usr/bin/env python3
"""Why scan locking matters: fault testing through a locked chain.

Run:  python examples/locked_scan_breaks_testing.py

Scan chains exist for manufacturing test.  This example closes the loop
between the repo's ATPG substrate and the scan defenses:

1. generate stuck-at test patterns for a circuit with SAT-based ATPG;
2. apply them through the chain as a trusted tester (correct test key)
   -- every response matches the good machine, so testing works;
3. apply them as an *unauthenticated* tester on the EFF-Dyn locked chip
   -- responses are scrambled and unusable;
4. run DynUnlock, recover the seed, and predict every scrambled response
   exactly -- scan-based testing (and attack) works again.
"""

import random

from repro.atpg.atpg import generate_test_set
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import enumerate_faults
from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.core.modeling import build_combinational_model
from repro.locking.effdyn import lock_with_effdyn
from repro.netlist.transform import extract_combinational_core
from repro.sim.logicsim import CombinationalSimulator


def main() -> None:
    rng = random.Random(0xA7B6)
    config = GeneratorConfig(n_flops=8, n_inputs=5, n_outputs=4)
    netlist = generate_circuit(config, rng, name="dut")
    core, ppi_nets, ppo_nets = extract_combinational_core(netlist)

    # --- 1. ATPG --------------------------------------------------------
    faults = list(enumerate_faults(core, include_inputs=False))[:60]
    atpg = generate_test_set(core, faults)
    print(f"ATPG: {len(atpg.patterns)} patterns, "
          f"{len(atpg.detected)}/{len(faults)} faults detected, "
          f"{len(atpg.untestable)} untestable "
          f"(coverage {atpg.coverage:.0%})")

    lock = lock_with_effdyn(netlist, key_bits=4, rng=rng)
    fsim = FaultSimulator(core)
    total = len(atpg.patterns)

    def expected_response(pattern) -> tuple[list[int], list[int]]:
        """Good-machine next state (b') and POs for an ATPG pattern."""
        values = fsim.good_outputs(pattern)  # ordered: ppo then POs
        n_state = len(ppo_nets)
        return values[:n_state], values[n_state:]

    # --- 2. trusted tester ----------------------------------------------
    trusted = lock.make_oracle(test_key=list(lock.secret_key))
    ok = 0
    for pattern in atpg.patterns:
        state = [pattern[n] for n in ppi_nets]
        pis = [pattern[n] for n in netlist.inputs]
        want_b, want_po = expected_response(pattern)
        response = trusted.query(state, pis)
        ok += response.scan_out == want_b and response.primary_outputs == want_po
    print(f"trusted tester (correct test key): {ok}/{total} "
          "responses match the good machine -- testing works")

    # --- 3. unauthenticated tester ---------------------------------------
    oracle = lock.make_oracle()
    usable = 0
    for pattern in atpg.patterns:
        state = [pattern[n] for n in ppi_nets]
        pis = [pattern[n] for n in netlist.inputs]
        want_b, _ = expected_response(pattern)
        usable += oracle.query(state, pis).scan_out == want_b
    print(f"unauthenticated tester (locked scan): {usable}/{total} "
          "responses interpretable -- testing is broken")

    # --- 4. attack, then test again ---------------------------------------
    result = dynunlock(netlist, lock.public_view(), oracle,
                       DynUnlockConfig(timeout_s=300))
    print(f"DynUnlock: success={result.success}, seed recovered exactly="
          f"{result.recovered_seed == list(lock.seed)}")

    model = build_combinational_model(
        netlist, lock.spec, lock.lfsr_taps, lock.key_bits
    )
    sim = CombinationalSimulator(model.netlist)
    regained = 0
    for pattern in atpg.patterns:
        state = [pattern[n] for n in ppi_nets]
        pis = [pattern[n] for n in netlist.inputs]
        observed = oracle.query(state, pis)
        inputs = dict(zip(model.a_inputs, state))
        inputs.update(zip(model.pi_inputs, pis))
        inputs.update(zip(model.key_inputs, result.recovered_seed))
        values = sim.run(inputs)
        regained += [values[n] for n in model.b_outputs] == observed.scan_out
    print(f"attacker with recovered seed: {regained}/{total} "
          "responses predicted exactly -- scan access regained")


if __name__ == "__main__":
    main()
