#!/usr/bin/env python3
"""Reproduce Table I: every scan-locking defense falls to its attack.

Run:  python examples/defense_evolution.py

Locks one circuit four ways -- EFF (static), DFS (blocked scan-out),
DOS (per-pattern dynamic key), EFF-Dyn (per-cycle dynamic key) -- and
breaks each with the published attack reimplemented in this repo:
ScanSAT, shift-and-leak, ScanSAT-dyn, and DynUnlock respectively.
"""

import random

from repro.attack.scansat import scansat_attack_on_lock
from repro.attack.scansat_dyn import scansat_dyn_attack_on_lock
from repro.attack.shift_and_leak import shift_and_leak_on_lock
from repro.bench_suite.registry import build_benchmark_netlist
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.dfs import lock_with_dfs
from repro.locking.dos import lock_with_dos
from repro.locking.eff import lock_with_eff
from repro.locking.effdyn import lock_with_effdyn
from repro.reports.tables import render_table


def main() -> None:
    netlist = build_benchmark_netlist("s13207", scale=16)
    key_bits = 6
    print(f"target: {netlist.name} at 1/16 scale "
          f"({netlist.n_dffs} scan flops), {key_bits}-bit keys\n")
    rows = []

    eff = lock_with_eff(netlist, key_bits=key_bits, rng=random.Random(1))
    r = scansat_attack_on_lock(eff)
    rows.append(["EFF (Jan 2018)", "static", "ScanSAT",
                 "broken" if r.success else "HELD",
                 f"{r.iterations} it, {r.runtime_s:.1f}s"])
    print(f"EFF      -> ScanSAT        : key recovered = "
          f"{r.recovered_key == list(eff.secret_key)}")

    dfs = lock_with_dfs(netlist, key_bits=key_bits, rng=random.Random(2))
    r = shift_and_leak_on_lock(dfs)
    rows.append(["DFS (May 2018)", "static", "shift-and-leak",
                 "broken" if r.success else "HELD",
                 f"{r.iterations} it, {r.runtime_s:.1f}s"])
    print(f"DFS      -> shift-and-leak : logic key consistent = "
          f"{list(dfs.rll.secret_key) in r.key_candidates}")

    dos = lock_with_dos(netlist, key_bits=key_bits, rng=random.Random(3),
                        period_p=1)
    r = scansat_dyn_attack_on_lock(dos)
    rows.append(["DOS (Sep 2018)", "dynamic/pattern", "ScanSAT-dyn",
                 "broken" if r.success else "HELD",
                 f"{r.iterations} it, {r.runtime_s:.1f}s"])
    print(f"DOS      -> ScanSAT-dyn    : seed recovered = "
          f"{r.recovered_seed == list(dos.seed)}")

    effdyn = lock_with_effdyn(netlist, key_bits=key_bits,
                              rng=random.Random(4))
    result = dynunlock(netlist, effdyn.public_view(), effdyn.make_oracle(),
                       DynUnlockConfig(timeout_s=300))
    rows.append(["EFF-Dyn (May 2019)", "dynamic/cycle", "DynUnlock",
                 "broken" if result.success else "HELD",
                 f"{result.iterations} it, {result.runtime_s:.1f}s"])
    print(f"EFF-Dyn  -> DynUnlock      : seed recovered = "
          f"{result.recovered_seed == list(effdyn.seed)}")

    print()
    print(render_table(
        ["Defense", "Obfuscation", "Attack", "Outcome", "Cost"],
        rows,
        title="Table I: evolution of scan locking (reproduced)",
    ))


if __name__ == "__main__":
    main()
