#!/usr/bin/env python3
"""Extension: DynUnlock against a multi-chain scan architecture.

Run:  python examples/multichain_attack.py

Industrial designs use many parallel scan chains.  The paper evaluates a
single chain, but its insight -- the scramble is linear in the one LFSR
seed -- extends directly: all chains shift on the same clock, so every
key-gate crossing still maps to a known keystream cycle.  This example
locks a circuit with three chains of different lengths, key gates spread
across all of them, and recovers the seed with the generalised model.
"""

import random

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.core.multichain import dynunlock_multichain
from repro.prng.lfsr import FibonacciLfsr, Keystream
from repro.prng.polynomials import default_taps
from repro.scan.multichain import MultiChainScanOracle, MultiChainSpec
from repro.util.bitvec import bits_to_str, random_bits


def main() -> None:
    rng = random.Random(0x3C)
    config = GeneratorConfig(n_flops=14, n_inputs=4, n_outputs=3)
    netlist = generate_circuit(config, rng, name="soc_block")

    spec = MultiChainSpec(
        chain_lengths=(6, 5, 3),
        keygates=((0, 1), (0, 4), (1, 0), (1, 3), (2, 1)),
    )
    width = spec.n_keygates
    taps = default_taps(width)
    secret_seed = random_bits(width, rng)
    while not any(secret_seed):
        secret_seed = random_bits(width, rng)

    print(f"design: {netlist.n_dffs} flops in {spec.n_chains} chains "
          f"of lengths {spec.chain_lengths}")
    print(f"key gates (chain, position): {spec.keygates}")
    print(f"{width}-bit LFSR, taps {taps}, secret seed "
          f"{bits_to_str(secret_seed)}")

    oracle = MultiChainScanOracle(
        netlist,
        spec,
        Keystream(FibonacciLfsr(width=width, seed_bits=secret_seed,
                                taps=taps)),
    )

    probe = random_bits(netlist.n_dffs, rng)
    locked_out = oracle.query(probe).scan_out
    oracle.obfuscation_enabled = False
    clean_out = oracle.query(probe).scan_out
    oracle.obfuscation_enabled = True
    print(f"\nprobe pattern:      {bits_to_str(probe)}")
    print(f"scrambled response: {bits_to_str(locked_out)}")
    print(f"clean response:     {bits_to_str(clean_out)}")

    result = dynunlock_multichain(
        netlist, spec, taps, width, oracle, timeout_s=300
    )
    print(f"\nattack success:   {result.success}")
    print(f"SAT iterations:   {result.iterations}")
    print(f"seed candidates:  {len(result.seed_candidates)}")
    print(f"recovered seed:   {bits_to_str(result.recovered_seed)}")
    print(f"exact match:      {result.recovered_seed == secret_seed}")


if __name__ == "__main__":
    main()
