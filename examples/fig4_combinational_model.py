#!/usr/bin/env python3
"""Reproduce Fig. 4: combinational modeling of a dynamically locked scan.

Run:  python examples/fig4_combinational_model.py

Fig. 4 of the paper shows the s208 example of Fig. 1 remodelled as a
combinational circuit: the scan-in/scan-out scrambling becomes XOR
networks over the LFSR seed bits (s0, s1, s2), which become the key
inputs of a SAT-attack-compatible locked circuit.

This script builds that model, prints the derived XOR overlay (which
keystream bits touch each chain position, and what that means as a GF(2)
expression over the seed), and verifies model == hardware on random
patterns.
"""

import random

import numpy as np

from repro.bench_suite.iscas import s208_like_netlist
from repro.core.analysis import overlay_matrices
from repro.core.modeling import (
    build_combinational_model,
    derive_shift_in_crossings,
    derive_shift_out_crossings,
)
from repro.locking.effdyn import EffDynLock, lock_with_effdyn
from repro.scan.chain import ScanChainSpec
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import bits_to_str, random_bits


def seed_expression(row: np.ndarray) -> str:
    terms = [f"s{j}" for j in np.nonzero(row)[0]]
    return " ^ ".join(terms) if terms else "0"


def main() -> None:
    netlist = s208_like_netlist()
    rng = random.Random(4)
    spec = ScanChainSpec.from_paper_positions(8, [1, 2, 5])
    base = lock_with_effdyn(netlist, key_bits=3, rng=rng)
    lock = EffDynLock(
        netlist=netlist, spec=spec, lfsr_taps=base.lfsr_taps,
        seed=base.seed, secret_key=base.secret_key,
    )
    print("Fig. 4 reproduction: combinational model with seed key inputs")
    print(f"chain: 8 flops, key gates after positions "
          f"{spec.keygate_positions}; 3-bit LFSR taps {lock.lfsr_taps}\n")

    # Which (cycle, gate) keystream bits scramble each position:
    crossings_in = derive_shift_in_crossings(spec)
    crossings_out = derive_shift_out_crossings(spec)
    print("shift-in overlay (a -> a'):")
    for l, crossing in enumerate(crossings_in):
        pretty = ", ".join(f"k[{c}][{g}]" for c, g in sorted(crossing)) or "-"
        print(f"  a'[{l}] = a[{l}] ^ {pretty}")
    print("shift-out overlay (b' -> b):")
    for l, crossing in enumerate(crossings_out):
        pretty = ", ".join(f"k[{c}][{g}]" for c, g in sorted(crossing)) or "-"
        print(f"  b[{l}] = b'[{l}] ^ {pretty}")

    # The same overlay reduced to GF(2) expressions over the seed bits --
    # this is what the model's XOR networks compute.
    m_in, m_out = overlay_matrices(spec, lock.lfsr_taps, 3)
    print("\nreduced to seed expressions (the model's XOR gates):")
    for l in range(8):
        print(f"  a'[{l}] = a[{l}] ^ ({seed_expression(m_in.data[l])})")

    model = build_combinational_model(
        netlist, spec, lock.lfsr_taps, key_bits=3
    )
    print(f"\nmodel netlist: {model.netlist.n_gates} gates, key inputs "
          f"{model.key_inputs} (the seed bits of Fig. 4)")

    # Verify model(true seed) == hardware on random patterns.
    oracle = lock.make_oracle()
    sim = CombinationalSimulator(model.netlist)
    print(f"\nverification against the chip (secret seed "
          f"{bits_to_str(lock.seed)}):")
    for trial in range(3):
        pattern = random_bits(8, rng)
        pis = random_bits(len(netlist.inputs), rng)
        response = oracle.query(pattern, pis)
        inputs = dict(zip(model.a_inputs, pattern))
        inputs.update(zip(model.pi_inputs, pis))
        inputs.update(zip(model.key_inputs, lock.seed))
        values = sim.run(inputs)
        predicted = [values[n] for n in model.b_outputs]
        status = "OK" if predicted == response.scan_out else "MISMATCH"
        print(f"  pattern {bits_to_str(pattern)}: model "
              f"{bits_to_str(predicted)} vs chip "
              f"{bits_to_str(response.scan_out)}  [{status}]")
        assert predicted == response.scan_out


if __name__ == "__main__":
    main()
