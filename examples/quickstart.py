#!/usr/bin/env python3
"""Quickstart: lock a circuit with EFF-Dyn, then break it with DynUnlock.

Run:  python examples/quickstart.py

Walks the full story in five steps on the genuine ISCAS-89 s27 circuit
plus a mid-size synthetic benchmark:

1. take a sequential netlist;
2. lock its scan chain with EFF-Dyn (XOR key gates + per-cycle LFSR key);
3. show that an unauthenticated tester sees scrambled scan data;
4. run DynUnlock, which recovers the secret LFSR seed from the oracle;
5. verify the recovered seed predicts the chip's scrambled responses,
   i.e. the attacker now has transparent scan access.
"""

import random

from repro import lock_with_effdyn, s27_netlist
from repro.bench_suite.registry import build_benchmark_netlist
from repro.core.dynunlock import DynUnlock, DynUnlockConfig
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import bits_to_str, random_bits


def attack_one(netlist, key_bits: int, lock_seed: int) -> None:
    print(f"\n=== {netlist.name}: {netlist.n_dffs} scan flops, "
          f"{key_bits}-bit dynamic key ===")
    rng = random.Random(lock_seed)
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
    print(f"key gates after flop positions: {lock.spec.keygate_positions}")
    print(f"LFSR taps (public, reverse-engineered): {lock.lfsr_taps}")
    print(f"secret seed (hidden from attacker):     "
          f"{bits_to_str(lock.seed)}")

    # Step 3: the scrambling is real -- compare locked vs clean responses.
    oracle = lock.make_oracle()
    probe = random_bits(netlist.n_dffs, rng)
    locked_view = oracle.query(probe).scan_out
    clean_view = oracle.unlocked_query(probe).scan_out
    print(f"scan-out, unauthenticated tester: {bits_to_str(locked_view)}")
    print(f"scan-out, trusted tester:         {bits_to_str(clean_view)}")

    # Step 4: the attack.
    result = DynUnlock(
        netlist, lock.public_view(), oracle, DynUnlockConfig(timeout_s=300)
    ).run()
    print(f"attack success:    {result.success}")
    print(f"SAT iterations:    {result.iterations}")
    print(f"seed candidates:   {result.n_seed_candidates}")
    print(f"oracle queries:    {result.oracle_queries}")
    print(f"execution time:    {result.runtime_s:.2f}s")
    print(f"recovered seed:    {bits_to_str(result.recovered_seed)}")
    print(f"exact seed match:  {result.recovered_seed == list(lock.seed)}")

    # Step 5: transparent scan access -- predict fresh scrambled responses.
    sim = CombinationalSimulator(result.model.netlist)
    hits = 0
    for _ in range(20):
        pattern = random_bits(netlist.n_dffs, rng)
        pis = random_bits(len(netlist.inputs), rng)
        response = oracle.query(pattern, pis)
        inputs = dict(zip(result.model.a_inputs, pattern))
        inputs.update(zip(result.model.pi_inputs, pis))
        inputs.update(zip(result.model.key_inputs, result.recovered_seed))
        values = sim.run(inputs)
        predicted = [values[n] for n in result.model.b_outputs]
        hits += predicted == response.scan_out
    print(f"response prediction with recovered seed: {hits}/20 exact")


def main() -> None:
    attack_one(s27_netlist(), key_bits=2, lock_seed=7)
    attack_one(build_benchmark_netlist("s5378", scale=16), key_bits=8,
               lock_seed=1)


if __name__ == "__main__":
    main()
