#!/usr/bin/env python3
"""Reproduce Fig. 1: scan obfuscation of an s208-profile circuit.

Run:  python examples/fig1_s208_locking.py

The paper's Fig. 1 shows an 8-flop scan chain with XOR key gates inserted
after the 1st, 2nd and 5th scan flops.  This script builds exactly that
geometry on the s208 stand-in circuit, emits the *structural* locked
netlist (scan muxes + key gates, exportable as .bench), and demonstrates
the per-cycle scrambling by driving the gate-level design clock by clock.
"""

import random

from repro.bench_suite.iscas import s208_like_netlist
from repro.locking.effdyn import EffDynLock, lock_with_effdyn
from repro.netlist.bench_io import write_bench
from repro.scan.chain import ScanChainSpec
from repro.scan.oracle import ScanOracle
from repro.scan.structural import StructuralScanSimulator, build_scan_netlist
from repro.util.bitvec import bits_to_str, random_bits


def main() -> None:
    netlist = s208_like_netlist()
    rng = random.Random(0x208)

    # Fig. 1 geometry: gates after scan flops 1, 2, 5 (1-indexed).
    spec = ScanChainSpec.from_paper_positions(8, [1, 2, 5])
    base = lock_with_effdyn(netlist, key_bits=3, rng=rng)
    lock = EffDynLock(
        netlist=netlist,
        spec=spec,
        lfsr_taps=base.lfsr_taps,
        seed=base.seed,
        secret_key=base.secret_key,
    )
    print("Fig. 1 reproduction: s208-profile circuit, 8 scan flops")
    print(f"key gates after flops (0-indexed positions): "
          f"{spec.keygate_positions}")
    print(f"3-bit LFSR, taps {lock.lfsr_taps}, secret seed "
          f"{bits_to_str(lock.seed)}")

    # Structural view: muxes + XOR key gates, like the figure.
    locked, pins = build_scan_netlist(netlist, spec)
    print(f"\nstructural locked netlist: {locked.n_gates} gates "
          f"({netlist.n_gates} functional + {netlist.n_dffs} scan muxes "
          f"+ {spec.n_keygates} key gates + 1 SO buffer)")
    print(f"test pins: SE={pins.scan_enable} SI={pins.scan_in} "
          f"SO={pins.scan_out} keys={pins.key_inputs}")

    bench_text = write_bench(locked)
    print("\nfirst lines of the exported .bench:")
    for line in bench_text.splitlines()[:12]:
        print(f"  {line}")

    # Drive the gate-level design through one test operation and compare
    # with the protocol-level oracle -- they are bit-identical.
    structural = StructuralScanSimulator(
        locked, pins, spec, lock.keystream(), netlist.inputs
    )
    protocol = ScanOracle(netlist, spec, lock.keystream())
    pattern = random_bits(8, rng)
    pis = random_bits(len(netlist.inputs), rng)
    s_resp = structural.query(pattern, pis)
    p_resp = protocol.query(pattern, pis)
    print(f"\npattern shifted in:              {bits_to_str(pattern)}")
    print(f"gate-level scrambled scan-out:   {bits_to_str(s_resp.scan_out)}")
    print(f"protocol-level scrambled output: {bits_to_str(p_resp.scan_out)}")
    assert s_resp.scan_out == p_resp.scan_out
    clean = protocol.unlocked_query(pattern, pis)
    print(f"what a trusted tester would see: {bits_to_str(clean.scan_out)}")


if __name__ == "__main__":
    main()
