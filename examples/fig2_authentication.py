#!/usr/bin/env python3
"""Reproduce Fig. 2: the EFF-Dyn test-authentication scheme.

Run:  python examples/fig2_authentication.py

Fig. 2 of the paper shows a comparator checking the external test key
against the TPM-stored secret key, and a key selector routing either the
secret key (match) or the per-cycle PRNG output (mismatch) to the key
gates.  This script exercises all the paths: trusted tester, attacker,
and the capture-cycle behaviour where the TPM always wins.
"""

import random

from repro.bench_suite.iscas import s27_netlist
from repro.locking.effdyn import lock_with_effdyn
from repro.locking.tpm import AuthenticationScheme, TamperProofMemory
from repro.util.bitvec import bits_to_str, random_bits


def main() -> None:
    rng = random.Random(2)
    netlist = s27_netlist()
    lock = lock_with_effdyn(netlist, key_bits=2, rng=rng)
    secret_key = list(lock.secret_key)
    print(f"TPM secret key: {bits_to_str(secret_key)} "
          "(known only to the design house and trusted testers)")

    auth = AuthenticationScheme(TamperProofMemory.with_key(secret_key))
    prng = lock.keystream()

    # --- Trusted tester path ------------------------------------------
    print("\n[trusted tester] supplies the correct test key")
    matched = auth.authenticate(secret_key)
    print(f"comparator output: {'match' if matched else 'MISMATCH'}")
    for cycle in range(3):
        key = auth.select_key(scan_enable=1, prng_key=prng.next_key())
        print(f"  shift cycle {cycle}: key gates driven by "
              f"{bits_to_str(key)} (the secret key, every cycle)")

    # --- Attacker path -------------------------------------------------
    print("\n[attacker] supplies a wrong test key")
    guess = [1 - b for b in secret_key]
    matched = auth.authenticate(guess)
    print(f"comparator output: {'match' if matched else 'MISMATCH'}")
    prng.restart()
    for cycle in range(4):
        key = auth.select_key(scan_enable=1, prng_key=prng.next_key())
        print(f"  shift cycle {cycle}: key gates driven by "
              f"{bits_to_str(key)} (PRNG output -- changes every cycle)")

    # --- Capture: TPM always controls the gates (SE low) ---------------
    print("\n[capture cycle] SE low: the TPM key drives the gates for")
    print("everyone, so functional operation is never corrupted:")
    key = auth.select_key(scan_enable=0, prng_key=prng.next_key())
    print(f"  capture: key gates driven by {bits_to_str(key)}")

    # --- Effect on actual scan data ------------------------------------
    print("\neffect on scan responses for the same pattern:")
    pattern = random_bits(3, rng)
    trusted = lock.make_oracle(test_key=secret_key)
    attacker = lock.make_oracle(test_key=guess)
    print(f"  pattern:         {bits_to_str(pattern)}")
    print(f"  trusted tester:  "
          f"{bits_to_str(trusted.query(pattern).scan_out)}")
    print(f"  attacker:        "
          f"{bits_to_str(attacker.query(pattern).scan_out)}")


if __name__ == "__main__":
    main()
