#!/usr/bin/env python3
"""Table III in miniature: attack cost and candidates vs key size.

Run:  python examples/key_size_sweep.py

Sweeps the dynamic key width on one circuit (like the paper's Table III,
which sweeps 144..368-bit keys on its three largest circuits) and prints
the resulting seed-candidate counts, iteration counts and run times plus
an ASCII trend chart.  The expected shape, reproduced here: the attack
keeps succeeding at every key size; candidate counts stay tiny powers of
two; time grows with the key width.
"""

import random

from repro.bench_suite.registry import build_benchmark_netlist
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.effdyn import lock_with_effdyn
from repro.reports.figures import ascii_bar_chart
from repro.reports.tables import render_table


def main() -> None:
    netlist = build_benchmark_netlist("s15850", scale=16)
    key_sizes = [6, 10, 14, 18, 22]
    print(f"target: {netlist.name} at 1/16 scale "
          f"({netlist.n_dffs} scan flops); sweeping key sizes "
          f"{key_sizes}\n")

    rows = []
    times = []
    for key_bits in key_sizes:
        lock = lock_with_effdyn(netlist, key_bits=key_bits,
                                rng=random.Random(key_bits))
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle(),
                           DynUnlockConfig(timeout_s=600))
        exact = result.recovered_seed == list(lock.seed)
        rows.append([key_bits, result.n_seed_candidates, result.iterations,
                     result.runtime_s, "yes" if exact else "no"])
        times.append(result.runtime_s)
        print(f"  key={key_bits:3}: candidates={result.n_seed_candidates} "
              f"iters={result.iterations} t={result.runtime_s:.1f}s "
              f"exact={exact}")

    print()
    print(render_table(
        ["Key bits", "# Seed candidates", "# Iterations", "Time (s)",
         "Exact seed"],
        rows,
        title="Key-size sweep (Table III shape)",
    ))
    print()
    print(ascii_bar_chart(key_sizes, times,
                          title="execution time vs key size", unit="s"))


if __name__ == "__main__":
    main()
