#!/usr/bin/env python
"""Gate CI on benchmark timing: fail when a run regresses past a baseline.

Usage::

    python scripts/check_bench_regression.py \
        benchmarks/baselines/table2_quick.json results/BENCH_table2.json \
        [--threshold 0.25] [--metric total_attack_time_s]

Compares the chosen metric of a freshly emitted runner artifact (the
``meta`` block of a ``BENCH_*.json`` written by ``dynunlock ... --emit-json``)
against a checked-in baseline JSON of the same shape.  Exit code 1 when

    current > baseline * (1 + threshold)

The baseline also pins the row-shape invariants (benchmark names and
the Success column) so a regression in *what* was computed -- not just
how fast -- fails too.  Refresh the baseline by copying a representative
artifact over it (see docs/reproducing.md).

Stdlib only: CI calls this before the package's dependencies matter.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_meta(path: Path) -> dict:
    """Read an artifact/baseline JSON, flattening the v3 envelope.

    Schema v3 artifacts nest headers/rows/meta under ``payload``;
    earlier versions (including checked-in baselines) keep them at the
    top level.  Both normalise to the flat view here, so a baseline and
    a fresh artifact from different schema generations stay comparable.
    """
    data = json.loads(path.read_text())
    payload = data.get("payload")
    if isinstance(payload, dict):
        flat = {k: v for k, v in data.items() if k != "payload"}
        flat.update(payload)
        data = flat
    if "meta" not in data:
        raise SystemExit(f"{path}: no 'meta' block -- not a runner artifact")
    return data


def row_shape(data: dict) -> list:
    """Per-row (name, success) pairs: what must not change between runs.

    The first cell of every row is the benchmark name; the success
    column, when present, is located through the headers.  A run that
    got faster by *failing* must not pass the timing gate.
    """
    headers = data.get("headers", [])
    success_index = headers.index("Success") if "Success" in headers else None
    return [
        (row[0], None if success_index is None else row[success_index])
        for row in data.get("rows", [])
    ]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--metric",
        default="total_attack_time_s",
        help="meta key to compare (default total_attack_time_s)",
    )
    args = parser.parse_args(argv)

    baseline = load_meta(args.baseline)
    current = load_meta(args.current)

    base_value = baseline["meta"].get(args.metric)
    cur_value = current["meta"].get(args.metric)
    if base_value is None or cur_value is None:
        raise SystemExit(f"metric {args.metric!r} missing from meta block(s)")

    failures = []
    if row_shape(baseline) != row_shape(current):
        failures.append(
            f"row set or success column changed: baseline "
            f"{row_shape(baseline)} vs current {row_shape(current)}"
        )
    n_cached = current["meta"].get("n_cached", 0)
    if n_cached:
        # Cached cells replay the per-cell attack times *measured when
        # they were computed*, and the result store namespaces entries
        # by the src/repro fingerprint -- so the timing metric still
        # reflects the current code and stays comparable.  Note it for
        # the log rather than failing (CI keys its actions/cache on the
        # same fingerprint, so doc-only pushes are fully cached).
        print(
            f"note: {n_cached}/{current['meta'].get('n_jobs_total', '?')} "
            "cell(s) replayed from the result store (times as measured "
            "when first computed)"
        )

    limit = base_value * (1.0 + args.threshold)
    ratio = cur_value / base_value if base_value else float("inf")
    print(
        f"{args.metric}: baseline={base_value:.2f}s current={cur_value:.2f}s "
        f"({ratio:.2f}x, limit {limit:.2f}s at +{args.threshold:.0%})"
    )
    if cur_value > limit:
        failures.append(
            f"{args.metric} regressed: {cur_value:.2f}s > {limit:.2f}s "
            f"(baseline {base_value:.2f}s + {args.threshold:.0%})"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: within budget")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
