#!/usr/bin/env python
"""End-to-end smoke test for the attack-as-a-service stack (CI gate).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py \
        [--workdir .service_smoke] [--experiment table2] \
        [--benchmarks s5378] [--profile quick] [--jobs 1]

Starts a :class:`repro.service.ReproService` in-process on a free port
with a fresh result store, then exercises the full client stack the way
a real deployment would:

1. enumerate a small experiment grid via ``repro.api.grid_specs``;
2. push every spec through a :class:`BatchingClient` (background
   thread, batched POSTs) and wait for completion over HTTP;
3. push the *same* specs again and require the server to dedupe every
   one of them against the live/finished records -- the second pass
   must not compute anything;
4. replay the specs through the in-process ``repro.api.submit_jobs``
   path against the *same* store and require byte-identical results
   (every outcome a cache hit serving the bytes the service stored);
5. cross-check the dedupe accounting in the server's Prometheus
   metrics (``repro_service_jobs_total`` / ``repro_jobs_total``).

The server's ``metrics.prom``/``spans.jsonl`` land in ``--workdir`` so
CI can upload them as artifacts.  Exit code 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import api
from repro.runner.stores import open_store
from repro.service import BatchingClient, ReproService, ServiceClient

FAILURES: list[str] = []


def check(condition: bool, message: str) -> None:
    """Record (and print) one assertion; the exit code folds them up."""
    status = "ok" if condition else "FAIL"
    print(f"[{status}] {message}")
    if not condition:
        FAILURES.append(message)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        type=Path,
        default=Path(".service_smoke"),
        help="store + metrics live here (default .service_smoke)",
    )
    parser.add_argument("--experiment", default="table2")
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=["s5378"],
        help="benchmark subset for the grid (default s5378)",
    )
    parser.add_argument("--profile", default="quick")
    parser.add_argument(
        "--jobs", type=int, default=1, help="scheduler processes on the server"
    )
    parser.add_argument("--batch-size", type=int, default=4)
    parser.add_argument("--wait-timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    args.workdir.mkdir(parents=True, exist_ok=True)
    specs = api.grid_specs(
        args.experiment, args.profile, benchmarks=args.benchmarks
    )
    print(
        f"grid {args.experiment} (profile={args.profile}, "
        f"benchmarks={','.join(args.benchmarks)}): {len(specs)} spec(s)"
    )

    store = open_store(args.workdir / "cache", backend="json")
    service = ReproService(
        port=0,
        jobs=args.jobs,
        store=store,
        metrics_dir=str(args.workdir),
    ).start()
    print(f"service listening on {service.url}")
    try:
        sync = ServiceClient(service.url, timeout_s=60.0)

        # Pass 1: batching client, fresh store -- everything computes.
        with BatchingClient(
            client=sync, batch_size=args.batch_size, linger_s=0.05
        ) as batching:
            for spec in specs:
                batching.submit(spec)
            batching.flush(timeout_s=args.wait_timeout)
            job_ids = batching.job_ids()
        check(
            len(job_ids) == len(specs),
            f"first pass created {len(job_ids)} distinct job(s) "
            f"for {len(specs)} spec(s)",
        )
        views = sync.wait(job_ids, timeout_s=args.wait_timeout, poll_s=0.1)
        check(
            all(v["status"] == "done" for v in views.values()),
            "every first-pass job finished 'done'",
        )

        # Pass 2: identical resubmission -- the server must dedupe all.
        second = sync.submit(specs)
        check(
            all(view["deduped"] for view in second),
            "second submission of identical specs deduped every job",
        )
        check(
            len(service.store) == len(specs),
            f"store holds exactly {len(specs)} entr(ies) after both passes "
            f"(found {len(service.store)})",
        )

        # Byte-identical: the in-process facade against the same store
        # must replay every cell from cache, serving the stored bytes.
        results = {job_id: sync.result(job_id) for job_id in job_ids}
        report = api.submit_jobs(specs, store=service.store)
        check(
            all(outcome.cached for outcome in report.outcomes),
            "in-process replay was served entirely from the service's store",
        )
        mismatches = [
            spec.spec_hash[:16]
            for spec, outcome in zip(specs, report.outcomes)
            if json.dumps(results[spec.spec_hash[:16]], sort_keys=True)
            != json.dumps(outcome.result, sort_keys=True)
        ]
        check(
            not mismatches,
            "service results byte-identical to the in-process api path"
            + (f" (mismatched: {', '.join(mismatches)})" if mismatches else ""),
        )

        # The server's own accounting must agree with what we observed.
        metrics = service.session.metrics
        jobs_total = metrics.counter("repro_service_jobs_total")
        check(
            jobs_total.value(disposition="new") == len(specs),
            f"repro_service_jobs_total{{disposition=new}} == {len(specs)}",
        )
        check(
            jobs_total.value(disposition="deduped") == len(specs),
            f"repro_service_jobs_total{{disposition=deduped}} == {len(specs)}",
        )
        check(
            metrics.counter("repro_jobs_total").value(
                experiment=args.experiment, status="computed"
            )
            == len(specs),
            f"repro_jobs_total{{status=computed}} == {len(specs)} "
            "(the second pass computed nothing)",
        )
        prom = sync.metrics_text()
        check(
            "repro_service_requests_total" in prom,
            "/metrics exposes the request counter",
        )
        check(len(sync.spans()) > 0, "/v1/spans streams the session's spans")
    finally:
        service.close()

    check(
        (args.workdir / "metrics.prom").is_file(),
        f"server left metrics.prom under {args.workdir} for CI upload",
    )
    if FAILURES:
        print(f"\nservice smoke: {len(FAILURES)} failure(s)", file=sys.stderr)
        for failure in FAILURES:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nservice smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
