"""Projected model enumeration.

After DynUnlock's DIP loop converges, the accumulated constraint formula
may still admit several seed assignments; the paper reports these as "seed
candidates" (Tables II and III).  Enumeration projects models onto the
seed variables and blocks each found projection with one clause.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.sat.solver import CdclSolver


def enumerate_models(
    solver: CdclSolver,
    project_vars: Sequence[int],
    limit: int = 1024,
    assumptions: Sequence[int] = (),
    max_conflicts_per_model: int | None = None,
    group: int | None = None,
) -> Iterator[list[int]]:
    """Yield distinct assignments to ``project_vars`` (bit lists).

    By default this mutates the solver permanently: after enumeration the
    solver excludes every yielded projection.  Callers holding a live
    :class:`repro.sat.incremental.IncrementalSolver` session can instead
    pass an activation ``group`` (which must also appear positively in
    ``assumptions``); the blocking clauses are then tagged with it, and
    releasing the group afterwards restores the session.  ``limit``
    bounds the number of models; enumeration also stops on UNSAT (space
    exhausted) or an indeterminate result (conflict budget exceeded).
    """
    produced = 0
    while produced < limit:
        result = solver.solve(
            assumptions=assumptions, max_conflicts=max_conflicts_per_model
        )
        if result.satisfiable is not True:
            return
        assert result.model is not None
        projection = [result.model[v] for v in project_vars]
        yield projection
        produced += 1
        blocking = [
            (-v if bit else v) for v, bit in zip(project_vars, projection)
        ]
        if group is not None:
            added = solver.add_clause(blocking, group=group)  # type: ignore[call-arg]
        else:
            added = solver.add_clause(blocking)
        if not added:
            return


def count_models(
    solver: CdclSolver, project_vars: Sequence[int], limit: int = 1024
) -> int:
    """Count projected models up to ``limit`` (destructive, see above)."""
    return sum(1 for _ in enumerate_models(solver, project_vars, limit=limit))
