"""SAT substrate: CNF containers, circuit-to-CNF encoding, CDCL solver.

The paper runs the Subramanyan et al. SAT attack on top of the lingeling
solver.  Neither is available here, so this package implements the whole
stack from scratch:

* :mod:`repro.sat.cnf` — clause container with DIMACS import/export;
* :mod:`repro.sat.tseitin` — Tseitin encoding of netlists into CNF;
* :mod:`repro.sat.solver` — a conflict-driven clause-learning (CDCL)
  solver with two-literal watching, VSIDS decisions, phase saving, 1-UIP
  learning, Luby restarts, learned-clause reduction and incremental
  solving under assumptions;
* :mod:`repro.sat.enumerate` — projected model enumeration via blocking
  clauses (used to count seed candidates).
"""

from repro.sat.cnf import Cnf, lit_of, var_of, is_negative
from repro.sat.tseitin import CircuitEncoder
from repro.sat.solver import CdclSolver, SolveResult
from repro.sat.enumerate import enumerate_models
from repro.sat.preprocess import preprocess, PreprocessResult

__all__ = [
    "preprocess",
    "PreprocessResult",
    "Cnf",
    "lit_of",
    "var_of",
    "is_negative",
    "CircuitEncoder",
    "CdclSolver",
    "SolveResult",
    "enumerate_models",
]
