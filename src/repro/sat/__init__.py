"""SAT substrate: CNF containers, circuit-to-CNF encoding, CDCL solver.

The paper runs the Subramanyan et al. SAT attack on top of the lingeling
solver.  Neither is available here, so this package implements the whole
stack from scratch:

* :mod:`repro.sat.cnf` — clause container with DIMACS import/export;
* :mod:`repro.sat.tseitin` — Tseitin encoding of netlists into CNF, with
  per-netlist compiled templates (:func:`encoding_for`) so repeated
  copies stamp in O(clauses) integer translation;
* :mod:`repro.sat.solver` — a conflict-driven clause-learning (CDCL)
  solver with two-literal watching, VSIDS decisions, phase saving, 1-UIP
  learning, Luby restarts, LBD-ranked learned-clause reduction and
  failed-assumption cores;
* :mod:`repro.sat.incremental` — the session API
  (:class:`IncrementalSolver`): persistent ``add_clause`` /
  ``solve(assumptions=...)`` with activation-literal clause groups;
* :mod:`repro.sat.enumerate` — projected model enumeration via blocking
  clauses (used to count seed candidates).
"""

from repro.sat.cnf import Cnf, lit_of, var_of, is_negative
from repro.sat.tseitin import (
    CircuitEncoder,
    NetlistEncoding,
    compile_encoding,
    encoding_for,
)
from repro.sat.solver import CdclSolver, SolveResult, SolverStats
from repro.sat.incremental import IncrementalSolver
from repro.sat.enumerate import enumerate_models
from repro.sat.preprocess import preprocess, PreprocessResult

__all__ = [
    "preprocess",
    "PreprocessResult",
    "Cnf",
    "lit_of",
    "var_of",
    "is_negative",
    "CircuitEncoder",
    "NetlistEncoding",
    "compile_encoding",
    "encoding_for",
    "CdclSolver",
    "IncrementalSolver",
    "SolveResult",
    "SolverStats",
    "enumerate_models",
]
