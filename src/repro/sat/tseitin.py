"""Tseitin encoding of netlists into CNF.

Each net gets one SAT variable; every gate contributes the standard
constant-size clause set expressing ``output <-> op(inputs)``.  Multi-input
XOR/XNOR gates are decomposed into binary XOR chains with auxiliary
variables so clause counts stay linear.

Two layers:

* :func:`encoding_for` compiles a netlist **once** into a
  :class:`NetlistEncoding` — clauses over a private local variable
  numbering plus a net-name -> local-variable map.  Compilations are
  cached per netlist object, so the incremental SAT attack pays the
  gate-walk and dict churn a single time per circuit.
* :class:`CircuitEncoder` stamps template copies into a shared
  :class:`Cnf`.  Stamping is pure integer translation (one fresh-variable
  block plus a literal lookup table per copy), which is what makes
  per-DIP miter extension cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence
from weakref import WeakKeyDictionary

from repro.ir import GT_LIST, enabled as _ir_enabled, ir_for
from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist
from repro.sat.cnf import Cnf


# ----------------------------------------------------------------------
# gate clause emission (shared by template compilation and ad-hoc use)
# ----------------------------------------------------------------------
def encode_gate_clauses(cnf: Cnf, gate: Gate, out: int, ins: list[int]) -> None:
    """Append the clause set for ``out <-> gate(ins)`` to ``cnf``."""
    encode_gate_type(cnf, gate.gtype, out, ins)


def encode_gate_type(cnf: Cnf, gtype: GateType, out: int, ins: list[int]) -> None:
    """Append the clause set for ``out <-> gtype(ins)`` to ``cnf``.

    Shared by the gate-object walk and the array-IR compile (which
    dispatches on :data:`repro.ir.GT_CODE` codes); clause order is part
    of the template contract -- both compiles emit identical encodings.
    """
    add = cnf.add_clause
    if gtype is GateType.AND:
        for x in ins:
            add([-out, x])
        add([out] + [-x for x in ins])
    elif gtype is GateType.NAND:
        for x in ins:
            add([out, x])
        add([-out] + [-x for x in ins])
    elif gtype is GateType.OR:
        for x in ins:
            add([out, -x])
        add([-out] + list(ins))
    elif gtype is GateType.NOR:
        for x in ins:
            add([-out, -x])
        add([out] + list(ins))
    elif gtype is GateType.XOR:
        _encode_xor_chain(cnf, out, ins, invert=False)
    elif gtype is GateType.XNOR:
        _encode_xor_chain(cnf, out, ins, invert=True)
    elif gtype is GateType.NOT:
        add([-out, -ins[0]])
        add([out, ins[0]])
    elif gtype is GateType.BUF:
        add([-out, ins[0]])
        add([out, -ins[0]])
    elif gtype is GateType.MUX:
        sel, in0, in1 = ins
        add([-out, sel, in0])
        add([out, sel, -in0])
        add([-out, -sel, in1])
        add([out, -sel, -in1])
    elif gtype is GateType.CONST0:
        add([-out])
    elif gtype is GateType.CONST1:
        add([out])
    else:  # pragma: no cover
        raise ValueError(f"cannot encode gate type {gtype!r}")


def _encode_xor_chain(cnf: Cnf, out: int, ins: Sequence[int], invert: bool) -> None:
    """``out = x1 ^ x2 ^ ... [^ 1 when invert]``.

    Reduced as a balanced tree rather than a linear chain: same clause
    count, but implication depth O(log n), which measurably helps unit
    propagation on the wide seed-overlay XORs the attack models emit.
    """
    add = cnf.add_clause
    layer = list(ins)
    while len(layer) > 2:
        next_layer: list[int] = []
        for i in range(0, len(layer) - 1, 2):
            aux = cnf.new_var()
            _encode_xor2(cnf, aux, layer[i], layer[i + 1])
            next_layer.append(aux)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
    if len(layer) == 1:
        acc = layer[0]
        if invert:
            add([-out, -acc])
            add([out, acc])
        else:
            add([-out, acc])
            add([out, -acc])
        return
    if invert:
        _encode_xor2(cnf, -out, layer[0], layer[1])
    else:
        _encode_xor2(cnf, out, layer[0], layer[1])


def _encode_xor2(cnf: Cnf, out: int, a: int, b: int) -> None:
    """``out = a ^ b`` (out may be a negative literal for XNOR)."""
    add = cnf.add_clause
    add([-out, a, b])
    add([-out, -a, -b])
    add([out, a, -b])
    add([out, -a, b])


# ----------------------------------------------------------------------
# compiled per-netlist templates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetlistEncoding:
    """A netlist compiled to CNF over local variables ``1..n_locals``.

    ``net_local`` maps every named net (primary inputs, gate outputs,
    gate operand nets and primary outputs) to its local variable; the
    remaining locals are Tseitin auxiliaries.  Templates are immutable
    and shared between all stamped copies.
    """

    name: str
    n_locals: int
    clauses: tuple[tuple[int, ...], ...]
    net_local: Mapping[str, int]
    fingerprint: tuple[int, int, int]

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)


_TEMPLATE_CACHE: "WeakKeyDictionary[Netlist, NetlistEncoding]" = WeakKeyDictionary()


def _fingerprint(netlist: Netlist) -> tuple[int, int, int]:
    return (len(netlist.inputs), len(netlist.outputs), len(netlist.gates))


def compile_encoding(netlist: Netlist) -> NetlistEncoding:
    """Compile a netlist into a fresh :class:`NetlistEncoding` (no cache)."""
    if netlist.dffs:
        raise ValueError(
            "cannot Tseitin-encode a sequential netlist; "
            "build a combinational model first"
        )
    if _ir_enabled():
        return _compile_encoding_ir(netlist)
    cnf = Cnf()
    net_local: dict[str, int] = {}

    def var_for(net: str) -> int:
        var = net_local.get(net)
        if var is None:
            var = cnf.new_var()
            net_local[net] = var
        return var

    for net in netlist.inputs:
        var_for(net)
    for gate in netlist.topological_gates():
        out = var_for(gate.output)
        ins = [var_for(n) for n in gate.inputs]
        encode_gate_clauses(cnf, gate, out, ins)
    for net in netlist.outputs:
        var_for(net)
    return NetlistEncoding(
        name=netlist.name,
        n_locals=cnf.n_vars,
        clauses=tuple(cnf.clauses),
        net_local=net_local,
        fingerprint=_fingerprint(netlist),
    )


def _compile_encoding_ir(netlist: Netlist) -> NetlistEncoding:
    """Array-translation compile behind :func:`compile_encoding`.

    Walks the flat IR arrays instead of gate objects: net -> local
    variable becomes an int-array lookup and clause emission dispatches
    on small gate-type codes.  Variable numbering (inputs, then per-gate
    out/operand first use with XOR auxiliaries inline, then outputs) and
    clause order replicate the gate-object walk exactly, so the two
    compiles produce equal :class:`NetlistEncoding` objects and every
    stamped copy downstream is byte-identical.
    """
    ir = ir_for(netlist)
    cnf = Cnf()
    local = [0] * ir.n_nets
    assigned: list[int] = []  # net ids in local-variable assignment order
    new_var = cnf.new_var

    def var_of(nid: int) -> int:
        var = local[nid]
        if not var:
            var = new_var()
            local[nid] = var
            assigned.append(nid)
        return var

    for nid in ir.pi:
        var_of(nid)
    gate_type = ir.gate_type.tolist()
    gate_out = ir.gate_out.tolist()
    offsets = ir.fanin_offset.tolist()
    fanin = ir.fanin.tolist()
    for gi in ir.topological_order().tolist():
        out = var_of(gate_out[gi])
        ins = [var_of(fanin[k]) for k in range(offsets[gi], offsets[gi + 1])]
        encode_gate_type(cnf, GT_LIST[gate_type[gi]], out, ins)
    for nid in ir.po:
        var_of(nid)

    names = ir.names
    net_local = {names[nid]: local[nid] for nid in assigned}
    return NetlistEncoding(
        name=netlist.name,
        n_locals=cnf.n_vars,
        clauses=tuple(cnf.clauses),
        net_local=net_local,
        fingerprint=_fingerprint(netlist),
    )


def encoding_for(netlist: Netlist) -> NetlistEncoding:
    """Cached :func:`compile_encoding`.

    The cache key is the netlist object; a shape fingerprint (input,
    output and gate counts) invalidates stale entries when a netlist is
    mutated after being encoded.  In-place edits that preserve all three
    counts are not detected — re-encode such netlists with
    :func:`compile_encoding` directly.
    """
    cached = _TEMPLATE_CACHE.get(netlist)
    if cached is not None and cached.fingerprint == _fingerprint(netlist):
        return cached
    template = compile_encoding(netlist)
    _TEMPLATE_CACHE[netlist] = template
    return template


class CircuitEncoder:
    """Encodes one or more netlists into a shared :class:`Cnf`.

    Net-to-variable maps are namespaced by an instance prefix so that a
    miter (two copies of the locked circuit) can share key variables while
    keeping internal nets separate.  Copies are stamped from the cached
    :class:`NetlistEncoding` template, so encoding the same netlist many
    times (the SAT attack adds two copies per DIP) costs integer
    translation only.
    """

    def __init__(self, cnf: Cnf | None = None):
        self.cnf = cnf if cnf is not None else Cnf()
        self._net_vars: dict[str, int] = {}

    def var_for(self, net: str) -> int:
        """SAT variable of a (namespaced) net, created on first use."""
        var = self._net_vars.get(net)
        if var is None:
            var = self.cnf.new_var()
            self._net_vars[net] = var
        return var

    def has_net(self, net: str) -> bool:
        return net in self._net_vars

    def alias(self, net: str, var: int) -> None:
        """Force a net to use an existing variable (key sharing)."""
        existing = self._net_vars.get(net)
        if existing is not None and existing != var:
            raise ValueError(f"net {net!r} already bound to variable {existing}")
        self._net_vars[net] = var

    # ------------------------------------------------------------------
    def encode_netlist(self, netlist: Netlist, prefix: str = "") -> dict[str, int]:
        """Stamp one copy of ``netlist`` into the shared CNF.

        Flip-flops are rejected: sequential circuits must first be turned
        into combinational models (that is the whole point of the attack).
        Nets already bound in the encoder's namespace (via :meth:`alias`
        or a previous copy) keep their variables; everything else gets a
        fresh contiguous variable block.  Returns the net -> variable map
        for this instance (unprefixed net names as keys).
        """
        return self.stamp(encoding_for(netlist), prefix=prefix)

    def stamp(self, template: NetlistEncoding, prefix: str = "") -> dict[str, int]:
        """Instantiate a compiled template under ``prefix``."""
        cnf = self.cnf
        net_vars = self._net_vars
        # Local -> global lookup table; slot 0 unused.
        lut = [0] * (template.n_locals + 1)
        for net, local in template.net_local.items():
            bound = net_vars.get(prefix + net)
            if bound is not None:
                lut[local] = bound
        next_var = cnf.n_vars
        for local in range(1, template.n_locals + 1):
            if lut[local] == 0:
                next_var += 1
                lut[local] = next_var
        cnf.n_vars = next_var

        mapping: dict[str, int] = {}
        for net, local in template.net_local.items():
            var = lut[local]
            net_vars[prefix + net] = var
            mapping[net] = var

        append = cnf.clauses.append
        for clause in template.clauses:
            append(tuple(lut[l] if l > 0 else -lut[-l] for l in clause))
        return mapping
