"""Tseitin encoding of netlists into CNF.

Each net gets one SAT variable; every gate contributes the standard
constant-size clause set expressing ``output <-> op(inputs)``.  Multi-input
XOR/XNOR gates are decomposed into binary XOR chains with auxiliary
variables so clause counts stay linear.
"""

from __future__ import annotations

from typing import Sequence

from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist
from repro.sat.cnf import Cnf


class CircuitEncoder:
    """Encodes one or more netlists into a shared :class:`Cnf`.

    Net-to-variable maps are namespaced by an instance prefix so that a
    miter (two copies of the locked circuit) can share key variables while
    keeping internal nets separate.
    """

    def __init__(self, cnf: Cnf | None = None):
        self.cnf = cnf if cnf is not None else Cnf()
        self._net_vars: dict[str, int] = {}

    def var_for(self, net: str) -> int:
        """SAT variable of a (namespaced) net, created on first use."""
        var = self._net_vars.get(net)
        if var is None:
            var = self.cnf.new_var()
            self._net_vars[net] = var
        return var

    def has_net(self, net: str) -> bool:
        return net in self._net_vars

    def alias(self, net: str, var: int) -> None:
        """Force a net to use an existing variable (key sharing)."""
        existing = self._net_vars.get(net)
        if existing is not None and existing != var:
            raise ValueError(f"net {net!r} already bound to variable {existing}")
        self._net_vars[net] = var

    # ------------------------------------------------------------------
    def encode_netlist(self, netlist: Netlist, prefix: str = "") -> dict[str, int]:
        """Encode the combinational part of ``netlist``.

        Flip-flops are rejected: sequential circuits must first be turned
        into combinational models (that is the whole point of the attack).
        Returns the net -> variable map for this instance (unprefixed net
        names as keys).
        """
        if netlist.dffs:
            raise ValueError(
                "cannot Tseitin-encode a sequential netlist; "
                "build a combinational model first"
            )
        mapping: dict[str, int] = {}
        for net in netlist.inputs:
            mapping[net] = self.var_for(prefix + net)
        for gate in netlist.topological_gates():
            out_var = self.var_for(prefix + gate.output)
            in_vars = [self.var_for(prefix + n) for n in gate.inputs]
            self._encode_gate(gate, out_var, in_vars)
            mapping[gate.output] = out_var
            for net, var in zip(gate.inputs, in_vars):
                mapping.setdefault(net, var)
        for net in netlist.outputs:
            mapping.setdefault(net, self.var_for(prefix + net))
        return mapping

    # ------------------------------------------------------------------
    def _encode_gate(self, gate: Gate, out: int, ins: list[int]) -> None:
        add = self.cnf.add_clause
        gtype = gate.gtype
        if gtype is GateType.AND:
            for x in ins:
                add([-out, x])
            add([out] + [-x for x in ins])
        elif gtype is GateType.NAND:
            for x in ins:
                add([out, x])
            add([-out] + [-x for x in ins])
        elif gtype is GateType.OR:
            for x in ins:
                add([out, -x])
            add([-out] + list(ins))
        elif gtype is GateType.NOR:
            for x in ins:
                add([-out, -x])
            add([out] + list(ins))
        elif gtype is GateType.XOR:
            self._encode_xor_chain(out, ins, invert=False)
        elif gtype is GateType.XNOR:
            self._encode_xor_chain(out, ins, invert=True)
        elif gtype is GateType.NOT:
            add([-out, -ins[0]])
            add([out, ins[0]])
        elif gtype is GateType.BUF:
            add([-out, ins[0]])
            add([out, -ins[0]])
        elif gtype is GateType.MUX:
            sel, in0, in1 = ins
            add([-out, sel, in0])
            add([out, sel, -in0])
            add([-out, -sel, in1])
            add([out, -sel, -in1])
        elif gtype is GateType.CONST0:
            add([-out])
        elif gtype is GateType.CONST1:
            add([out])
        else:  # pragma: no cover
            raise ValueError(f"cannot encode gate type {gtype!r}")

    def _encode_xor_chain(self, out: int, ins: Sequence[int], invert: bool) -> None:
        """``out = x1 ^ x2 ^ ... [^ 1 when invert]``.

        Reduced as a balanced tree rather than a linear chain: same clause
        count, but implication depth O(log n), which measurably helps unit
        propagation on the wide seed-overlay XORs the attack models emit.
        """
        add = self.cnf.add_clause
        layer = list(ins)
        while len(layer) > 2:
            next_layer: list[int] = []
            for i in range(0, len(layer) - 1, 2):
                aux = self.cnf.new_var()
                self._encode_xor2(aux, layer[i], layer[i + 1])
                next_layer.append(aux)
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        if len(layer) == 1:
            acc = layer[0]
            if invert:
                add([-out, -acc])
                add([out, acc])
            else:
                add([-out, acc])
                add([out, -acc])
            return
        if invert:
            self._encode_xor2(-out, layer[0], layer[1])
        else:
            self._encode_xor2(out, layer[0], layer[1])

    def _encode_xor2(self, out: int, a: int, b: int) -> None:
        """``out = a ^ b`` (out may be a negative literal for XNOR)."""
        add = self.cnf.add_clause
        add([-out, a, b])
        add([-out, -a, -b])
        add([out, a, -b])
        add([out, -a, b])
