"""Persistent, assumption-based incremental solving sessions.

:class:`IncrementalSolver` is the session-level API on top of the raw
CDCL engine (:class:`repro.sat.solver.CdclSolver`): one long-lived solver
instance accumulates the problem (miter plus per-DIP constraints), every
``solve`` call reuses the learned-clause database and variable
activities, and *clause groups* — the standard activation-literal idiom —
let callers switch whole constraint blocks on and off per call or retire
them permanently.

This is what lets the SAT attack build the miter CNF once and extend it
with two constraint copies per DIP instead of re-encoding the whole
formula every iteration.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, SolveResult


class IncrementalSolver(CdclSolver):
    """An incremental solving session.

    Adds to the engine:

    * ``solve`` result caching — :meth:`value` and :meth:`values` read
      the most recent model without threading the result object around;
    * clause groups (:meth:`new_group`, :meth:`release_group`) backed by
      activation literals, enabled per-call via ``solve(groups=...)``;
    * :meth:`absorb` for streaming a growing :class:`Cnf` into the
      session without re-adding already-synced clauses.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._last_result: SolveResult | None = None
        self._released: set[int] = set()

    # ------------------------------------------------------------------
    # clause groups
    # ------------------------------------------------------------------
    def new_group(self) -> int:
        """Allocate an activation literal naming a retractable clause group.

        Clauses added with ``group=g`` only bind while ``g`` is passed in
        ``groups`` (or as a positive assumption) to :meth:`solve`.
        """
        return self.new_var()

    def add_clause(self, lits: Sequence[int], group: int | None = None) -> bool:
        """Add a clause, optionally tagged with an activation group.

        Grouped clauses are stored as ``(-group OR lits...)`` so they are
        vacuously satisfied unless the group is assumed active.  Returns
        False when the formula became trivially UNSAT.
        """
        if group is not None:
            if group in self._released:
                return True  # retired group; the clause can never bind
            lits = [-group] + list(lits)
        return super().add_clause(lits)

    def release_group(self, group: int) -> None:
        """Permanently retire a group: its clauses become satisfied units.

        After release the activation variable is pinned false, so every
        clause tagged with the group is satisfied forever and the learned
        clauses derived from it remain sound.
        """
        if group in self._released:
            return
        self._released.add(group)
        super().add_clause([-group])

    # ------------------------------------------------------------------
    # solving and model access
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Iterable[int] = (),
        groups: Iterable[int] = (),
        **kwargs,
    ) -> SolveResult:
        """Solve under per-call assumptions with the given groups active."""
        all_assumptions = list(assumptions) + [g for g in groups]
        result = super().solve(assumptions=all_assumptions, **kwargs)
        self._last_result = result
        return result

    @property
    def last_result(self) -> SolveResult | None:
        """The result of the most recent :meth:`solve` call, if any."""
        return self._last_result

    def value(self, var: int) -> int:
        """Value of ``var`` in the last model (requires a SAT answer)."""
        result = self._last_result
        if result is None or result.model is None:
            raise RuntimeError("no model: last solve was not satisfiable")
        return result.model[var]

    def values(self, variables: Sequence[int]) -> list[int]:
        """Vector of :meth:`value` over ``variables``."""
        result = self._last_result
        if result is None or result.model is None:
            raise RuntimeError("no model: last solve was not satisfiable")
        model = result.model
        return [model[v] for v in variables]

    # ------------------------------------------------------------------
    # bulk intake
    # ------------------------------------------------------------------
    def absorb(self, cnf: Cnf, already_synced: int = 0) -> int:
        """Stream ``cnf.clauses[already_synced:]`` into the session.

        Callers that keep growing one :class:`Cnf` (the Tseitin encoder's
        output) pass the previous return value back in, so each call
        transfers only the new suffix.  Returns the new synced count.
        """
        self._ensure_vars(cnf.n_vars)
        clauses = cnf.clauses
        for index in range(already_synced, len(clauses)):
            self.add_clause(clauses[index])
        return len(clauses)
