"""A conflict-driven clause-learning (CDCL) SAT solver.

This is a from-scratch, pure-Python replacement for the lingeling solver
the paper used.  It implements the standard modern architecture:

* two-literal watching for unit propagation;
* VSIDS-style variable activities with a lazy max-heap;
* first-UIP conflict analysis with cheap clause minimisation;
* non-chronological backjumping;
* Luby-sequence restarts;
* learned-clause database reduction;
* incremental use: clauses may be added between ``solve`` calls, and each
  call may carry a list of assumption literals.

Literal encoding (internal): variable ``v`` (1-based) maps to codes
``2*v`` (positive) and ``2*v + 1`` (negative); ``code ^ 1`` negates.
Public APIs use DIMACS-signed literals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappush, heappop
from typing import Iterable, Sequence

from repro.sat.cnf import Cnf

_UNASSIGNED = -1


class _Clause:
    """Internal clause representation; lits are internal codes.

    ``lbd`` (literal block distance, the number of distinct decision
    levels in the clause when it was learned) ranks learned clauses for
    database reduction: low-LBD "glue" clauses are kept forever.
    """

    __slots__ = ("lits", "learnt", "deleted", "lbd")

    def __init__(self, lits: list[int], learnt: bool, lbd: int = 0):
        self.lits = lits
        self.learnt = learnt
        self.deleted = False
        self.lbd = lbd


@dataclass
class SolverStats:
    """Cumulative search counters across all solve calls."""
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    deleted: int = 0
    solve_calls: int = 0
    solve_time: float = 0.0


@dataclass
class SolveResult:
    """Outcome of one ``solve`` call.

    On UNSAT answers reached under assumptions, ``core`` holds a subset
    of the assumption literals that is already jointly inconsistent with
    the formula (the *failed assumptions*); it is ``[]`` when the formula
    is unsatisfiable regardless of assumptions.
    """

    satisfiable: bool | None  # None means resource limit reached
    model: list[int] | None = None  # index 0 unused; values 0/1
    stats: SolverStats = field(default_factory=SolverStats)
    core: list[int] | None = None  # failed assumptions (DIMACS), UNSAT only

    def value(self, var: int) -> int:
        if self.model is None:
            raise RuntimeError("no model available")
        return self.model[var]


class CdclSolver:
    """Incremental CDCL solver.

    ``var_decay``, ``restart_base`` and ``reduce_base`` expose the usual
    heuristic knobs (VSIDS decay, Luby restart unit, learned-DB budget);
    the defaults behave well on the locked-circuit instances this project
    generates.
    """

    def __init__(
        self,
        cnf: Cnf | None = None,
        var_decay: float = 0.95,
        restart_base: int = 128,
        reduce_base: int = 4000,
    ):
        self.n_vars = 0
        self._clauses: list[_Clause] = []
        self._learnts: list[_Clause] = []
        self._watches: list[list[_Clause]] = [[], []]  # index by lit code
        self._assign: list[int] = [_UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[_Clause | None] = [None]
        self._phase: list[int] = [0]
        self._activity: list[float] = [0.0]
        self._heap: list[tuple[float, int]] = []
        self._in_heap: list[bool] = [False]
        self._var_inc = 1.0
        self._var_decay = 1.0 / var_decay
        self._restart_base = restart_base
        self._reduce_base = reduce_base
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._ok = True  # False once a top-level conflict is derived
        self._decision_vars: set[int] | None = None
        self.stats = SolverStats()
        if cnf is not None:
            self.add_cnf(cnf)

    def set_decision_vars(self, variables: Iterable[int] | None) -> None:
        """Restrict branching to the given variables (None = all).

        Sound and complete for Tseitin encodings of circuits when the set
        contains every primary-input variable: unit propagation determines
        all internal gate variables once the inputs are assigned.  This is
        the standard "input branching" optimisation for SAT attacks; a
        linear-scan fallback over all variables keeps the solver complete
        even if the caller passes an insufficient set.
        """
        self._decision_vars = set(variables) if variables is not None else None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.n_vars += 1
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(0)
        self._activity.append(0.0)
        self._in_heap.append(False)
        self._watches.append([])
        self._watches.append([])
        self._push_heap(self.n_vars)
        return self.n_vars

    def _ensure_vars(self, max_var: int) -> None:
        while self.n_vars < max_var:
            self.new_var()

    def add_cnf(self, cnf: Cnf) -> None:
        self._ensure_vars(cnf.n_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a clause of DIMACS literals.

        Must be called at decision level 0 (between solve calls this always
        holds).  Returns False when the formula became trivially UNSAT.
        """
        if not self._ok:
            return False
        if self._trail_lim:
            self._backtrack(0)

        codes: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            var = abs(lit)
            if var == 0:
                raise ValueError("literal 0 is not allowed")
            self._ensure_vars(var)
            code = (var << 1) | (1 if lit < 0 else 0)
            if code ^ 1 in seen:
                return True  # tautology
            if code in seen:
                continue
            value = self._value(code)
            if value == 1 and self._level[var] == 0:
                return True  # already satisfied at top level
            if value == 0 and self._level[var] == 0:
                continue  # falsified at top level; drop the literal
            seen.add(code)
            codes.append(code)

        if not codes:
            self._ok = False
            return False
        if len(codes) == 1:
            if not self._enqueue(codes[0], None):
                self._ok = False
                return False
            self._ok = self._propagate() is None
            return self._ok
        clause = _Clause(codes, learnt=False)
        self._clauses.append(clause)
        self._watches[codes[0]].append(clause)
        self._watches[codes[1]].append(clause)
        return True

    # ------------------------------------------------------------------
    # values / trail
    # ------------------------------------------------------------------
    def _value(self, code: int) -> int:
        a = self._assign[code >> 1]
        if a == _UNASSIGNED:
            return _UNASSIGNED
        return a ^ (code & 1)

    def _enqueue(self, code: int, reason: _Clause | None) -> bool:
        value = self._value(code)
        if value != _UNASSIGNED:
            return value == 1
        var = code >> 1
        self._assign[var] = 1 - (code & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = self._assign[var]
        self._trail.append(code)
        return True

    def _backtrack(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        boundary = self._trail_lim[target_level]
        for code in reversed(self._trail[boundary:]):
            var = code >> 1
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            if not self._in_heap[var]:
                self._push_heap(var)
        del self._trail[boundary:]
        del self._trail_lim[target_level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> _Clause | None:
        # Hot path: attribute lookups hoisted, literal values inlined.
        trail = self._trail
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        trail_append = trail.append
        current_level = len(self._trail_lim)
        props = 0
        while self._qhead < len(trail):
            p_true = trail[self._qhead]
            self._qhead += 1
            props += 1
            falsified = p_true ^ 1
            watch_list = watches[falsified]
            kept: list[_Clause] = []
            kept_append = kept.append
            i = 0
            n = len(watch_list)
            conflict: _Clause | None = None
            while i < n:
                clause = watch_list[i]
                i += 1
                if clause.deleted:
                    continue
                lits = clause.lits
                # Normalise: watched literals sit at positions 0 and 1.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                other = lits[0]
                a = assign[other >> 1]
                if a >= 0 and (a ^ (other & 1)) == 1:
                    kept_append(clause)
                    continue
                # Look for a replacement watch.
                replaced = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    ak = assign[lk >> 1]
                    if ak < 0 or (ak ^ (lk & 1)) == 1:
                        lits[1], lits[k] = lk, lits[1]
                        watches[lk].append(clause)
                        replaced = True
                        break
                if replaced:
                    continue
                # No replacement: clause is unit or conflicting.
                kept_append(clause)
                if a < 0:
                    # Enqueue `other` with this clause as reason.
                    var = other >> 1
                    value_bit = 1 - (other & 1)
                    assign[var] = value_bit
                    level[var] = current_level
                    reason[var] = clause
                    phase[var] = value_bit
                    trail_append(other)
                else:
                    conflict = clause
                    # Keep remaining watchers untouched.
                    kept.extend(c for c in watch_list[i:] if not c.deleted)
                    break
            watches[falsified] = kept
            if conflict is not None:
                self._qhead = len(trail)
                self.stats.propagations += props
                return conflict
        self.stats.propagations += props
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learnt clause codes, backjump level).

        ``learnt[0]`` is the asserting literal.
        """
        current_level = len(self._trail_lim)
        seen = bytearray(self.n_vars + 1)
        learnt: list[int] = [0]
        counter = 0
        p = -1
        reason_lits = conflict.lits
        index = len(self._trail) - 1

        while True:
            for q in reason_lits:
                if q == p:
                    continue
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Walk the trail back to the next marked variable.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            p = self._trail[index]
            index -= 1
            var = p >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learnt[0] = p ^ 1
                break
            reason = self._reason[var]
            assert reason is not None, "non-decision must have a reason"
            reason_lits = reason.lits

        # Mark remaining literals for the minimisation pass.
        for q in learnt[1:]:
            seen[q >> 1] = 1
        minimised = [learnt[0]]
        for q in learnt[1:]:
            if not self._redundant(q, seen):
                minimised.append(q)
        learnt = minimised

        # Compute backjump level and place its literal at position 1.
        back_level = 0
        if len(learnt) > 1:
            max_idx = 1
            for idx in range(1, len(learnt)):
                if self._level[learnt[idx] >> 1] > self._level[learnt[max_idx] >> 1]:
                    max_idx = idx
            learnt[1], learnt[max_idx] = learnt[max_idx], learnt[1]
            back_level = self._level[learnt[1] >> 1]
        return learnt, back_level

    def _analyze_final(self, failed_code: int) -> list[int]:
        """Assumption core of a failed assumption (MiniSat's analyzeFinal).

        ``failed_code`` is an assumption literal whose negation is implied
        by the formula plus earlier assumptions.  Walks the implication
        graph backwards from it and collects the assumption decisions the
        derivation actually used; returns them (including the failed
        literal itself) as DIMACS literals.
        """
        core_codes = [failed_code]
        if self._trail_lim:
            seen = bytearray(self.n_vars + 1)
            seen[failed_code >> 1] = 1
            level = self._level
            reason_of = self._reason
            for idx in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
                p = self._trail[idx]
                var = p >> 1
                if not seen[var]:
                    continue
                seen[var] = 0
                reason = reason_of[var]
                if reason is None:
                    # An assumption decision this derivation used.  (When
                    # p == failed_code^1 both polarities were assumed and
                    # the opposite assumption is the whole core.)
                    core_codes.append(p)
                else:
                    for q in reason.lits:
                        if level[q >> 1] > 0:
                            seen[q >> 1] = 1
        return [
            -(code >> 1) if code & 1 else (code >> 1) for code in core_codes
        ]

    def _redundant(self, code: int, seen: bytearray) -> bool:
        """Cheap (non-recursive) literal redundancy test."""
        reason = self._reason[code >> 1]
        if reason is None:
            return False
        for q in reason.lits:
            var = q >> 1
            if var == code >> 1:
                continue
            if not seen[var] and self._level[var] > 0:
                return False
        return True

    def _record_learnt(self, learnt: list[int]) -> None:
        if len(learnt) == 1:
            ok = self._enqueue(learnt[0], None)
            assert ok, "asserting unit must be enqueueable after backjump"
            return
        level = self._level
        lbd = len({level[code >> 1] for code in learnt})
        clause = _Clause(learnt, learnt=True, lbd=lbd)
        self._learnts.append(clause)
        self.stats.learned += 1
        self._watches[learnt[0]].append(clause)
        self._watches[learnt[1]].append(clause)
        ok = self._enqueue(learnt[0], clause)
        assert ok, "asserting literal must be enqueueable after backjump"

    # ------------------------------------------------------------------
    # decision heuristics
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        if not self._in_heap[var]:
            self._push_heap(var)
        else:
            heappush(self._heap, (-self._activity[var], var))

    def _decay_activities(self) -> None:
        self._var_inc *= self._var_decay

    def _push_heap(self, var: int) -> None:
        heappush(self._heap, (-self._activity[var], var))
        self._in_heap[var] = True

    def _pick_branch_var(self) -> int | None:
        decision_vars = self._decision_vars
        while self._heap:
            neg_act, var = heappop(self._heap)
            if decision_vars is not None and var not in decision_vars:
                self._in_heap[var] = False
                continue
            if self._assign[var] == _UNASSIGNED and -neg_act == self._activity[var]:
                self._in_heap[var] = False
                return var
            if self._assign[var] == _UNASSIGNED and -neg_act != self._activity[var]:
                continue  # stale entry; a fresher one exists
            if self._assign[var] != _UNASSIGNED:
                self._in_heap[var] = False
        # Heap exhausted: linear scan, preferring allowed decision vars.
        if decision_vars is not None:
            for var in decision_vars:
                if self._assign[var] == _UNASSIGNED:
                    return var
        for var in range(1, self.n_vars + 1):
            if self._assign[var] == _UNASSIGNED:
                return var
        return None

    # ------------------------------------------------------------------
    # learned clause reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Drop the worst half of the learned clauses.

        Ranking is by literal block distance, then clause size (glue-style
        heuristics): binary and LBD<=2 clauses are kept unconditionally,
        as are clauses currently locked as a propagation reason.
        """
        locked = set()
        for var in range(1, self.n_vars + 1):
            reason = self._reason[var]
            if reason is not None and reason.learnt:
                locked.add(id(reason))
        candidates = [c for c in self._learnts if not c.deleted]
        ranked = sorted(candidates, key=lambda c: (c.lbd, len(c.lits)))
        removed = 0
        for clause in ranked[len(ranked) // 2 :]:
            if (
                clause.lbd <= 2
                or len(clause.lits) <= 2
                or id(clause) in locked
            ):
                continue
            clause.deleted = True
            removed += 1
        self._learnts = [c for c in candidates if not c.deleted]
        self.stats.deleted += removed

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Iterable[int] = (),
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
    ) -> SolveResult:
        """Search for a model; returns a :class:`SolveResult`.

        ``satisfiable`` is None when ``max_conflicts``/``timeout_s`` was
        exhausted before an answer was reached.
        """
        started = time.perf_counter()
        self.stats.solve_calls += 1
        if not self._ok:
            return SolveResult(satisfiable=False, stats=self.stats, core=[])

        assumption_codes: list[int] = []
        for lit in assumptions:
            var = abs(lit)
            self._ensure_vars(var)
            assumption_codes.append((var << 1) | (1 if lit < 0 else 0))

        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return SolveResult(satisfiable=False, stats=self.stats, core=[])

        conflicts_here = 0
        luby_index = 1
        restart_base = self._restart_base
        restart_budget = restart_base * _luby(luby_index)
        conflicts_since_restart = 0
        reduce_budget = self._reduce_base

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._ok = False
                    self._finish_timer(started)
                    return SolveResult(
                        satisfiable=False, stats=self.stats, core=[]
                    )
                learnt, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self._record_learnt(learnt)
                self._var_inc *= self._var_decay
                if max_conflicts is not None and conflicts_here >= max_conflicts:
                    self._backtrack(0)
                    self._finish_timer(started)
                    return SolveResult(satisfiable=None, stats=self.stats)
                if timeout_s is not None and (
                    conflicts_here % 64 == 0
                    and time.perf_counter() - started > timeout_s
                ):
                    self._backtrack(0)
                    self._finish_timer(started)
                    return SolveResult(satisfiable=None, stats=self.stats)
                if len(self._learnts) > reduce_budget:
                    self._reduce_db()
                    reduce_budget += 1000
                if conflicts_since_restart >= restart_budget:
                    self.stats.restarts += 1
                    luby_index += 1
                    restart_budget = restart_base * _luby(luby_index)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                continue

            # Assumption handling: decide the first unassigned assumption.
            decided_assumption = False
            failed_core: list[int] | None = None
            for code in assumption_codes:
                value = self._value(code)
                if value == 0:
                    failed_core = self._analyze_final(code)
                    break
                if value == _UNASSIGNED:
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(code, None)
                    decided_assumption = True
                    break
            if failed_core is not None:
                self._backtrack(0)
                self._finish_timer(started)
                return SolveResult(
                    satisfiable=False, stats=self.stats, core=failed_core
                )
            if decided_assumption:
                continue

            var = self._pick_branch_var()
            if var is None:
                model = [0] * (self.n_vars + 1)
                for v in range(1, self.n_vars + 1):
                    model[v] = self._assign[v] if self._assign[v] != _UNASSIGNED else 0
                self._backtrack(0)
                self._finish_timer(started)
                return SolveResult(satisfiable=True, model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            code = (var << 1) | (1 - self._phase[var])
            self._enqueue(code, None)

    def _finish_timer(self, started: float) -> None:
        self.stats.solve_time += time.perf_counter() - started

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def solve_cnf(self, cnf: Cnf, **kwargs) -> SolveResult:
        self.add_cnf(cnf)
        return self.solve(**kwargs)


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,..."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while i > (1 << k) - 1:
        i -= (1 << k) - 1
        k = 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1
    return 1 << (k - 1) if k > 0 else 1
