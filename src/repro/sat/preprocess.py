"""CNF preprocessing: cheap simplifications before search.

Implements the classic lightweight passes -- top-level unit propagation,
pure-literal elimination, tautology and duplicate removal -- returning a
simplified formula plus the forced assignments.  Useful both as a solver
front end and as an analysis tool (e.g. counting how many seed variables
an attack's constraint set already fixes without any search at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sat.cnf import Cnf


@dataclass
class PreprocessResult:
    """Simplified formula plus forced/pure assignments and removal stats."""
    simplified: Cnf
    forced: dict[int, int]  # var -> value fixed by unit propagation
    unsatisfiable: bool
    removed_tautologies: int = 0
    removed_duplicates: int = 0
    eliminated_pure: dict[int, int] = field(default_factory=dict)


def preprocess(cnf: Cnf, pure_literals: bool = True) -> PreprocessResult:
    """Simplify ``cnf`` (non-destructively).

    Iterates unit propagation and (optionally) pure-literal elimination
    to a fixed point.  Pure-literal assignments are *satisfying choices*
    rather than logical consequences, so they are reported separately in
    ``eliminated_pure`` and must not be read as forced values.
    """
    forced: dict[int, int] = {}
    pure_chosen: dict[int, int] = {}
    tautologies = 0
    duplicates = 0

    clauses: list[tuple[int, ...]] = []
    seen_clauses: set[tuple[int, ...]] = set()
    for clause in cnf.clauses:
        lits = tuple(sorted(set(clause), key=abs))
        if any(-lit in lits for lit in lits):
            tautologies += 1
            continue
        if lits in seen_clauses:
            duplicates += 1
            continue
        seen_clauses.add(lits)
        clauses.append(lits)

    def value_of(lit: int) -> int | None:
        var = abs(lit)
        assignment = forced.get(var, pure_chosen.get(var))
        if assignment is None:
            return None
        return assignment if lit > 0 else 1 - assignment

    changed = True
    unsat = False
    while changed and not unsat:
        changed = False

        # Unit propagation.
        next_clauses: list[tuple[int, ...]] = []
        for clause in clauses:
            survivors = []
            satisfied = False
            for lit in clause:
                value = value_of(lit)
                if value == 1:
                    satisfied = True
                    break
                if value is None:
                    survivors.append(lit)
            if satisfied:
                changed = True
                continue
            if not survivors:
                unsat = True
                break
            if len(survivors) == 1:
                lit = survivors[0]
                var = abs(lit)
                want = 1 if lit > 0 else 0
                if forced.get(var, want) != want:
                    unsat = True
                    break
                if var not in forced:
                    forced[var] = want
                    pure_chosen.pop(var, None)
                    changed = True
                continue
            next_clauses.append(tuple(survivors))
        if unsat:
            break
        clauses = next_clauses

        # Pure literal elimination.
        if pure_literals:
            polarity: dict[int, set[int]] = {}
            for clause in clauses:
                for lit in clause:
                    polarity.setdefault(abs(lit), set()).add(
                        1 if lit > 0 else 0
                    )
            for var, signs in polarity.items():
                if var in forced or var in pure_chosen:
                    continue
                if len(signs) == 1:
                    pure_chosen[var] = next(iter(signs))
                    changed = True

    simplified = Cnf(cnf.n_vars)
    if unsat:
        simplified.add_clause([1])
        simplified.add_clause([-1])
    else:
        for clause in clauses:
            simplified.add_clause(list(clause))
    return PreprocessResult(
        simplified=simplified,
        forced=forced,
        unsatisfiable=unsat,
        removed_tautologies=tautologies,
        removed_duplicates=duplicates,
        eliminated_pure=pure_chosen,
    )
