"""CNF formula container and DIMACS serialisation.

Literals follow the DIMACS convention: non-zero signed integers, where
``+v`` is the positive literal of variable ``v`` (variables are 1-based)
and ``-v`` its negation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence


def lit_of(var: int, positive: bool = True) -> int:
    """Build a literal from a variable index."""
    if var <= 0:
        raise ValueError("variables are 1-based positive integers")
    return var if positive else -var


def var_of(lit: int) -> int:
    """Variable index of a literal."""
    if lit == 0:
        raise ValueError("0 is not a literal")
    return abs(lit)


def is_negative(lit: int) -> bool:
    """True when the literal is a negated variable."""
    return lit < 0


class Cnf:
    """A growable CNF formula.

    Tracks the highest variable used; fresh-variable allocation goes
    through :meth:`new_var` so encoders can interleave with manually
    numbered variables safely.
    """

    def __init__(self, n_vars: int = 0):
        self.n_vars = n_vars
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Sequence[int]) -> None:
        clause = tuple(int(l) for l in lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if abs(lit) > self.n_vars:
                self.n_vars = abs(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def extend(self, other: "Cnf") -> None:
        """Append another formula (same variable namespace)."""
        self.n_vars = max(self.n_vars, other.n_vars)
        self.clauses.extend(other.clauses)

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    # -- DIMACS -----------------------------------------------------------
    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.n_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "Cnf":
        cnf = cls()
        declared_vars = 0
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                cnf.add_clause(lits)
        cnf.n_vars = max(cnf.n_vars, declared_vars)
        return cnf

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_dimacs())

    @classmethod
    def load(cls, path: str | Path) -> "Cnf":
        return cls.from_dimacs(Path(path).read_text())

    def evaluate(self, assignment: Sequence[int]) -> bool:
        """Check a full assignment (index 0 unused; values 0/1)."""
        for clause in self.clauses:
            satisfied = False
            for lit in clause:
                value = assignment[abs(lit)]
                if (lit > 0 and value == 1) or (lit < 0 and value == 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def __repr__(self) -> str:
        return f"Cnf(vars={self.n_vars}, clauses={len(self.clauses)})"
