"""GF(2) analysis of the obfuscation overlay and the candidate space.

Explains (and lets experiments verify) two phenomena the paper reports:

* the whole scramble is affine in the seed, so the set of seeds surviving
  the SAT attack is an affine subspace -- candidate counts are powers of
  two (1, 2, 4, 16, 128 in Tables II and III);
* more scan flops mean more overlay rows, i.e. more linear observations
  of the seed per DIP, which is why larger circuits resolve the seed
  uniquely ("attack success should be higher ... seed bits repeat for a
  larger number of times").
"""

from __future__ import annotations

from typing import Sequence

try:  # optional: gated so the numpy-less scalar paths can import repro
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.core.modeling import (
    derive_shift_in_crossings,
    derive_shift_out_crossings,
)
from repro.gf2.matrix import GF2Matrix
from repro.gf2.solve import rank
from repro.prng.symbolic import SymbolicLfsr
from repro.scan.chain import ScanChainSpec


def overlay_matrices(
    spec: ScanChainSpec,
    taps: Sequence[int],
    key_bits: int,
    n_captures: int = 1,
) -> tuple[GF2Matrix, GF2Matrix]:
    """Dense seed-space overlay matrices ``(M_in, M_out)``.

    ``a' = a XOR M_in @ seed`` and ``b = b' XOR M_out @ seed`` over GF(2),
    rows indexed by chain position.
    """
    sym = SymbolicLfsr(width=key_bits, taps=tuple(taps))
    n = spec.n_flops
    crossings_in = derive_shift_in_crossings(spec)
    crossings_out = derive_shift_out_crossings(spec, n_captures=n_captures)

    # Resolve all keystream rows in one ascending sweep (cheap at scale).
    m_in = np.zeros((n, key_bits), dtype=np.uint8)
    m_out = np.zeros((n, key_bits), dtype=np.uint8)
    wanted: dict[int, list[tuple[np.ndarray, int, int]]] = {}
    for target, crossing_list in ((m_in, crossings_in), (m_out, crossings_out)):
        for l, crossing in enumerate(crossing_list):
            for cycle, gate in crossing:
                wanted.setdefault(cycle, []).append((target, l, gate))
    for cycle, rows in sym.iter_rows(wanted.keys()):
        for target, l, gate in wanted[cycle]:
            target[l] ^= rows[gate]
    return GF2Matrix(m_in), GF2Matrix(m_out)


def overlay_rank(spec: ScanChainSpec, taps: Sequence[int], key_bits: int) -> int:
    """Rank of the stacked overlay ``[M_in; M_out]``.

    An upper bound on how many seed bits scan observations can pin down
    *linearly*; when it equals ``key_bits`` a unique seed is information-
    theoretically reachable from chain observations alone.
    """
    m_in, m_out = overlay_matrices(spec, taps, key_bits)
    stacked = GF2Matrix(np.vstack([m_in.data, m_out.data]))
    return rank(stacked)


def candidate_space_dimension(candidates: Sequence[Sequence[int]]) -> int:
    """Affine dimension of a set of seed candidates.

    For a complete SAT-attack candidate enumeration the set is an affine
    subspace; its dimension ``d`` satisfies ``len(candidates) == 2**d``.
    The test suite asserts exactly this power-of-two structure.
    """
    if not candidates:
        raise ValueError("no candidates given")
    base = np.array(candidates[0], dtype=np.uint8)
    diffs = [np.array(c, dtype=np.uint8) ^ base for c in candidates[1:]]
    if not diffs:
        return 0
    return rank(GF2Matrix(np.array(diffs, dtype=np.uint8)))


def is_affine_space(candidates: Sequence[Sequence[int]]) -> bool:
    """Check the closure property c1 ^ c2 ^ c3 in S for an enumerated set."""
    if not candidates:
        return True
    dim = candidate_space_dimension(candidates)
    return len(candidates) == (1 << dim)
