"""The DynUnlock attack driver (the paper's Fig. 3 flowchart).

Pipeline per round:

1. **Model** — build the combinational locked circuit whose key inputs
   are the LFSR seed bits (:mod:`repro.core.modeling`).
2. **SAT attack** — run the oracle-guided DIP loop until no
   distinguishing pattern remains (:mod:`repro.attack.satattack`); the
   oracle is the physical chip queried through its obfuscated scan
   chain.  The whole loop shares one incremental solver session per
   round: the miter is encoded once and each DIP only appends clauses.
3. **Enumerate** — extract every seed assignment still consistent with
   all DIP responses ("seed candidates", Tables II/III).
4. **Restart** — if the candidate space is too large, rebuild the model
   with one more capture cycle, carrying over the seed bits already
   pinned down, and run again (the paper's restart step; none of the
   paper's benchmarks needed it and ours rarely do either).
5. **Refine** — brute-force the remaining candidates against the live
   oracle with fresh random patterns (:mod:`repro.attack.bruteforce`).

Success criterion: the surviving seed reproduces the chip's scrambled
responses on verification patterns, i.e. the attacker now owns transparent
scan access.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.satattack import SatAttack, SatAttackConfig, SatAttackResult
from repro.core.modeling import CombinationalModel, build_combinational_model
from repro.locking.effdyn import EffDynPublicView
from repro.netlist.netlist import Netlist
from repro.observability import spans as obs
from repro.opt import optimize, resolve_level
from repro.scan.oracle import ScanOracle
from repro.util.timing import Stopwatch


@dataclass
class DynUnlockConfig:
    """Attack configuration.

    ``candidate_limit`` bounds candidate enumeration per round (the paper
    observes at most 128 candidates for practical key sizes);
    ``max_captures`` bounds the restart refinement; ``verify_patterns``
    sets the replay budget of the brute-force step.  ``opt_level``
    selects the :mod:`repro.opt` preprocessing level the combinational
    model is rewritten at before SAT encoding and bit-parallel replay
    (None = the active default, 0 = attack the raw model); the
    optimizer pins the model's interface, so recovered seeds are
    identical at every level.
    """

    candidate_limit: int = 256
    max_iterations: int = 10_000
    timeout_s: float | None = None
    max_captures: int = 3
    verify_patterns: int = 24
    include_pos: bool = True
    verify_rng_seed: int = 0xD15C0
    opt_level: int | None = None


@dataclass
class RoundRecord:
    """Diagnostics for one model/SAT-attack round.

    ``conflicts``/``learned_clauses`` come from the round's incremental
    solver session and quantify how hard the SAT search actually was
    (wall-clock alone conflates search with oracle latency).
    """

    n_captures: int
    iterations: int
    n_candidates: int
    candidates_exhausted: bool
    converged: bool
    fixed_bits_carried: int
    runtime_s: float
    conflicts: int = 0
    learned_clauses: int = 0


@dataclass
class DynUnlockResult:
    """Attack outcome, aligned with the paper's reported columns."""

    success: bool
    recovered_seed: list[int] | None
    seed_candidates: list[list[int]]
    iterations: int  # total DIPs across rounds (paper: "# Iterations")
    n_seed_candidates: int  # paper: "# Seed candidates" (pre-brute-force)
    runtime_s: float  # paper: "Execution time"
    n_captures_used: int
    oracle_queries: int
    rounds: list[RoundRecord] = field(default_factory=list)
    sat_result: SatAttackResult | None = field(default=None, repr=False)
    model: CombinationalModel | None = field(default=None, repr=False)


class DynUnlock:
    """One attack instance bound to a public view, netlist and oracle.

    ``netlist`` is the reverse-engineered functional netlist (public
    under the threat model); the secrets live only inside ``oracle``.
    """

    def __init__(
        self,
        netlist: Netlist,
        public_view: EffDynPublicView,
        oracle: ScanOracle,
        config: DynUnlockConfig | None = None,
    ):
        self.netlist = netlist
        self.view = public_view
        self.oracle = oracle
        self.config = config or DynUnlockConfig()

    # ------------------------------------------------------------------
    def _build_model(self, n_captures: int) -> CombinationalModel:
        with obs.phase("model"):
            model = build_combinational_model(
                self.netlist,
                spec=self.view.spec,
                taps=self.view.lfsr_taps,
                key_bits=self.view.lfsr_width,
                mode="dynamic",
                n_captures=n_captures,
                include_pos=self.config.include_pos,
            )
        # Optimize once per round so the SAT session *and* the replay
        # refinement both consume the reduced netlist (the interface is
        # pinned, so a_inputs/key_inputs/b_outputs wiring is unchanged).
        if resolve_level(self.config.opt_level) > 0:
            model.netlist = optimize(
                model.netlist, level=self.config.opt_level
            ).netlist
        return model

    def _oracle_fn(self, model: CombinationalModel, n_captures: int):
        n_a = len(model.a_inputs)

        def query(x_bits: list[int]) -> list[int]:
            scan_in = x_bits[:n_a]
            pi = x_bits[n_a:]
            response = self.oracle.query(scan_in, pi, n_captures=n_captures)
            observed = list(response.scan_out)
            if model.po_outputs:
                observed += list(response.primary_outputs)
            return observed

        return query

    # ------------------------------------------------------------------
    def run(self) -> DynUnlockResult:
        cfg = self.config
        watch = Stopwatch().start()
        queries_before = self.oracle.query_count

        rounds: list[RoundRecord] = []
        total_iterations = 0
        fixed_bits: dict[int, int] = {}
        model: CombinationalModel | None = None
        sat_result: SatAttackResult | None = None
        candidates: list[list[int]] = []

        for n_captures in range(1, cfg.max_captures + 1):
            model = self._build_model(n_captures)
            attack = SatAttack(
                locked=model.netlist,
                key_inputs=model.key_inputs,
                oracle_fn=self._oracle_fn(model, n_captures),
                config=SatAttackConfig(
                    max_iterations=cfg.max_iterations,
                    candidate_limit=cfg.candidate_limit,
                    timeout_s=cfg.timeout_s,
                    opt_level=0,  # the model above is already optimized
                ),
                fixed_key_bits=fixed_bits,
            )
            sat_result = attack.run()
            total_iterations += sat_result.iterations
            rounds.append(
                RoundRecord(
                    n_captures=n_captures,
                    iterations=sat_result.iterations,
                    n_candidates=sat_result.n_candidates,
                    candidates_exhausted=sat_result.candidates_exhausted,
                    converged=sat_result.converged,
                    fixed_bits_carried=len(fixed_bits),
                    runtime_s=sat_result.runtime_s,
                    conflicts=sat_result.solver_stats.conflicts,
                    learned_clauses=sat_result.solver_stats.learned,
                )
            )
            candidates = sat_result.key_candidates
            needs_restart = sat_result.converged and sat_result.candidates_exhausted
            if not sat_result.converged:
                break  # budget exhausted; report what we have
            if not needs_restart:
                break
            # Restart step: carry pinned seed bits into a deeper model.
            fixed_bits = dict(sat_result.fixed_key_bits)

        n_captures_used = rounds[-1].n_captures if rounds else 1
        n_candidates_reported = len(candidates)

        # Brute-force refinement against the live oracle.
        recovered: list[int] | None = None
        survivors: list[list[int]] = []
        if candidates and model is not None:
            rng = random.Random(cfg.verify_rng_seed)

            def replay(scan_in: list[int], pi: list[int]) -> list[int]:
                response = self.oracle.query(
                    scan_in, pi, n_captures=n_captures_used
                )
                observed = list(response.scan_out)
                if model.po_outputs:
                    observed += list(response.primary_outputs)
                return observed

            with obs.phase("replay"):
                refinement = refine_candidates_by_replay(
                    model,
                    candidates,
                    replay,
                    rng,
                    n_patterns=cfg.verify_patterns,
                    stop_at_one=False,
                )
            survivors = refinement.survivors
            if survivors:
                recovered = survivors[0]

        watch.stop()
        if obs.active():
            obs.incr("rounds", len(rounds))
            obs.incr(
                "oracle_queries",
                # SatAttack already counted its DIP-loop queries; add the
                # brute-force replay traffic so the span total matches
                # the oracle's own ledger.
                max(0, self.oracle.query_count - queries_before - total_iterations),
            )
        return DynUnlockResult(
            success=recovered is not None,
            recovered_seed=recovered,
            seed_candidates=candidates,
            iterations=total_iterations,
            n_seed_candidates=n_candidates_reported,
            runtime_s=watch.total,
            n_captures_used=n_captures_used,
            oracle_queries=self.oracle.query_count - queries_before,
            rounds=rounds,
            sat_result=sat_result,
            model=model,
        )


def dynunlock(
    netlist: Netlist,
    public_view: EffDynPublicView,
    oracle: ScanOracle,
    config: DynUnlockConfig | None = None,
) -> DynUnlockResult:
    """Convenience wrapper: construct and run a :class:`DynUnlock`."""
    return DynUnlock(netlist, public_view, oracle, config).run()
