"""Combinational modeling of dynamically locked scan chains.

The key observation of the paper: during shift, every scan cell holds one
payload bit XORed with a subset of keystream bits, and which subset is
fully determined by the chain geometry and the cycle schedule.  So the
sequential scramble collapses to two XOR *overlays* around the circuit's
combinational core:

* ``a'[l] = a[l] XOR (keystream bits crossed on the way in)``
* ``b[l]  = b'[l] XOR (keystream bits crossed on the way out)``

and every keystream bit is itself a known XOR of LFSR seed bits.  The
resulting netlist is a plain locked combinational circuit whose key inputs
are the seed — exactly what the SAT attack consumes (the paper's Fig. 4).

Rather than transcribing the index arithmetic of the paper's Algorithm 1
(whose pseudo-code has typos), the crossings are *derived* by running the
project's single shift implementation (:mod:`repro.scan.chain`) on
symbolic bits.  The oracle runs the same code on concrete bits, so the
model provably mirrors the hardware semantics; the literal Algorithm 1
transcription in :mod:`repro.core.algorithm1` is cross-checked against
this derivation in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

try:  # optional: only the dense overlay encoding needs numpy
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import copy_with_prefix, extract_combinational_core
from repro.prng.symbolic import LfsrUnrolling, SymbolicLfsr
from repro.scan.chain import ScanChainSpec, shift_in, shift_out

ObfuscationMode = Literal["dynamic", "static", "dos_restart"]


# ----------------------------------------------------------------------
# symbolic crossing derivation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TraceBit:
    """A scan-cell value during symbolic shifting.

    ``base`` identifies the payload bit (("a", l), ("b", l) or None for
    the constant-zero fill); ``keys`` is the set of (cycle, gate)
    keystream bits XORed onto it (XOR over GF(2) = symmetric difference).
    """

    base: tuple[str, int] | None
    keys: frozenset[tuple[int, int]] = field(default=frozenset())


def _xor_trace(x: _TraceBit, y: _TraceBit) -> _TraceBit:
    if x.base is not None and y.base is not None:
        raise AssertionError(
            "two payload bits met in one scan cell; shift semantics broken"
        )
    return _TraceBit(base=x.base or y.base, keys=x.keys ^ y.keys)


def _symbolic_keys(
    n_edges: int, n_gates: int, cycle_of_edge, start_edge: int = 0
) -> list[list[_TraceBit]]:
    """Per-edge symbolic key vectors; ``cycle_of_edge`` maps edge -> tag."""
    return [
        [
            _TraceBit(base=None, keys=frozenset({(cycle_of_edge(start_edge + e), g)}))
            for g in range(n_gates)
        ]
        for e in range(n_edges)
    ]


def derive_shift_in_crossings(
    spec: ScanChainSpec, mode: ObfuscationMode = "dynamic"
) -> list[frozenset[tuple[int, int]]]:
    """Keystream bits accumulated by each applied pattern bit.

    Returns ``crossings[l]`` = set of (absolute cycle, gate index) such
    that ``a'[l] = a[l] XOR keystream[cycle][gate] ...``.  Load edges run
    at absolute keystream cycles ``0 .. n_flops - 1``.
    """
    n = spec.n_flops
    cycle_of = (lambda e: e) if mode == "dynamic" else (lambda e: 0)
    keys = _symbolic_keys(n, spec.n_keygates, cycle_of)
    pattern = [_TraceBit(base=("a", l)) for l in range(n)]
    initial = [_TraceBit(base=None) for _ in range(n)]
    final = shift_in(spec, initial, pattern, keys, _xor_trace)
    crossings: list[frozenset[tuple[int, int]]] = []
    for l, bit in enumerate(final):
        if bit.base != ("a", l):
            raise AssertionError(
                f"shift-in permutation broken at position {l}: got {bit.base}"
            )
        crossings.append(bit.keys)
    return crossings


def derive_shift_out_crossings(
    spec: ScanChainSpec,
    n_captures: int = 1,
    mode: ObfuscationMode = "dynamic",
) -> list[frozenset[tuple[int, int]]]:
    """Keystream bits accumulated by each captured bit on its way out.

    Returns ``crossings[l]`` such that ``b[l] = b'[l] XOR ...``.  Unload
    edge ``j`` runs at absolute keystream cycle ``n_flops + n_captures +
    j`` (load consumed cycles ``0..n-1``, each capture edge one more).
    """
    n = spec.n_flops
    start = n + n_captures
    cycle_of = (lambda e: e) if mode == "dynamic" else (lambda e: 0)
    keys = _symbolic_keys(n - 1, spec.n_keygates, cycle_of, start_edge=start)
    captured = [_TraceBit(base=("b", l)) for l in range(n)]
    observed = shift_out(
        spec, captured, keys, _xor_trace, fill_bit=_TraceBit(base=None)
    )
    crossings: list[frozenset[tuple[int, int]]] = []
    for l, bit in enumerate(observed):
        if bit.base != ("b", l):
            raise AssertionError(
                f"shift-out permutation broken at position {l}: got {bit.base}"
            )
        crossings.append(bit.keys)
    return crossings


# ----------------------------------------------------------------------
# model construction
# ----------------------------------------------------------------------
@dataclass
class CombinationalModel:
    """The SAT-attack-ready combinational model.

    ``netlist`` has inputs ``a_inputs + pi_inputs + key_inputs`` and
    outputs ``b_outputs (+ po_outputs)``; the ``key_inputs`` are the LFSR
    seed bits in dynamic modes, or the static key bits in static mode.
    """

    netlist: Netlist
    a_inputs: list[str]
    pi_inputs: list[str]
    key_inputs: list[str]
    b_outputs: list[str]
    po_outputs: list[str]
    spec: ScanChainSpec
    mode: ObfuscationMode
    n_captures: int

    @property
    def x_inputs(self) -> list[str]:
        """Attacker-controlled inputs, in the order the oracle adapter uses."""
        return self.a_inputs + self.pi_inputs

    @property
    def observed_outputs(self) -> list[str]:
        return self.b_outputs + self.po_outputs


def build_combinational_model(
    netlist: Netlist,
    spec: ScanChainSpec,
    taps: Sequence[int] | None,
    key_bits: int,
    mode: ObfuscationMode = "dynamic",
    n_captures: int = 1,
    include_pos: bool = True,
    encoding: Literal["dense", "unrolled"] = "dense",
) -> CombinationalModel:
    """Build the locked combinational model (the paper's modeling step).

    ``netlist`` is the reverse-engineered functional netlist; ``spec`` the
    key-gate geometry; ``taps``/``key_bits`` the reverse-engineered LFSR
    (``taps`` may be None in ``static`` mode).  ``n_captures`` unrolls the
    functional core that many times, the paper's "new capture cycle"
    restart refinement.

    ``encoding`` selects how keystream bits appear in the netlist:

    * ``"unrolled"`` mirrors the paper's Fig. 4 -- the LFSR is unrolled
      into one XOR gate per update and overlay gates reference those
      shared nets;
    * ``"dense"`` (default) pre-reduces every overlay term to its GF(2)
      expression over the seed bits, producing shallow independent XOR
      trees that propagate better in the SAT solver.  The two encodings
      are logically equivalent (asserted by the test suite).
    """
    if spec.n_flops != netlist.n_dffs:
        raise ValueError("chain spec does not match the netlist flop count")
    if mode in ("dynamic", "dos_restart") and taps is None:
        raise ValueError(f"mode {mode!r} requires the LFSR taps")
    if key_bits < spec.n_keygates:
        raise ValueError("key width smaller than the number of key gates")
    if n_captures < 1:
        raise ValueError("at least one capture cycle is required")

    n = spec.n_flops
    core, ppi_nets, ppo_nets = extract_combinational_core(netlist)
    model = Netlist(name=f"{netlist.name}_model_{mode}")

    a_inputs = [f"dyn_a{l}" for l in range(n)]
    for net in a_inputs:
        model.add_input(net)
    pi_inputs = [f"c0::{net}" for net in netlist.inputs]

    if mode == "static":
        key_inputs = [f"dyn_key{g}" for g in range(spec.n_keygates)]
    else:
        key_inputs = [f"dyn_seed{j}" for j in range(key_bits)]

    # Core copies, one per capture cycle; PIs shared via BUF aliases.
    for k in range(n_captures):
        prefix = f"c{k}::"
        core_copy = copy_with_prefix(core, prefix)
        if k == 0:
            for net in core_copy.inputs:
                if net.startswith(f"{prefix}ppi_"):
                    continue  # driven by the shift-in overlay below
                model.add_input(net)
        else:
            for orig in netlist.inputs:
                model.add_gate(f"{prefix}{orig}", GateType.BUF, [f"c0::{orig}"])
            for idx in range(n):
                model.add_gate(
                    f"{prefix}ppi_{idx}",
                    GateType.BUF,
                    [f"c{k - 1}::ppo_{idx}"],
                )
        for gate in core_copy.gates.values():
            model.add_gate(gate.output, gate.gtype, gate.inputs)

    # Key inputs go in after the core's inputs for a stable public order.
    for net in key_inputs:
        model.add_input(net)

    # Crossing sets: the closed forms (repro.core.algorithm1) are proven
    # equal to the symbolic derivation by the test suite and are O(n*K)
    # instead of O(n^2 * K) set churn, which matters at paper scale.
    if mode == "dynamic":
        from repro.core.algorithm1 import (
            shift_in_crossings_closed_form,
            shift_out_crossings_closed_form,
        )

        crossings_in = shift_in_crossings_closed_form(spec)
        crossings_out = shift_out_crossings_closed_form(
            spec, n_captures=n_captures
        )
    else:
        crossings_in = derive_shift_in_crossings(spec, mode="static")
        crossings_out = derive_shift_out_crossings(
            spec, n_captures=n_captures, mode="static"
        )

    # Overlay operand resolution: map a crossing set to the nets XORed
    # onto the payload bit, per the selected keystream encoding.
    if mode == "static":
        def overlay_operands(crossings: frozenset[tuple[int, int]]) -> list[str]:
            return [key_inputs[g] for (_, g) in sorted(crossings)]
    elif encoding == "dense":
        sym = SymbolicLfsr(width=key_bits, taps=tuple(taps or ()))
        # Batch-reduce every crossing to its seed-space row in a single
        # ascending sweep over keystream cycles (random-order access would
        # cost a matrix power per backward jump at paper scale).
        dense_rows: dict[frozenset, np.ndarray] = {}

        def _reduce_all(crossing_sets: list[frozenset]) -> None:
            wanted: dict[int, list[tuple[frozenset, int]]] = {}
            for crossing in crossing_sets:
                if crossing in dense_rows:
                    continue
                dense_rows[crossing] = np.zeros(key_bits, dtype=np.uint8)
                for cycle, gate in crossing:
                    actual = 0 if mode == "dos_restart" else cycle
                    wanted.setdefault(actual, []).append((crossing, gate))
            for cycle, rows in sym.iter_rows(wanted.keys()):
                for crossing, gate in wanted[cycle]:
                    dense_rows[crossing] ^= rows[gate]

        def overlay_operands(crossings: frozenset[tuple[int, int]]) -> list[str]:
            row = dense_rows[crossings]
            return [key_inputs[j] for j in np.nonzero(row)[0]]

        _reduce_all(list(crossings_in) + list(crossings_out))
    else:
        unrolling = LfsrUnrolling(
            model, seed_nets=key_inputs, taps=tuple(taps or ())
        )

        def overlay_operands(crossings: frozenset[tuple[int, int]]) -> list[str]:
            actual = (
                [(0, g) for (_, g) in sorted(crossings)]
                if mode == "dos_restart"
                else sorted(crossings)
            )
            return [unrolling.key_net(c, g) for (c, g) in actual]

    # Shift-in overlay drives the first core copy's pseudo-inputs.
    for l in range(n):
        target = f"c0::ppi_{l}"
        operands = [a_inputs[l]] + overlay_operands(crossings_in[l])
        if len(operands) == 1:
            model.add_gate(target, GateType.BUF, operands)
        else:
            model.add_gate(target, GateType.XOR, operands)

    # Shift-out overlay reads the last core copy's pseudo-outputs.
    last = f"c{n_captures - 1}::"
    b_outputs = [f"dyn_b{l}" for l in range(n)]
    for l in range(n):
        operands = [f"{last}ppo_{l}"] + overlay_operands(crossings_out[l])
        if len(operands) == 1:
            model.add_gate(b_outputs[l], GateType.BUF, operands)
        else:
            model.add_gate(b_outputs[l], GateType.XOR, operands)
        model.add_output(b_outputs[l])

    po_outputs: list[str] = []
    if include_pos:
        for net in netlist.outputs:
            po_net = f"{last}{net}"
            model.add_output(po_net)
            po_outputs.append(po_net)

    return CombinationalModel(
        netlist=model,
        a_inputs=a_inputs,
        pi_inputs=pi_inputs,
        key_inputs=key_inputs,
        b_outputs=b_outputs,
        po_outputs=po_outputs,
        spec=spec,
        mode=mode,
        n_captures=n_captures,
    )
