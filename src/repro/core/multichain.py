"""DynUnlock against multi-chain locked designs (extension).

The modeling step generalises verbatim: with all chains clocked together
and padded loads, the keystream cycle at which a payload bit crosses a
key gate depends only on the *maximum* chain length, so the closed forms
of :mod:`repro.core.algorithm1` carry over with ``n := max_len`` and the
key-gate index replaced by the global key-bit index.  The correctness
criterion -- model(true seed) == oracle -- is asserted in the test suite
against the independently implemented multi-chain oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

try:  # optional: gated so the numpy-less scalar paths can import repro
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.core.modeling import CombinationalModel
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import copy_with_prefix, extract_combinational_core
from repro.prng.symbolic import SymbolicLfsr
from repro.scan.multichain import MultiChainScanOracle, MultiChainSpec
from repro.util.timing import Stopwatch


def derive_multichain_crossings(
    spec: MultiChainSpec, n_captures: int = 1
) -> tuple[list[frozenset], list[frozenset]]:
    """(cycle, global key index) crossings per *global* flop index."""
    n = spec.max_length
    crossings_in: list[frozenset] = []
    crossings_out: list[frozenset] = []
    for chain in range(spec.n_chains):
        gates = spec.gates_in_chain(chain)
        length = spec.chain_lengths[chain]
        for l in range(length):
            hits_in = {
                (n - l + position, key_index)
                for key_index, position in gates
                if position < l
            }
            hits_out = {
                (n + n_captures + position - l, key_index)
                for key_index, position in gates
                if position >= l
            }
            crossings_in.append(frozenset(hits_in))
            crossings_out.append(frozenset(hits_out))
    return crossings_in, crossings_out


def build_multichain_model(
    netlist: Netlist,
    spec: MultiChainSpec,
    taps: Sequence[int],
    key_bits: int,
    n_captures: int = 1,
    include_pos: bool = True,
) -> CombinationalModel:
    """Combinational model of a multi-chain EFF-Dyn lock.

    Returns a :class:`repro.core.modeling.CombinationalModel`; ``a`` and
    ``b`` indices use the global flop order, matching the oracle.
    """
    if spec.n_flops != netlist.n_dffs:
        raise ValueError("chain spec does not match the netlist flop count")
    if key_bits < spec.n_keygates:
        raise ValueError("key width smaller than the number of key gates")
    n_total = spec.n_flops

    core, _, _ = extract_combinational_core(netlist)
    model = Netlist(name=f"{netlist.name}_mc_model")
    a_inputs = [f"dyn_a{l}" for l in range(n_total)]
    for net in a_inputs:
        model.add_input(net)
    pi_inputs = [f"c0::{net}" for net in netlist.inputs]
    key_inputs = [f"dyn_seed{j}" for j in range(key_bits)]

    for k in range(n_captures):
        prefix = f"c{k}::"
        core_copy = copy_with_prefix(core, prefix)
        if k == 0:
            for net in core_copy.inputs:
                if not net.startswith(f"{prefix}ppi_"):
                    model.add_input(net)
        else:
            for orig in netlist.inputs:
                model.add_gate(f"{prefix}{orig}", GateType.BUF, [f"c0::{orig}"])
            for idx in range(n_total):
                model.add_gate(
                    f"{prefix}ppi_{idx}", GateType.BUF, [f"c{k - 1}::ppo_{idx}"]
                )
        for gate in core_copy.gates.values():
            model.add_gate(gate.output, gate.gtype, gate.inputs)

    for net in key_inputs:
        model.add_input(net)

    sym = SymbolicLfsr(width=key_bits, taps=tuple(taps))
    crossings_in, crossings_out = derive_multichain_crossings(
        spec, n_captures=n_captures
    )

    # One ascending keystream sweep for all overlay rows (see the
    # equivalent batching note in repro.core.modeling).
    dense_rows: dict[frozenset, np.ndarray] = {}
    wanted: dict[int, list[tuple[frozenset, int]]] = {}
    for crossing in list(crossings_in) + list(crossings_out):
        if crossing in dense_rows:
            continue
        dense_rows[crossing] = np.zeros(key_bits, dtype=np.uint8)
        for cycle, key_index in crossing:
            wanted.setdefault(cycle, []).append((crossing, key_index))
    for cycle, rows in sym.iter_rows(wanted.keys()):
        for crossing, key_index in wanted[cycle]:
            dense_rows[crossing] ^= rows[key_index]

    def overlay_operands(crossings: frozenset) -> list[str]:
        return [key_inputs[j] for j in np.nonzero(dense_rows[crossings])[0]]
    for l in range(n_total):
        operands = [a_inputs[l]] + overlay_operands(crossings_in[l])
        target = f"c0::ppi_{l}"
        if len(operands) == 1:
            model.add_gate(target, GateType.BUF, operands)
        else:
            model.add_gate(target, GateType.XOR, operands)

    last = f"c{n_captures - 1}::"
    b_outputs = [f"dyn_b{l}" for l in range(n_total)]
    for l in range(n_total):
        operands = [f"{last}ppo_{l}"] + overlay_operands(crossings_out[l])
        if len(operands) == 1:
            model.add_gate(b_outputs[l], GateType.BUF, operands)
        else:
            model.add_gate(b_outputs[l], GateType.XOR, operands)
        model.add_output(b_outputs[l])

    po_outputs: list[str] = []
    if include_pos:
        for net in netlist.outputs:
            po_net = f"{last}{net}"
            model.add_output(po_net)
            po_outputs.append(po_net)

    # Reuse the single-chain result type; `spec` differs, so store a
    # surrogate single-chain view only for the shared fields.
    from repro.scan.chain import ScanChainSpec

    surrogate = ScanChainSpec(n_flops=n_total)
    return CombinationalModel(
        netlist=model,
        a_inputs=a_inputs,
        pi_inputs=pi_inputs,
        key_inputs=key_inputs,
        b_outputs=b_outputs,
        po_outputs=po_outputs,
        spec=surrogate,
        mode="dynamic",
        n_captures=n_captures,
    )


@dataclass
class MultiChainAttackResult:
    """Outcome of DynUnlock against a multi-chain oracle."""
    success: bool
    recovered_seed: list[int] | None
    seed_candidates: list[list[int]]
    iterations: int
    runtime_s: float


def dynunlock_multichain(
    netlist: Netlist,
    spec: MultiChainSpec,
    taps: Sequence[int],
    key_bits: int,
    oracle: MultiChainScanOracle,
    candidate_limit: int = 256,
    verify_patterns: int = 24,
    timeout_s: float | None = None,
    rng_seed: int = 0x3C4A,
) -> MultiChainAttackResult:
    """Run DynUnlock against a multi-chain oracle."""
    watch = Stopwatch().start()
    model = build_multichain_model(netlist, spec, taps, key_bits)
    n_a = len(model.a_inputs)

    def oracle_fn(x_bits: list[int]) -> list[int]:
        response = oracle.query(x_bits[:n_a], x_bits[n_a:])
        observed = list(response.scan_out)
        if model.po_outputs:
            observed += list(response.primary_outputs)
        return observed

    attack = SatAttack(
        model.netlist,
        model.key_inputs,
        oracle_fn,
        SatAttackConfig(candidate_limit=candidate_limit, timeout_s=timeout_s),
    )
    result = attack.run()

    recovered: list[int] | None = None
    if result.key_candidates:
        refinement = refine_candidates_by_replay(
            model,
            result.key_candidates,
            lambda scan_in, pi: oracle_fn(list(scan_in) + list(pi)),
            random.Random(rng_seed),
            n_patterns=verify_patterns,
            stop_at_one=False,
        )
        if refinement.survivors:
            recovered = refinement.survivors[0]

    watch.stop()
    return MultiChainAttackResult(
        success=recovered is not None,
        recovered_seed=recovered,
        seed_candidates=result.key_candidates,
        iterations=result.iterations,
        runtime_s=watch.total,
    )
