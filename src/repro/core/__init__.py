"""DynUnlock — the paper's contribution.

* :mod:`repro.core.modeling` — turns a dynamically scan-locked sequential
  circuit into a *combinational* locked circuit whose key inputs are the
  LFSR seed bits (the paper's Fig. 4 / Algorithm 1);
* :mod:`repro.core.algorithm1` — a literal transcription of the paper's
  Algorithm 1 pseudo-code operating on explicit keystream bits, used to
  cross-check the derived overlays;
* :mod:`repro.core.dynunlock` — the full attack driver (the paper's
  Fig. 3 flowchart): model, SAT-attack, enumerate seed candidates,
  restart with extra capture cycles if needed, refine by oracle replay;
* :mod:`repro.core.analysis` — GF(2) overlay matrices and candidate-space
  analysis (why candidate counts come out as powers of two).
"""

from repro.core.modeling import (
    CombinationalModel,
    build_combinational_model,
    derive_shift_in_crossings,
    derive_shift_out_crossings,
)
from repro.core.dynunlock import DynUnlock, DynUnlockConfig, DynUnlockResult
from repro.core.analysis import overlay_matrices, candidate_space_dimension
from repro.core.cnf_dump import CnfDumper, probe_fixed_key_bits
from repro.core.multichain import (
    build_multichain_model,
    dynunlock_multichain,
)

__all__ = [
    "CnfDumper",
    "probe_fixed_key_bits",
    "build_multichain_model",
    "dynunlock_multichain",
    "CombinationalModel",
    "build_combinational_model",
    "derive_shift_in_crossings",
    "derive_shift_out_crossings",
    "DynUnlock",
    "DynUnlockConfig",
    "DynUnlockResult",
    "overlay_matrices",
    "candidate_space_dimension",
]
