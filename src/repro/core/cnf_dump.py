"""Per-iteration CNF snapshots and early seed-bit extraction.

The paper: "We modify the code-base to dump a conjunctive normal form
(CNF) after each iteration, which may reveal some of the seed bits."

This module reproduces that workflow.  :class:`CnfDumper` is an
iteration hook for :class:`repro.attack.satattack.SatAttack` that writes
a DIMACS snapshot per DIP, and :func:`probe_fixed_key_bits` performs the
"reveal" step: a failed-literal probe per seed variable (is ``k_i = v``
refutable under the constraints accumulated so far?) that reports every
seed bit the current CNF already pins down -- before the attack has even
converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.attack.satattack import IterationRecord
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver


def probe_fixed_key_bits(
    solver: CdclSolver,
    key_vars: list[int],
    assumptions: list[int] | None = None,
    max_conflicts: int = 2000,
) -> dict[int, int]:
    """Seed bits already forced by the solver's current clause set.

    For each key variable, assume each polarity in turn; if one polarity
    is refuted (UNSAT within the conflict budget) the opposite value is
    forced.  Indeterminate probes (budget exhausted) are reported as
    unknown, so the result is sound but possibly incomplete -- matching
    the paper's "may reveal some of the seed bits".
    """
    base = list(assumptions or [])
    fixed: dict[int, int] = {}
    for index, var in enumerate(key_vars):
        positive = solver.solve(
            assumptions=base + [var], max_conflicts=max_conflicts
        )
        if positive.satisfiable is False:
            fixed[index] = 0
            continue
        negative = solver.solve(
            assumptions=base + [-var], max_conflicts=max_conflicts
        )
        if negative.satisfiable is False:
            fixed[index] = 1
    return fixed


@dataclass
class CnfSnapshot:
    """One per-iteration record: CNF size, optional DIMACS path, revealed bits."""
    iteration: int
    n_vars: int
    n_clauses: int
    path: Path | None
    revealed_bits: dict[int, int] = field(default_factory=dict)


class CnfDumper:
    """Iteration hook: DIMACS snapshot (+ optional seed probe) per DIP.

    Wire into the attack with::

        dumper = CnfDumper(attack, directory="dumps", probe=True)
        attack.config.iteration_hook = dumper

    ``directory=None`` keeps snapshots in memory only (sizes are still
    recorded).  ``probe=True`` runs :func:`probe_fixed_key_bits` against
    the attack's live solver after each iteration.
    """

    def __init__(
        self,
        attack,
        directory: str | Path | None = None,
        probe: bool = False,
        probe_conflicts: int = 2000,
    ):
        self._attack = attack
        self._dir = Path(directory) if directory is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._probe = probe
        self._probe_conflicts = probe_conflicts
        self.snapshots: list[CnfSnapshot] = []

    def __call__(self, record: IterationRecord) -> None:
        path: Path | None = None
        if self._dir is not None:
            path = self._dir / f"iteration_{record.iteration:04d}.cnf"
            cnf = Cnf(self._attack.encoder.cnf.n_vars)
            cnf.clauses = list(self._attack.encoder.cnf.clauses)
            cnf.save(path)
        revealed: dict[int, int] = {}
        if self._probe:
            revealed = probe_fixed_key_bits(
                self._attack.solver,
                self._attack.key_vars_a,
                assumptions=[-self._attack.act_var],
                max_conflicts=self._probe_conflicts,
            )
        self.snapshots.append(
            CnfSnapshot(
                iteration=record.iteration,
                n_vars=record.n_vars,
                n_clauses=record.n_clauses,
                path=path,
                revealed_bits=revealed,
            )
        )
