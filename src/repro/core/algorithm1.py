"""Literal counterpart of the paper's Algorithm 1.

Algorithm 1 of the paper constructs (i) the LFSR keystream equations,
(ii) the relation between the supplied pattern ``a`` and the applied
pattern ``a'``, and (iii) the relation between the captured response
``b'`` and the observed stream ``b``, all in terms of per-cycle key bits.

The pseudo-code as printed contains index typos (loop bounds drift), so
this module implements the *closed form* of the same three loops under
the semantics fixed in :mod:`repro.scan.chain`:

* load edge for the bit destined to position ``l`` crossing key gate
  ``g`` (at chain position ``p_g``): cycle ``n - l + p_g``, for every
  gate with ``p_g < l``;
* unload edge for the bit captured at position ``l`` crossing gate
  ``g``: cycle ``n + n_captures + p_g - l``, for every gate with
  ``p_g >= l``.

The test suite proves these formulas equal the symbolic derivation in
:mod:`repro.core.modeling` for randomised chain geometries, which is the
property Algorithm 1 exists to provide.
"""

from __future__ import annotations

from typing import Sequence

from repro.prng.lfsr import FibonacciLfsr, Keystream
from repro.scan.chain import ScanChainSpec


def shift_in_crossings_closed_form(
    spec: ScanChainSpec,
) -> list[frozenset[tuple[int, int]]]:
    """Closed-form (cycle, gate) crossings for the a -> a' relation."""
    n = spec.n_flops
    crossings: list[frozenset[tuple[int, int]]] = []
    for l in range(n):
        hits = {
            (n - l + pos, g)
            for g, pos in enumerate(spec.keygate_positions)
            if pos < l
        }
        crossings.append(frozenset(hits))
    return crossings


def shift_out_crossings_closed_form(
    spec: ScanChainSpec, n_captures: int = 1
) -> list[frozenset[tuple[int, int]]]:
    """Closed-form (cycle, gate) crossings for the b' -> b relation."""
    n = spec.n_flops
    crossings: list[frozenset[tuple[int, int]]] = []
    for l in range(n):
        hits = {
            (n + n_captures + pos - l, g)
            for g, pos in enumerate(spec.keygate_positions)
            if pos >= l
        }
        crossings.append(frozenset(hits))
    return crossings


def algorithm1(
    spec: ScanChainSpec,
    taps: Sequence[int],
    seed: Sequence[int],
    a: Sequence[int],
    b_prime: Sequence[int],
    n_captures: int = 1,
) -> tuple[list[int], list[int]]:
    """The paper's Algorithm 1: Input (seed, a, b') -> Output (a', b).

    Expands the LFSR from ``seed`` (first loop of the pseudo-code), then
    applies the shift-in and shift-out key accumulations (second and
    third loops) using the closed-form crossings above.
    """
    n = spec.n_flops
    if len(a) != n or len(b_prime) != n:
        raise ValueError("pattern/response length must equal the flop count")
    width = len(seed)
    if width < spec.n_keygates:
        raise ValueError("seed narrower than the number of key gates")

    # Loop 1: LFSR keystream. keys[t][i] is key bit i during cycle t.
    total_cycles = 2 * n + n_captures  # load + captures + unload edges
    stream = Keystream(FibonacciLfsr(width=width, seed_bits=list(seed), taps=taps))
    keys = [stream.next_key() for _ in range(total_cycles)]

    # Loop 2: a -> a'.
    a_prime: list[int] = []
    for l, crossing in enumerate(shift_in_crossings_closed_form(spec)):
        bit = int(a[l])
        for cycle, gate in crossing:
            bit ^= keys[cycle][gate]
        a_prime.append(bit)

    # Loop 3: b' -> b.
    b: list[int] = []
    for l, crossing in enumerate(
        shift_out_crossings_closed_form(spec, n_captures=n_captures)
    ):
        bit = int(b_prime[l])
        for cycle, gate in crossing:
            bit ^= keys[cycle][gate]
        b.append(bit)
    return a_prime, b
