"""The farm's global corpus store.

Every interesting trial a farm round produces lands here as a
:class:`~repro.fuzz.corpus.CrashEntry` superset -- the same JSON shape
``dynunlock fuzz-replay`` consumes (extra keys are ignored by
``CrashEntry.from_dict``), plus farm bookkeeping: the entry ``kind``
(``violation``/``crash``/``near-miss``/``novel-shape``), the scheduler
cell it came from, a content hash and a scalar trial size.

Layout::

    <state_dir>/corpus/<invariant>/<content-hash>.json   entries
    <state_dir>/journal.jsonl                            append-only log

Dedupe is by content hash of the *shrunk* trial (invariant + params):
re-finding a known reproducer is a no-op, so re-running a round after a
mid-commit kill converges on identical bytes.  Re-minimization is by
identity -- (kind, invariant, attack, defense, shape bucket) -- when a
strictly smaller reproducer for an identity lands, it replaces the
bigger file.

Writes are journal-style and safe under concurrent campaigns: entry
files are written atomically (temp + rename) and the journal is a
single ``O_APPEND`` write per record, so readers never see a torn
entry.  The journal is forensic; the authoritative index is always
rebuilt from the entry files themselves.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.fuzz.corpus import CorpusError, CrashEntry

#: Entry kinds, in display order.
ENTRY_KINDS = ("violation", "crash", "near-miss", "novel-shape")


def content_hash(invariant: str, trial: dict) -> str:
    """Stable identity of one (invariant, shrunk trial) reproducer."""
    blob = json.dumps(
        {"invariant": invariant, "trial": trial},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def trial_size(trial: dict) -> int:
    """Scalar 'how big is this reproducer' metric (smaller = better).

    Ordered by what dominates replay cost: flop count, then key width,
    then I/O width, then gate density.  Matches the shrinker's notion
    of progress closely enough that a shrunk trial always scores lower
    than its original.
    """
    return (
        int(trial.get("n_flops", 0)) * 1000
        + int(trial.get("key_bits", 0)) * 100
        + (int(trial.get("n_inputs", 0)) + int(trial.get("n_outputs", 0))) * 10
        + int(float(trial.get("gates_per_flop", 0.0)) * 2)
        + int(trial.get("max_fanin", 0))
    )


def entry_identity(kind: str, entry: CrashEntry, cell: str) -> str:
    """Re-minimization bucket: one best reproducer per failure mode."""
    trial = entry.trial
    bucket = cell.rsplit("|", 1)[-1] if cell else "?"
    return "|".join(
        [
            kind,
            entry.invariant,
            str(trial.get("attack", "?")),
            str(trial.get("defense", "?")),
            bucket,
        ]
    )


@dataclass
class IndexRecord:
    """One corpus entry as the in-memory index sees it."""

    hash: str
    identity: str
    kind: str
    invariant: str
    size: int
    path: Path


class FarmCorpus:
    """Deduplicating, self-minimizing store of interesting trials."""

    def __init__(self, state_dir: str | Path):
        self.state_dir = Path(state_dir)
        self.entries_dir = self.state_dir / "corpus"
        self.journal_path = self.state_dir / "journal.jsonl"
        self._by_hash: dict[str, IndexRecord] = {}
        self._by_identity: dict[str, IndexRecord] = {}
        self._load()

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        if not self.entries_dir.is_dir():
            return
        for path in sorted(self.entries_dir.rglob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                raise CorpusError(f"unreadable corpus entry {path}: {exc}")
            if not isinstance(data, dict):
                raise CorpusError(f"corpus entry {path} is not a JSON object")
            entry = CrashEntry.from_dict(data)
            kind = str(data.get("kind", "violation"))
            cell = str(data.get("cell", "?|?|?"))
            record = IndexRecord(
                hash=str(
                    data.get("content_hash")
                    or content_hash(entry.invariant, entry.trial)
                ),
                identity=str(
                    data.get("identity") or entry_identity(kind, entry, cell)
                ),
                kind=kind,
                invariant=entry.invariant,
                size=int(data.get("size", trial_size(entry.trial))),
                path=path,
            )
            self._by_hash[record.hash] = record
            best = self._by_identity.get(record.identity)
            if best is None or record.size < best.size:
                self._by_identity[record.identity] = record

    # -- writing ----------------------------------------------------------

    def _journal(self, record: dict[str, Any]) -> None:
        self.state_dir.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True) + "\n"
        fd = os.open(
            self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def _write_file(self, path: Path, payload: dict[str, Any]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def add(
        self,
        entry: CrashEntry,
        *,
        kind: str = "violation",
        cell: str = "?|?|?",
        round_index: int | None = None,
        identity: str | None = None,
    ) -> str:
        """Persist one interesting trial; returns the disposition.

        ``"new"``        first reproducer for its identity;
        ``"minimized"``  replaced a bigger reproducer (old file removed);
        ``"duplicate"``  exact content already stored (no-op);
        ``"ignored"``    a same-or-bigger reproducer already exists.

        ``identity`` overrides the default re-minimization bucket
        (novel-shape entries key on their shape signature, not their
        cell, so one signature never evicts another).
        """
        digest = content_hash(entry.invariant, entry.trial)
        if digest in self._by_hash:
            return "duplicate"
        if identity is None:
            identity = entry_identity(kind, entry, cell)
        size = trial_size(entry.trial)
        best = self._by_identity.get(identity)
        if best is not None and size >= best.size:
            return "ignored"
        path = self.entries_dir / entry.invariant / f"{digest}.json"
        payload = entry.to_dict()
        payload.update(
            kind=kind,
            cell=cell,
            content_hash=digest,
            identity=identity,
            size=size,
        )
        self._write_file(path, payload)
        journal_record = {
            "op": "replace" if best is not None else "add",
            "hash": digest,
            "identity": identity,
            "invariant": entry.invariant,
            "kind": kind,
            "size": size,
            "path": str(path.relative_to(self.state_dir)),
        }
        if round_index is not None:
            journal_record["round"] = round_index
        if best is not None:
            journal_record["replaced"] = best.hash
            try:
                best.path.unlink()
            except OSError:
                pass
            self._by_hash.pop(best.hash, None)
        self._journal(journal_record)
        record = IndexRecord(
            hash=digest,
            identity=identity,
            kind=kind,
            invariant=entry.invariant,
            size=size,
            path=path,
        )
        self._by_hash[digest] = record
        self._by_identity[identity] = record
        return "minimized" if best is not None else "new"

    # -- reading ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_hash)

    def records(self) -> Iterator[IndexRecord]:
        for digest in sorted(self._by_hash):
            yield self._by_hash[digest]

    def stats(self) -> dict[str, Any]:
        by_kind: dict[str, int] = {}
        by_invariant: dict[str, int] = {}
        for record in self._by_hash.values():
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
            by_invariant[record.invariant] = (
                by_invariant.get(record.invariant, 0) + 1
            )
        return {
            "entries": len(self._by_hash),
            "identities": len(self._by_identity),
            "by_kind": dict(sorted(by_kind.items())),
            "by_invariant": dict(sorted(by_invariant.items())),
        }
