"""``repro.farm``: the continuous fuzz farm.

A farm is a long-running, resumable loop of seeded fuzz rounds on top
of :mod:`repro.fuzz` and :mod:`repro.runner`:

* :mod:`repro.farm.corpus` -- a global deduplicating corpus store that
  persists every interesting trial (violations, crashes, near-misses,
  novel circuit shapes) with journal-style atomic writes;
* :mod:`repro.farm.schedule` -- a coverage-style scheduler over
  (attack x defense x circuit-shape-bucket) cells that biases sampling
  toward recently-violating or under-explored cells;
* :mod:`repro.farm.driver` -- the rolling campaign driver: time- or
  round-budgeted rounds, a checkpoint after every round so a killed
  farm resumes byte-identically, metrics through
  :mod:`repro.observability`.

Everything persisted (state, corpus, journal) is a pure function of
``(seed, completed rounds)``: no wall-clock values land on disk, so an
interrupted-and-resumed farm converges on the same bytes as an
uninterrupted one.
"""

from repro.farm.corpus import FarmCorpus
from repro.farm.driver import FarmConfig, FarmDriver, FarmReport, run_farm
from repro.farm.schedule import SHAPE_BUCKETS, FarmScheduler, shape_bucket

__all__ = [
    "FarmCorpus",
    "FarmConfig",
    "FarmDriver",
    "FarmReport",
    "FarmScheduler",
    "SHAPE_BUCKETS",
    "shape_bucket",
    "run_farm",
]
