"""The rolling farm campaign driver.

A farm run is a sequence of *rounds*.  Each round: decay the
scheduler's hot scores, plan ``round_trials`` trials from the frozen
weights, execute them as ordinary ``"fuzz"`` JobSpecs through the
cached parallel scheduler, collect violations exactly like the one-shot
campaign (including the stability meta-probes), shrink and route every
finding into the deduplicating :class:`~repro.farm.corpus.FarmCorpus`
(plus near-miss and novel-shape entries the one-shot campaign would
discard), account the outcomes back into the scheduler, and only then
atomically commit ``state.json``.

Because the commit is the last step and every corpus write is
content-addressed and idempotent, a farm killed at *any* point -- even
mid-corpus-commit -- resumes by replaying its torn round from the last
checkpoint and converges on byte-identical state: nothing persisted
depends on wall clocks, process ids, or scheduling order.

Budgets: ``budget_s`` bounds one invocation's wall clock (the farm
stops *starting* rounds past it); ``max_rounds`` bounds the farm's
lifetime total round count and is the deterministic budget -- two
invocations with the same (seed, max_rounds) produce the same state no
matter how they were interrupted.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.farm.corpus import FarmCorpus, content_hash
from repro.farm.schedule import FarmScheduler, cell_key, shape_bucket
from repro.fuzz.campaign import (
    CampaignReport,
    collect_violations,
    shrink_and_persist,
)
from repro.fuzz.corpus import CrashEntry
from repro.fuzz.invariants import CRASH
from repro.runner.spec import JobSpec

STATE_SCHEMA_VERSION = 1

ProgressFn = Callable[[str], None]


class FarmStateError(ValueError):
    """Raised when a state dir disagrees with the requested farm config."""


@dataclass
class FarmConfig:
    """Everything that shapes a farm run (all JSON-safe)."""

    seed: int = 0
    round_trials: int = 24
    max_rounds: int = 0  # lifetime total; 0 = unbounded
    budget_s: float | None = None  # per-invocation wall clock
    concurrency: int = 1
    state_dir: str = ".repro_farm"
    bias: float = 4.0
    stability_every: int = 8
    shrink_limit: int = 8
    shrink_evals: int = 48
    opt_level: int | None = None
    attacks: list[str] | None = None
    defenses: list[str] | None = None


@dataclass
class FarmRound:
    """One committed round's accounting."""

    index: int
    trials: int
    violations: int
    new_entries: int
    minimized: int
    duplicates: int
    n_cached: int
    n_computed: int
    wall_s: float


@dataclass
class FarmReport:
    """What one ``run()`` invocation did."""

    seed: int
    rounds: list[FarmRound] = field(default_factory=list)
    total_rounds: int = 0  # lifetime, from state
    total_trials: int = 0
    total_violations: int = 0
    corpus_stats: dict[str, Any] = field(default_factory=dict)
    coverage: tuple[int, int] = (0, 0)
    hot_cells: list[tuple[str, dict[str, float]]] = field(default_factory=list)
    stopped: str = "rounds"
    wall_s: float = 0.0

    @property
    def trials_this_run(self) -> int:
        return sum(r.trials for r in self.rounds)

    @property
    def violations_this_run(self) -> int:
        return sum(r.violations for r in self.rounds)

    def summary(self) -> str:
        covered, total = self.coverage
        return (
            f"{len(self.rounds)} round(s) this run "
            f"({self.trials_this_run} trials, "
            f"{self.violations_this_run} violations); farm totals: "
            f"{self.total_rounds} rounds, {self.total_trials} trials, "
            f"{self.total_violations} violations; corpus "
            f"{self.corpus_stats.get('entries', 0)} entr"
            f"{'y' if self.corpus_stats.get('entries', 0) == 1 else 'ies'}; "
            f"cells {covered}/{total}; stopped: {self.stopped}; "
            f"{self.wall_s:.2f}s wall"
        )


def _applicable_pairs(config: FarmConfig) -> list[tuple[str, str]]:
    from repro.matrix.registry import applicable_pairs

    return applicable_pairs(config.attacks or None, config.defenses or None)


class FarmDriver:
    """Owns one state dir: corpus + scheduler + checkpointed rounds."""

    def __init__(
        self,
        profile,
        config: FarmConfig,
        *,
        store=None,
        observer=None,
        progress: ProgressFn | None = None,
    ):
        self.profile = profile
        self.config = config
        self.store = store
        self.observer = observer
        self.say: ProgressFn = progress if progress is not None else (
            lambda _msg: None
        )
        self.state_dir = Path(config.state_dir)
        self.state_path = self.state_dir / "state.json"
        self.corpus = FarmCorpus(self.state_dir)
        pairs = _applicable_pairs(config)
        self.scheduler = FarmScheduler(pairs, bias=config.bias)
        self.round_index = 0  # completed rounds so far
        self.totals = {"trials": 0, "violations": 0}
        self._load_state(pairs)

    # -- state ------------------------------------------------------------

    def _load_state(self, pairs: list[tuple[str, str]]) -> None:
        if not self.state_path.is_file():
            return
        try:
            data = json.loads(self.state_path.read_text())
        except (OSError, ValueError) as exc:
            raise FarmStateError(f"unreadable farm state {self.state_path}: {exc}")
        if int(data.get("seed", -1)) != self.config.seed:
            raise FarmStateError(
                f"state dir {self.state_dir} holds a farm with seed "
                f"{data.get('seed')}; pass --seed {data.get('seed')} or a "
                "fresh --state directory"
            )
        stored_pairs = [tuple(pair) for pair in data.get("pairs", [])]
        if stored_pairs != pairs:
            raise FarmStateError(
                f"state dir {self.state_dir} was built with different "
                "attack/defense filters; use a fresh --state directory"
            )
        self.scheduler = FarmScheduler.from_dict(data["scheduler"])
        self.round_index = int(data.get("rounds", 0))
        totals = data.get("totals", {})
        self.totals = {
            "trials": int(totals.get("trials", 0)),
            "violations": int(totals.get("violations", 0)),
        }

    def _commit_state(self) -> None:
        """Atomically checkpoint after a round.  No wall-clock fields."""
        payload = {
            "schema_version": STATE_SCHEMA_VERSION,
            "seed": self.config.seed,
            "rounds": self.round_index,
            "round_trials": self.config.round_trials,
            "pairs": [list(pair) for pair in self.scheduler.pairs],
            "scheduler": self.scheduler.to_dict(),
            "totals": dict(sorted(self.totals.items())),
        }
        self.state_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.state_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.state_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- rounds -----------------------------------------------------------

    def _corpus_sink(
        self, round_index: int, dispositions: Counter
    ) -> Callable[[CrashEntry], str | None]:
        def sink(entry: CrashEntry) -> str | None:
            trial = entry.trial
            cell = cell_key(
                str(trial.get("attack", "?")),
                str(trial.get("defense", "?")),
                shape_bucket(int(trial.get("n_flops", 0))),
            )
            kind = "crash" if entry.invariant == CRASH else "violation"
            disposition = self.corpus.add(
                entry, kind=kind, cell=cell, round_index=round_index
            )
            dispositions[disposition] += 1
            if disposition in ("new", "minimized"):
                digest = content_hash(entry.invariant, entry.trial)
                return str(
                    self.corpus.entries_dir / entry.invariant / f"{digest}.json"
                )
            return None

        return sink

    def _harvest_shapes(
        self, report: CampaignReport, round_index: int, dispositions: Counter
    ) -> None:
        """Near-miss and novel-shape corpus entries (beyond violations)."""
        from repro.reports.profiles import profile_to_dict

        profile_dict = profile_to_dict(self.profile)
        for outcome in report.outcomes:
            if not outcome.ok or outcome.result is None:
                continue
            trial = dict(outcome.spec.params)
            cell = cell_key(
                str(trial.get("attack", "?")),
                str(trial.get("defense", "?")),
                shape_bucket(int(trial.get("n_flops", 0))),
            )
            signature = self.scheduler.novel_shape(trial)
            if signature is not None:
                entry = CrashEntry(
                    invariant="novel-shape",
                    detail=f"first circuit with shape {signature}",
                    trial=trial,
                    original_trial=trial,
                    profile=profile_dict,
                    meta={"farm_seed": self.config.seed, "round": round_index},
                )
                dispositions[
                    self.corpus.add(
                        entry,
                        kind="novel-shape",
                        cell=cell,
                        round_index=round_index,
                        identity=f"novel-shape|{signature}",
                    )
                ] += 1
            result = outcome.result
            if (
                result.get("built")
                and not result.get("success")
                and not result.get("violations")
            ):
                entry = CrashEntry(
                    invariant="near-miss",
                    detail=(
                        f"attack {trial.get('attack')} failed against "
                        f"{trial.get('defense')} "
                        f"(iterations={result.get('iterations')}, "
                        f"queries={result.get('queries')})"
                    ),
                    trial=trial,
                    original_trial=trial,
                    profile=profile_dict,
                    meta={"farm_seed": self.config.seed, "round": round_index},
                )
                dispositions[
                    self.corpus.add(
                        entry,
                        kind="near-miss",
                        cell=cell,
                        round_index=round_index,
                    )
                ] += 1

    def _emit_round(self, stats: FarmRound) -> None:
        """Stream one round's outcome through the observability session."""
        if self.observer is None:
            return
        session = self.observer.session
        metrics = session.metrics
        trials_counter = metrics.counter(
            "repro_fuzz_trials_total", "Fuzz trials by disposition"
        )
        trials_counter.inc(stats.trials, disposition="ran")
        metrics.counter(
            "repro_fuzz_violations_total", "Invariant violations found"
        ).inc(stats.violations)
        metrics.counter(
            "repro_farm_rounds_total", "Completed farm rounds"
        ).inc()
        covered, total = self.scheduler.coverage()
        metrics.gauge(
            "repro_farm_corpus_entries", "Farm corpus entries"
        ).set(len(self.corpus))
        metrics.gauge(
            "repro_farm_cells_covered", "Scheduler cells sampled at least once"
        ).set(covered)
        session.emit(
            {
                "kind": "farm_round",
                "round": stats.index,
                "trials": stats.trials,
                "violations": stats.violations,
                "new_entries": stats.new_entries,
                "trials_total": self.totals["trials"],
                "violations_total": self.totals["violations"],
                "corpus_entries": len(self.corpus),
                "cells_covered": covered,
                "n_cells": total,
                "trials_per_s": (
                    stats.trials / stats.wall_s if stats.wall_s > 0 else 0.0
                ),
                "hot_cells": [
                    [key, int(stat["trials"]), int(stat["violations"])]
                    for key, stat in self.scheduler.hot_cells()
                ],
                "t": time.time(),
            }
        )
        session.write_metrics()

    def run_round(self) -> FarmRound:
        """Execute and commit exactly one round."""
        from repro.reports.experiments import adapt_progress
        from repro.runner.scheduler import run_jobs

        started = time.perf_counter()
        index = self.round_index
        self.scheduler.begin_round()
        params_list = self.scheduler.plan_round(
            self.config.seed,
            index,
            self.config.round_trials,
            self.config.opt_level,
        )
        specs = [
            JobSpec.make("fuzz", self.profile, **params) for params in params_list
        ]
        self.say(f"round {index}: {len(specs)} trial(s)")
        chunk = run_jobs(
            specs,
            jobs=self.config.concurrency,
            store=self.store,
            progress=adapt_progress(self.say),
            observer=self.observer,
        )
        report = CampaignReport(
            seed=self.config.seed,
            n_trials=len(specs),
            outcomes=chunk.outcomes,
            n_cached=chunk.n_cached,
            n_computed=chunk.n_computed,
        )
        collect_violations(report, self.config.stability_every, self.say)
        dispositions: Counter = Counter()
        shrink_and_persist(
            report,
            self.profile,
            None,
            self.config.shrink_limit,
            self.config.shrink_evals,
            self.say,
            sink=self._corpus_sink(index, dispositions),
        )
        self._harvest_shapes(report, index, dispositions)

        per_index = Counter(v["index"] for v in report.violations)
        for outcome in report.outcomes:
            self.scheduler.record_trial(
                dict(outcome.spec.params), per_index.get(outcome.index, 0)
            )
        self.totals["trials"] += len(report.outcomes)
        self.totals["violations"] += len(report.violations)
        self.round_index = index + 1
        self._commit_state()

        stats = FarmRound(
            index=index,
            trials=len(report.outcomes),
            violations=len(report.violations),
            new_entries=dispositions.get("new", 0),
            minimized=dispositions.get("minimized", 0),
            duplicates=dispositions.get("duplicate", 0)
            + dispositions.get("ignored", 0),
            n_cached=report.n_cached,
            n_computed=report.n_computed,
            wall_s=time.perf_counter() - started,
        )
        self._emit_round(stats)
        self.say(
            f"round {index} done: {stats.trials} trials, "
            f"{stats.violations} violation(s), "
            f"{stats.new_entries + stats.minimized} corpus write(s), "
            f"corpus={len(self.corpus)}"
        )
        return stats

    def run(self) -> FarmReport:
        """Run rounds until the budget/round cap/interrupt stops us."""
        started = time.perf_counter()
        report = FarmReport(seed=self.config.seed)
        stopped = "rounds"
        while True:
            if (
                self.config.max_rounds
                and self.round_index >= self.config.max_rounds
            ):
                stopped = "rounds"
                break
            elapsed = time.perf_counter() - started
            if (
                self.config.budget_s is not None
                and elapsed >= self.config.budget_s
            ):
                stopped = "budget"
                break
            if not self.config.max_rounds and self.config.budget_s is None:
                # No budget at all: run exactly one round rather than
                # looping forever on a misconfigured invocation.
                if report.rounds:
                    stopped = "rounds"
                    break
            try:
                report.rounds.append(self.run_round())
            except KeyboardInterrupt:
                # The torn round was never committed; a resume replays
                # it from the checkpoint and converges on the same bytes.
                stopped = "interrupted"
                break
        report.total_rounds = self.round_index
        report.total_trials = self.totals["trials"]
        report.total_violations = self.totals["violations"]
        report.corpus_stats = self.corpus.stats()
        report.coverage = self.scheduler.coverage()
        report.hot_cells = self.scheduler.hot_cells()
        report.stopped = stopped
        report.wall_s = time.perf_counter() - started
        return report


def run_farm(
    profile,
    config: FarmConfig,
    *,
    store=None,
    observer=None,
    progress: ProgressFn | None = None,
) -> FarmReport:
    """Convenience wrapper: build a driver for ``config`` and run it."""
    driver = FarmDriver(
        profile, config, store=store, observer=observer, progress=progress
    )
    return driver.run()


def load_status(state_dir: str | Path) -> dict[str, Any]:
    """Summarize a farm state dir without running anything."""
    state_dir = Path(state_dir)
    state_path = state_dir / "state.json"
    status: dict[str, Any] = {"state_dir": str(state_dir), "exists": False}
    if state_path.is_file():
        data = json.loads(state_path.read_text())
        scheduler = FarmScheduler.from_dict(data["scheduler"])
        covered, total = scheduler.coverage()
        status.update(
            exists=True,
            seed=int(data.get("seed", 0)),
            rounds=int(data.get("rounds", 0)),
            totals=data.get("totals", {}),
            cells_covered=covered,
            n_cells=total,
            hot_cells=[
                [key, int(stat["trials"]), int(stat["violations"])]
                for key, stat in scheduler.hot_cells()
            ],
        )
    corpus = FarmCorpus(state_dir)
    status["corpus"] = corpus.stats()
    return status
