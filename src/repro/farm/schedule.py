"""Coverage-style trial scheduling for the fuzz farm.

The one-shot campaign samples its (attack, defense) pair uniformly
(:func:`~repro.matrix.registry.sample_applicable_pair`); a farm can do
better because it remembers.  The scheduler's unit of coverage is a
*cell*: one applicable (attack, defense) pair at one circuit-shape
bucket (small/medium/large flop count).  Per cell it tracks trial and
violation counts plus a decaying "hot" score, and draws the next trial
from a weighted distribution::

    weight(cell) = (1 + bias * hot) * (1 + explore / (1 + trials))

so cells that recently produced violations are revisited (exploit) and
cells with few trials keep a floor of attention (explore); a cell never
reaches weight zero, so coverage is preserved.

Determinism: a round's trials are all planned up front from the frozen
round-start weights, every draw comes from one ``hash_label`` stream,
and outcome accounting is applied only between rounds -- so the whole
schedule is a pure function of (seed, completed rounds), which is what
makes checkpoint/resume byte-identical.
"""

from __future__ import annotations

import random
from typing import Any

from repro.bench_suite.generator import (
    SAMPLE_FANIN_RANGE,
    SAMPLE_GATES_PER_FLOP,
    SAMPLE_INPUT_RANGE,
    SAMPLE_LOCALITY,
    SAMPLE_OUTPUT_RANGE,
    GeneratorConfig,
    config_to_dict,
)
from repro.util.rng import hash_label

#: Shape buckets partition the generator's flop range (3..14).
SHAPE_BUCKETS = ("small", "medium", "large")
BUCKET_FLOP_RANGES = {
    "small": (3, 6),
    "medium": (7, 10),
    "large": (11, 14),
}

#: Per-round multiplier on every cell's hot score: a violation keeps a
#: cell hot for a few rounds, then exploration pressure takes over.
HOT_DECAY = 0.5


def shape_bucket(n_flops: int) -> str:
    """Map a flop count to its coverage bucket."""
    for name, (lo, hi) in BUCKET_FLOP_RANGES.items():
        if lo <= n_flops <= hi:
            return name
    return "large" if n_flops > BUCKET_FLOP_RANGES["large"][1] else "small"


def cell_key(attack: str, defense: str, bucket: str) -> str:
    """The canonical ``attack|defense|bucket`` label for one cell."""
    return f"{attack}|{defense}|{bucket}"


def sample_config_in_bucket(
    rng: random.Random, bucket: str
) -> GeneratorConfig:
    """Like ``sample_config`` but with ``n_flops`` pinned to a bucket.

    Same fixed draw order as the campaign sampler, so one rng state
    still maps to exactly one shape.
    """
    lo, hi = BUCKET_FLOP_RANGES[bucket]
    return GeneratorConfig(
        n_flops=rng.randint(lo, hi),
        n_inputs=rng.randint(*SAMPLE_INPUT_RANGE),
        n_outputs=rng.randint(*SAMPLE_OUTPUT_RANGE),
        gates_per_flop=rng.choice(SAMPLE_GATES_PER_FLOP),
        max_fanin=rng.randint(*SAMPLE_FANIN_RANGE),
        locality=rng.choice(SAMPLE_LOCALITY),
    )


class FarmScheduler:
    """Weighted cell sampler with explicit, serializable state."""

    def __init__(
        self,
        pairs: list[tuple[str, str]],
        *,
        bias: float = 4.0,
        explore: float = 1.0,
        decay: float = HOT_DECAY,
    ):
        self.pairs = [(str(a), str(d)) for a, d in pairs]
        self.bias = float(bias)
        self.explore = float(explore)
        self.decay = float(decay)
        self.cells: list[tuple[str, str, str]] = [
            (attack, defense, bucket)
            for attack, defense in self.pairs
            for bucket in SHAPE_BUCKETS
        ]
        self.stats: dict[str, dict[str, float]] = {
            cell_key(*cell): {"trials": 0, "violations": 0, "hot": 0.0}
            for cell in self.cells
        }
        self.seen_shapes: set[str] = set()

    # -- sampling ---------------------------------------------------------

    def weights(self) -> list[float]:
        out = []
        for cell in self.cells:
            stat = self.stats[cell_key(*cell)]
            exploit = 1.0 + self.bias * stat["hot"]
            explore = 1.0 + self.explore / (1.0 + stat["trials"])
            out.append(exploit * explore)
        return out

    def sample_cell(
        self, rng: random.Random, weights: list[float] | None = None
    ) -> tuple[str, str, str]:
        """One weighted draw; pass frozen ``weights`` for a whole round."""
        weights = self.weights() if weights is None else weights
        return rng.choices(self.cells, weights=weights, k=1)[0]

    def plan_round(
        self,
        seed: int,
        round_index: int,
        n_trials: int,
        opt_level: int | None = None,
    ) -> list[dict[str, Any]]:
        """Sample a whole round of trial params from frozen weights.

        The params dict is the same flat JSON-safe shape the campaign's
        ``sample_trial_params`` produces (so trials run as ordinary
        ``"fuzz"`` JobSpecs and replay through the same machinery),
        plus a ``farm cell`` recoverable from the shape.
        """
        from repro.fuzz.campaign import FUZZ_MAX_KEY_BITS
        from repro.matrix.registry import get_defense
        from repro.opt import resolve_level

        frozen = self.weights()
        params_list = []
        for index in range(n_trials):
            label = f"farm/round/{round_index}/trial/{index}"
            rng = random.Random(hash_label(seed, label))
            attack, defense, bucket = self.sample_cell(rng, frozen)
            config = sample_config_in_bucket(rng, bucket)
            cap = get_defense(defense).default_key_bits or FUZZ_MAX_KEY_BITS
            cap = max(1, min(cap, FUZZ_MAX_KEY_BITS, config.n_flops - 1))
            key_bits = rng.randint(1, cap)
            params_list.append(
                {
                    "attack": attack,
                    "defense": defense,
                    "key_bits": key_bits,
                    "opt_level": resolve_level(opt_level),
                    "trial_seed": hash_label(
                        seed, f"farm/round/{round_index}/circuit/{index}"
                    ),
                    **config_to_dict(config),
                }
            )
        return params_list

    # -- accounting -------------------------------------------------------

    def begin_round(self) -> None:
        """Decay every hot score; call once at the top of each round."""
        for stat in self.stats.values():
            stat["hot"] *= self.decay

    def record_trial(self, trial: dict[str, Any], violations: int) -> None:
        """Account one finished trial to its cell."""
        key = cell_key(
            str(trial.get("attack", "?")),
            str(trial.get("defense", "?")),
            shape_bucket(int(trial.get("n_flops", 0))),
        )
        stat = self.stats.get(key)
        if stat is None:  # a cell outside the configured pair filter
            stat = self.stats.setdefault(
                key, {"trials": 0, "violations": 0, "hot": 0.0}
            )
        stat["trials"] += 1
        if violations:
            stat["violations"] += violations
            stat["hot"] += float(violations)

    def novel_shape(self, trial: dict[str, Any]) -> str | None:
        """The shape signature on first sighting (records it), else None."""
        signature = (
            f"{shape_bucket(int(trial.get('n_flops', 0)))}"
            f"|gpf{trial.get('gates_per_flop')}"
            f"|fanin{trial.get('max_fanin')}"
            f"|loc{trial.get('locality')}"
        )
        if signature in self.seen_shapes:
            return None
        self.seen_shapes.add(signature)
        return signature

    def coverage(self) -> tuple[int, int]:
        """(cells sampled at least once, total cells)."""
        covered = sum(
            1 for stat in self.stats.values() if stat["trials"] > 0
        )
        return covered, len(self.stats)

    def hot_cells(self, limit: int = 5) -> list[tuple[str, dict[str, float]]]:
        """The most-sampled cells, violations first."""
        ranked = sorted(
            self.stats.items(),
            key=lambda item: (
                -item[1]["violations"],
                -item[1]["trials"],
                item[0],
            ),
        )
        return [(key, dict(stat)) for key, stat in ranked[:limit]]

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "pairs": [list(pair) for pair in self.pairs],
            "bias": self.bias,
            "explore": self.explore,
            "decay": self.decay,
            "stats": {
                key: {
                    "trials": int(stat["trials"]),
                    "violations": int(stat["violations"]),
                    "hot": stat["hot"],
                }
                for key, stat in sorted(self.stats.items())
            },
            "seen_shapes": sorted(self.seen_shapes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FarmScheduler":
        scheduler = cls(
            [tuple(pair) for pair in data["pairs"]],
            bias=data.get("bias", 4.0),
            explore=data.get("explore", 1.0),
            decay=data.get("decay", HOT_DECAY),
        )
        for key, stat in data.get("stats", {}).items():
            scheduler.stats[key] = {
                "trials": int(stat.get("trials", 0)),
                "violations": int(stat.get("violations", 0)),
                "hot": float(stat.get("hot", 0.0)),
            }
        scheduler.seen_shapes = set(data.get("seen_shapes", []))
        return scheduler
