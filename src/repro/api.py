"""Typed programmatic facade: the one composition root for every workload.

Until PR 8 the CLI was the only place that knew how to wire a workload
together -- profile resolution, spec enumeration, the scheduler, the
result store, row aggregation.  That wiring now lives here, and the
three front ends are thin layers over it:

* :mod:`repro.cli` parses arguments and calls these functions;
* :mod:`repro.service` accepts the same work over HTTP and calls the
  same functions (so service-path results are byte-identical to the
  in-process path);
* tests drive workloads directly without spawning a CLI process.

The surface is deliberately small and typed:

``resolve_profile``/``grid_names``/``grid_specs``/``aggregate_grid``
    Enumeration helpers: turn ``(experiment name, profile, kwargs)``
    into content-hashed :class:`~repro.runner.spec.JobSpec` cells and
    back into paper-style rows.
``submit_jobs``
    The raw scheduler surface: run any spec list, return a
    :class:`~repro.runner.scheduler.RunReport`.
``run_grid`` / ``run_matrix`` / ``run_fuzz`` / ``run_attack``
    One call per workload family, each returning a structured result
    (rows + the scheduler report, a campaign report, an attack record).

Everything here is deterministic given (specs, profile, store): the
facade adds no randomness and no hidden state beyond what the runner
already owns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.reports.profiles import PROFILES, ExperimentProfile, active_profile
from repro.runner.scheduler import JobOutcome, RunReport, run_jobs
from repro.runner.spec import JobSpec
from repro.runner.stores import StoreBackend

ProgressFn = Callable[[str], None]


def resolve_profile(
    profile: str | ExperimentProfile | None = None,
) -> ExperimentProfile:
    """Normalise a profile argument: name, instance, or ``None`` (active).

    ``None`` resolves through ``$REPRO_PROFILE`` (default ``quick``),
    matching every CLI command's behaviour.  Unknown names raise
    ``ValueError`` with the known choices, so service handlers can map
    it onto a 4xx instead of a stack trace.
    """
    if profile is None:
        return active_profile()
    if isinstance(profile, ExperimentProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; known: {', '.join(sorted(PROFILES))}"
        ) from None


def grid_names() -> list[str]:
    """Names accepted by :func:`grid_specs`/:func:`run_grid` (registry order)."""
    from repro.reports.experiments import GRID

    return list(GRID)


def grid_specs(
    name: str,
    profile: str | ExperimentProfile | None = None,
    **spec_kwargs,
) -> list[JobSpec]:
    """Enumerate one named experiment grid as job specs.

    The same enumeration the CLI, the service and the benchmarks use;
    an unknown ``name`` raises ``ValueError`` (not ``KeyError``) so
    callers can treat it as input validation.
    """
    from repro.reports.experiments import GRID

    if name not in GRID:
        raise ValueError(
            f"unknown experiment {name!r}; known: {', '.join(GRID)}"
        )
    return GRID[name].build_specs(resolve_profile(profile), **spec_kwargs)


def aggregate_grid(name: str, outcomes: Sequence[JobOutcome]) -> list:
    """Fold scheduler outcomes back into the experiment's row objects."""
    from repro.reports.experiments import GRID

    if name not in GRID:
        raise ValueError(
            f"unknown experiment {name!r}; known: {', '.join(GRID)}"
        )
    return GRID[name].aggregate(outcomes)


def submit_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 1,
    store: StoreBackend | None = None,
    progress: ProgressFn | None = None,
    observer=None,
    timeout_s: float | None = None,
    retries: int = 0,
) -> RunReport:
    """Run any spec list through the scheduler; the raw facade surface.

    ``progress`` takes human-readable strings (the CLI's contract), not
    raw outcomes; pass ``None`` to stay silent.  Failures land in the
    report (``RunReport.raise_on_error`` opts back into raising).
    """
    from repro.reports.experiments import adapt_progress

    return run_jobs(
        specs,
        jobs=jobs,
        store=store,
        timeout_s=timeout_s,
        retries=retries,
        progress=adapt_progress(progress) if progress is not None else None,
        observer=observer,
    )


@dataclass
class GridResult:
    """One finished grid: aggregated rows plus the scheduler accounting."""

    name: str
    title: str
    headers: list[str]
    rows: list
    report: RunReport

    def as_cells(self) -> list[list]:
        """Row objects rendered to table cells (what tables/artifacts take)."""
        return [row.as_cells() for row in self.rows]


def run_grid(
    name: str,
    *,
    profile: str | ExperimentProfile | None = None,
    jobs: int = 1,
    store: StoreBackend | None = None,
    progress: ProgressFn | None = None,
    observer=None,
    **spec_kwargs,
) -> GridResult:
    """Run one named experiment grid end to end (table1..3, scaling, ...).

    Raises :class:`~repro.runner.scheduler.RunnerError` if any cell
    failed -- grids are all-or-nothing, matching the historical CLI
    behaviour.
    """
    from repro.reports.experiments import GRID

    resolved = resolve_profile(profile)
    specs = grid_specs(name, resolved, **spec_kwargs)
    report = submit_jobs(
        specs, jobs=jobs, store=store, progress=progress, observer=observer
    )
    report.raise_on_error()
    experiment = GRID[name]
    return GridResult(
        name=name,
        title=f"{experiment.title} (profile={resolved.name})",
        headers=list(experiment.headers),
        rows=experiment.aggregate(report.outcomes),
        report=report,
    )


def run_matrix(
    *,
    profile: str | ExperimentProfile | None = None,
    jobs: int = 1,
    store: StoreBackend | None = None,
    progress: ProgressFn | None = None,
    observer=None,
    attacks: Sequence[str] | None = None,
    defenses: Sequence[str] | None = None,
    benchmarks: Sequence[str] | None = None,
    opt_level: int | None = None,
) -> GridResult:
    """Run the attack x defense resilience grid; rows carry verdicts.

    Paper agreement is a separate judgement call, not part of running:
    pass the returned rows to :func:`check_matrix_against_paper` when
    the caller wants the Table I gate.
    """
    from repro.matrix.grid import run_matrix as run_matrix_grid
    from repro.reports.experiments import GRID

    resolved = resolve_profile(profile)
    rows, report = run_matrix_grid(
        resolved,
        progress if progress is not None else (lambda _msg: None),
        jobs=jobs,
        store=store,
        attacks=list(attacks) if attacks else None,
        defenses=list(defenses) if defenses else None,
        benchmarks=list(benchmarks) if benchmarks else None,
        opt_level=opt_level,
        observer=observer,
    )
    return GridResult(
        name="matrix",
        title=f"Attack x defense resilience matrix (profile={resolved.name})",
        headers=list(GRID["matrix"].headers),
        rows=rows,
        report=report,
    )


def check_matrix_against_paper(rows) -> list[str]:
    """Mismatch strings vs the paper's Table I expectations (empty = agree)."""
    from repro.matrix.grid import check_against_paper

    return check_against_paper(rows)


def run_fuzz(
    *,
    profile: str | ExperimentProfile | None = None,
    trials: int = 100,
    seed: int = 0,
    jobs: int = 1,
    store: StoreBackend | None = None,
    time_budget_s: float | None = None,
    corpus_dir: str | None = None,
    progress: ProgressFn | None = None,
    shrink_limit: int = 8,
    opt_level: int | None = None,
    observer=None,
):
    """Run one seeded differential-fuzzing campaign; returns the report."""
    from repro.fuzz.campaign import run_campaign

    return run_campaign(
        resolve_profile(profile),
        trials=trials,
        seed=seed,
        jobs=jobs,
        store=store,
        time_budget_s=time_budget_s,
        corpus_dir=corpus_dir,
        progress=progress,
        shrink_limit=shrink_limit,
        opt_level=opt_level,
        observer=observer,
    )


def run_farm(
    *,
    profile: str | ExperimentProfile | None = None,
    farm_config=None,
    store: StoreBackend | None = None,
    progress: ProgressFn | None = None,
    observer=None,
):
    """Run one fuzz-farm invocation; returns the FarmReport.

    ``farm_config`` is a :class:`repro.farm.FarmConfig` (default: one
    budgetless round).  The farm's state dir owns the corpus, the
    scheduler state, and the per-round checkpoints; calling this again
    with the same config resumes where the last invocation stopped.
    """
    import repro.farm as farm

    return farm.run_farm(
        resolve_profile(profile),
        farm_config if farm_config is not None else farm.FarmConfig(),
        store=store,
        progress=progress,
        observer=observer,
    )


@dataclass
class AttackRun:
    """One single-benchmark attack: the lock context plus the raw result."""

    benchmark: str
    n_scan_flops: int
    key_bits: int
    exact_seed: bool
    result: object  # DynUnlockResult

    @property
    def success(self) -> bool:
        return bool(self.result.success)


def run_attack(
    benchmark: str,
    *,
    profile: str | ExperimentProfile | None = None,
    key_bits: int | None = None,
    scale: int | None = None,
    lock_seed: int = 0,
    timeout_s: float | None = None,
    opt_level: int | None = None,
    observer=None,
    progress: ProgressFn | None = None,
) -> AttackRun:
    """Lock one registry benchmark with EFF-Dyn and break it in-process.

    The one-shot ``dynunlock attack`` path: no scheduler, no store.
    With an ``observer`` the attack runs under a job span so its phase
    instrumentation has a collection target.
    """
    from repro.bench_suite.registry import build_benchmark_netlist
    from repro.core.dynunlock import DynUnlockConfig, dynunlock
    from repro.locking.effdyn import lock_with_effdyn

    resolved = resolve_profile(profile)
    netlist = build_benchmark_netlist(benchmark, scale=scale or resolved.scale)
    effective_bits = resolved.effective_key_bits(netlist.n_dffs, key_bits)
    lock = lock_with_effdyn(
        netlist, key_bits=effective_bits, rng=random.Random(lock_seed)
    )
    if progress is not None:
        progress(
            f"locked {benchmark}: {netlist.n_dffs} scan flops, "
            f"{effective_bits}-bit dynamic key"
        )
    config = DynUnlockConfig(
        timeout_s=timeout_s or resolved.timeout_s,
        opt_level=opt_level,
    )
    if observer is None:
        result = dynunlock(netlist, lock.public_view(), lock.make_oracle(), config)
    else:
        from repro.observability import begin_job_span, end_job_span

        span = begin_job_span(
            "attack", f"attack[benchmark={benchmark},key_bits={effective_bits}]"
        )
        try:
            result = dynunlock(
                netlist, lock.public_view(), lock.make_oracle(), config
            )
        finally:
            span_record = end_job_span(span)
        observer.inline_span(span_record)
    return AttackRun(
        benchmark=benchmark,
        n_scan_flops=netlist.n_dffs,
        key_bits=effective_bits,
        exact_seed=result.recovered_seed == list(lock.seed),
        result=result,
    )


__all__ = [
    "AttackRun",
    "GridResult",
    "aggregate_grid",
    "check_matrix_against_paper",
    "grid_names",
    "grid_specs",
    "resolve_profile",
    "run_attack",
    "run_farm",
    "run_fuzz",
    "run_grid",
    "run_matrix",
    "submit_jobs",
]
