"""Benchmark circuits.

The paper evaluates on six ISCAS-89 and four ITC-99 circuits synthesized
with a commercial tool.  Those netlists are not redistributable and no
network access exists here, so (substitution documented in DESIGN.md):

* :mod:`repro.bench_suite.iscas` embeds the genuine public-domain ``s27``
  netlist for small-scale exactness checks and for the paper's running
  example style demos;
* :mod:`repro.bench_suite.generator` synthesises random-but-reproducible
  sequential circuits with prescribed flop/input/output counts;
* :mod:`repro.bench_suite.registry` names one synthetic circuit per
  paper benchmark with the *post-synthesis scan-flop count reported in
  Table II*, plus a ``scale`` knob so the full experiment matrix can run
  at laptop scale by default and at paper scale on demand.
"""

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist, s208_like_netlist
from repro.bench_suite.registry import (
    BenchmarkSpec,
    PAPER_BENCHMARKS,
    TABLE2_BENCHMARKS,
    TABLE3_BENCHMARKS,
    get_benchmark,
    build_benchmark_netlist,
)

__all__ = [
    "GeneratorConfig",
    "generate_circuit",
    "s27_netlist",
    "s208_like_netlist",
    "BenchmarkSpec",
    "PAPER_BENCHMARKS",
    "TABLE2_BENCHMARKS",
    "TABLE3_BENCHMARKS",
    "get_benchmark",
    "build_benchmark_netlist",
]
