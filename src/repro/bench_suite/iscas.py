"""Embedded small benchmark circuits.

``s27`` is the genuine ISCAS-89 netlist (public domain, 4 inputs, 1
output, 3 flip-flops, 10 gates) -- small enough to verify attack results
exhaustively.

``s208_like`` stands in for the s208 circuit of the paper's Fig. 1
walk-through: the original synthesized netlist is not available offline,
so a deterministic synthetic circuit with the same scan profile (8 scan
flops) is generated; the figure examples lock it with key gates after the
1st, 2nd and 5th scan flops, exactly as in the paper.
"""

from __future__ import annotations

import random

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.netlist.bench_io import parse_bench
from repro.netlist.netlist import Netlist

S27_BENCH = """
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G13 = NOR(G2, G12)
G12 = NOR(G1, G7)
"""


def s27_netlist() -> Netlist:
    """The genuine ISCAS-89 s27 circuit."""
    return parse_bench(S27_BENCH, name="s27")


def s208_like_netlist() -> Netlist:
    """A deterministic 8-flop stand-in for s208 (see module docstring)."""
    config = GeneratorConfig(
        n_flops=8, n_inputs=10, n_outputs=1, gates_per_flop=8.0
    )
    return generate_circuit(config, random.Random(0x5208), name="s208_like")
