"""Named benchmark registry mirroring the paper's evaluation circuits.

Each entry reproduces the *post-synthesis scan flop count* the paper
reports in Table II (its footnote 2 explains why these differ from the
original benchmark flop counts).  The functional logic is synthetic (see
DESIGN.md substitutions); primary input/output counts follow the original
benchmark documentation where known and are otherwise plausible.

Scaling: the paper ran on a 24-core Xeon with lingeling; this repo runs a
pure-Python CDCL solver.  ``build_benchmark_netlist(..., scale=...)``
divides the flop count (and the experiment harness shrinks the key size)
so the full table regenerates in minutes by default; ``scale=1`` gives
paper-size instances for patient runs (``REPRO_PROFILE=paper`` in the
benches, see :mod:`repro.reports.profiles`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.netlist.netlist import Netlist
from repro.util.rng import hash_label


@dataclass(frozen=True)
class BenchmarkSpec:
    """One named benchmark with its paper-reported scan profile."""

    name: str
    suite: str  # "ISCAS-89" or "ITC-99"
    n_scan_flops: int  # post-synthesis count from Table II
    n_inputs: int
    n_outputs: int
    gates_per_flop: float = 3.0

    def generator_config(self, scale: int = 1) -> GeneratorConfig:
        if scale < 1:
            raise ValueError("scale divides the flop count; must be >= 1")
        n_flops = max(16, self.n_scan_flops // scale)
        return GeneratorConfig(
            n_flops=n_flops,
            n_inputs=self.n_inputs,
            n_outputs=self.n_outputs,
            gates_per_flop=self.gates_per_flop,
        )


PAPER_BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        # Table II, ISCAS-89 (flop counts are the paper's column 2).
        BenchmarkSpec("s5378", "ISCAS-89", 160, 35, 49),
        BenchmarkSpec("s13207", "ISCAS-89", 202, 62, 152),
        BenchmarkSpec("s15850", "ISCAS-89", 442, 77, 150),
        BenchmarkSpec("s38584", "ISCAS-89", 1233, 38, 304),
        BenchmarkSpec("s38417", "ISCAS-89", 1564, 28, 106),
        BenchmarkSpec("s35932", "ISCAS-89", 1728, 35, 320),
        # Table II, ITC-99.
        BenchmarkSpec("b20", "ITC-99", 429, 32, 22),
        BenchmarkSpec("b21", "ITC-99", 429, 32, 22),
        BenchmarkSpec("b22", "ITC-99", 611, 32, 22),
        BenchmarkSpec("b17", "ITC-99", 864, 37, 97),
    ]
}

TABLE2_BENCHMARKS: list[str] = list(PAPER_BENCHMARKS.keys())
TABLE3_BENCHMARKS: list[str] = ["s38584", "s38417", "s35932"]


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a named paper benchmark, raising KeyError with the known names."""
    try:
        return PAPER_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(PAPER_BENCHMARKS)}"
        ) from None


def smallest_benchmarks(n: int = 2, scale: int = 1) -> list[str]:
    """The ``n`` registry benchmarks with the fewest *scaled* flops.

    Ties (common at high scales, where the 16-flop floor kicks in) break
    by name, so the selection is deterministic -- the matrix grid and
    the CI smoke job both lean on that.
    """
    def scaled_flops(spec: BenchmarkSpec) -> int:
        return spec.generator_config(scale).n_flops

    ranked = sorted(
        PAPER_BENCHMARKS.values(), key=lambda s: (scaled_flops(s), s.name)
    )
    return [spec.name for spec in ranked[:n]]


def build_benchmark_netlist(name: str, scale: int = 1) -> Netlist:
    """Materialise the named benchmark (deterministic per name+scale)."""
    spec = get_benchmark(name)
    rng = random.Random(hash_label(0xB36C, f"{name}/scale={scale}"))
    return generate_circuit(spec.generator_config(scale), rng, name=name)
