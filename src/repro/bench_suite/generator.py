"""Synthetic sequential circuit generator.

Produces random-but-reproducible netlists with a prescribed number of
flip-flops, primary inputs/outputs and combinational density.  The
construction guarantees the structural properties the scan attacks rely
on (and that real synthesized benchmarks exhibit):

* every flip-flop's next-state function depends on at least one other
  flop or primary input (non-trivial capture);
* the combinational part is acyclic by construction (gates only consume
  earlier nets);
* gate types are mixed (including inverting and XOR-class gates) so the
  next-state function is nonlinear in the state -- the property that
  makes a *SAT* attack necessary rather than plain linear algebra.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Mapping

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

_GATE_CHOICES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of a synthetic circuit."""

    n_flops: int
    n_inputs: int = 8
    n_outputs: int = 8
    gates_per_flop: float = 3.0
    max_fanin: int = 3
    locality: int = 24  # how far back gate operands may reach, in nets

    def __post_init__(self) -> None:
        if self.n_flops < 1:
            raise ValueError("need at least one flop")
        if self.n_inputs < 1:
            raise ValueError("need at least one primary input")
        if self.n_outputs < 0:
            raise ValueError("output count cannot be negative")
        if self.gates_per_flop <= 0:
            raise ValueError("gates_per_flop must be positive")
        if self.max_fanin < 2:
            raise ValueError("max_fanin must be at least 2")


def config_to_dict(config: GeneratorConfig) -> dict:
    """JSON-safe encoding of a config (all fields, plain scalars).

    This is what fuzz trials embed in their :class:`JobSpec` params, so
    every field participates in the cache key and the crash corpus can
    reconstruct the exact circuit shape.
    """
    return asdict(config)


def config_from_dict(data: Mapping[str, int | float]) -> GeneratorConfig:
    """Inverse of :func:`config_to_dict` (validation re-runs in __post_init__)."""
    return GeneratorConfig(
        n_flops=int(data["n_flops"]),
        n_inputs=int(data["n_inputs"]),
        n_outputs=int(data["n_outputs"]),
        gates_per_flop=float(data["gates_per_flop"]),
        max_fanin=int(data["max_fanin"]),
        locality=int(data["locality"]),
    )


#: Sampling bounds for :func:`sample_config` -- deliberately small: the
#: fuzzer's job is shape diversity, not scale, and a trial must finish in
#: well under a second so campaigns of hundreds of trials stay cheap.
SAMPLE_FLOP_RANGE = (3, 14)
SAMPLE_INPUT_RANGE = (1, 6)
SAMPLE_OUTPUT_RANGE = (1, 5)
SAMPLE_GATES_PER_FLOP = (1.0, 1.5, 2.0, 3.0, 4.0)
SAMPLE_FANIN_RANGE = (2, 4)
SAMPLE_LOCALITY = (4, 8, 24)


def sample_config(rng: random.Random) -> GeneratorConfig:
    """Draw one random-but-valid circuit shape from ``rng``.

    All draws come from the fixed bounds above in a fixed order, so one
    rng state maps to exactly one config -- the determinism the fuzz
    campaign's replay guarantee rests on.
    """
    return GeneratorConfig(
        n_flops=rng.randint(*SAMPLE_FLOP_RANGE),
        n_inputs=rng.randint(*SAMPLE_INPUT_RANGE),
        n_outputs=rng.randint(*SAMPLE_OUTPUT_RANGE),
        gates_per_flop=rng.choice(SAMPLE_GATES_PER_FLOP),
        max_fanin=rng.randint(*SAMPLE_FANIN_RANGE),
        locality=rng.choice(SAMPLE_LOCALITY),
    )


def generate_circuit(
    config: GeneratorConfig, rng: random.Random, name: str = "synthetic"
) -> Netlist:
    """Generate one circuit.

    Determinism: identical ``config`` and rng state produce identical
    netlists, which the registry exploits to give every named benchmark a
    stable identity across runs.
    """
    netlist = Netlist(name=name)
    inputs = [f"pi{i}" for i in range(config.n_inputs)]
    for net in inputs:
        netlist.add_input(net)
    q_nets = [f"ff{i}" for i in range(config.n_flops)]

    # Pool of nets a new gate may read: PIs, flop outputs, earlier gates.
    pool: list[str] = inputs + q_nets
    n_gates = max(config.n_flops, int(config.n_flops * config.gates_per_flop))
    gate_outputs: list[str] = []
    for g in range(n_gates):
        gtype = rng.choice(_GATE_CHOICES)
        arity = 1 if gtype is GateType.NOT else rng.randint(2, config.max_fanin)
        window = pool[-config.locality :] if len(pool) > config.locality else pool
        # Mix local and global picks so cones overlap across the chain.
        operands: list[str] = []
        for _ in range(arity):
            source = window if rng.random() < 0.7 else pool
            operands.append(rng.choice(source))
        out = f"g{g}"
        netlist.add_gate(out, gtype, operands)
        gate_outputs.append(out)
        pool.append(out)

    # Next-state functions: mostly gate outputs; guarantee each depends on
    # something stateful by XOR-mixing a neighbour flop now and then.
    for i, q in enumerate(q_nets):
        base = rng.choice(gate_outputs)
        if rng.random() < 0.5:
            other = q_nets[(i + 1) % config.n_flops]
            mixed = f"ns{i}"
            netlist.add_gate(mixed, GateType.XOR, [base, other])
            netlist.add_dff(q=q, d=mixed)
        else:
            netlist.add_dff(q=q, d=base)

    for i in range(config.n_outputs):
        po = f"po{i}"
        netlist.add_gate(po, GateType.BUF, [rng.choice(gate_outputs)])
        netlist.add_output(po)
    return netlist
