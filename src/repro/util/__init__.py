"""Shared low-level utilities: bit vectors, deterministic RNG, timing."""

from repro.util.bitvec import (
    bits_from_int,
    bits_to_int,
    bits_from_str,
    bits_to_str,
    parity,
    random_bits,
)
from repro.util.rng import DeterministicRng
from repro.util.timing import Stopwatch

__all__ = [
    "bits_from_int",
    "bits_to_int",
    "bits_from_str",
    "bits_to_str",
    "parity",
    "random_bits",
    "DeterministicRng",
    "Stopwatch",
]
