"""Bit-vector helpers.

Throughout the library a *bit vector* is a plain ``list[int]`` whose
elements are 0 or 1.  Index 0 is, by convention, the least significant bit
when converting to and from integers, and the first-shifted bit when the
vector describes a scan stream.  Keeping the representation this simple
makes every module (simulator, SAT encoder, LFSR) interoperable without
adapter layers; numpy arrays are used only inside the vectorised simulator.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence


def bits_from_int(value: int, width: int) -> list[int]:
    """Expand ``value`` into ``width`` bits, LSB first.

    >>> bits_from_int(6, 4)
    [0, 1, 1, 0]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a LSB-first bit sequence into an integer.

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    result = 0
    for i, bit in enumerate(bits):
        _check_bit(bit)
        result |= (bit & 1) << i
    return result


def bits_from_str(text: str) -> list[int]:
    """Parse a human-oriented bit string such as ``"0110"``.

    The leftmost character becomes index 0.  Underscores are ignored so
    long constants can be grouped: ``"1010_1100"``.
    """
    bits = []
    for ch in text:
        if ch == "_":
            continue
        if ch not in "01":
            raise ValueError(f"invalid bit character {ch!r} in {text!r}")
        bits.append(int(ch))
    return bits


def bits_to_str(bits: Sequence[int]) -> str:
    """Render a bit vector with index 0 leftmost (inverse of bits_from_str)."""
    for bit in bits:
        _check_bit(bit)
    return "".join("1" if b else "0" for b in bits)


def parity(bits: Iterable[int]) -> int:
    """XOR-reduce a bit iterable (GF(2) sum)."""
    acc = 0
    for bit in bits:
        _check_bit(bit)
        acc ^= bit
    return acc


def random_bits(width: int, rng: random.Random) -> list[int]:
    """Draw ``width`` uniform bits from ``rng``."""
    return [rng.randrange(2) for _ in range(width)]


def _check_bit(bit: int) -> None:
    if bit not in (0, 1):
        raise ValueError(f"bit values must be 0 or 1, got {bit!r}")
