"""Bit-vector helpers.

Throughout the library a *bit vector* is a plain ``list[int]`` whose
elements are 0 or 1.  Index 0 is, by convention, the least significant bit
when converting to and from integers, and the first-shifted bit when the
vector describes a scan stream.  Keeping the representation this simple
makes every module (simulator, SAT encoder, LFSR) interoperable without
adapter layers.

For bulk evaluation there is a second, *packed* representation: a single
``int`` whose bit ``j`` carries lane ``j``'s value, so one Python bitwise
operation evaluates up to :data:`PACK_WORD_BITS` (or arbitrarily many)
patterns at once.  :func:`pack_lanes` / :func:`unpack_lanes` convert a
pattern matrix to and from its packed columns; the bit-parallel simulator
(:class:`repro.sim.logicsim.BitParallelSimulator`) consumes them.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence


def bits_from_int(value: int, width: int) -> list[int]:
    """Expand ``value`` into ``width`` bits, LSB first.

    >>> bits_from_int(6, 4)
    [0, 1, 1, 0]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a LSB-first bit sequence into an integer.

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    result = 0
    for i, bit in enumerate(bits):
        _check_bit(bit)
        result |= (bit & 1) << i
    return result


def bits_from_str(text: str) -> list[int]:
    """Parse a human-oriented bit string such as ``"0110"``.

    The leftmost character becomes index 0.  Underscores are ignored so
    long constants can be grouped: ``"1010_1100"``.
    """
    bits = []
    for ch in text:
        if ch == "_":
            continue
        if ch not in "01":
            raise ValueError(f"invalid bit character {ch!r} in {text!r}")
        bits.append(int(ch))
    return bits


def bits_to_str(bits: Sequence[int]) -> str:
    """Render a bit vector with index 0 leftmost (inverse of bits_from_str)."""
    for bit in bits:
        _check_bit(bit)
    return "".join("1" if b else "0" for b in bits)


def parity(bits: Iterable[int]) -> int:
    """XOR-reduce a bit iterable (GF(2) sum)."""
    acc = 0
    for bit in bits:
        _check_bit(bit)
        acc ^= bit
    return acc


def random_bits(width: int, rng: random.Random) -> list[int]:
    """Draw ``width`` uniform bits from ``rng``."""
    return [rng.randrange(2) for _ in range(width)]


# ----------------------------------------------------------------------
# packed-integer lanes (bit-parallel simulation substrate)
# ----------------------------------------------------------------------

#: Natural chunk width for packed evaluation.  Python ints are unbounded,
#: but chunking long pattern sets into 64-lane words keeps each bitwise
#: operation a single machine word under the hood.
PACK_WORD_BITS = 64


def lane_mask(n_lanes: int) -> int:
    """The all-ones word over ``n_lanes`` lanes."""
    if n_lanes < 0:
        raise ValueError("lane count must be non-negative")
    return (1 << n_lanes) - 1


def broadcast_bit(bit: int, n_lanes: int) -> int:
    """Replicate one bit across ``n_lanes`` lanes (0 or the full mask)."""
    _check_bit(bit)
    return lane_mask(n_lanes) if bit else 0


def pack_lanes(rows: Sequence[Sequence[int]]) -> list[int]:
    """Column-pack a pattern matrix: lane ``j`` of word ``i`` is ``rows[j][i]``.

    Every row (one pattern / one lane) must have the same width.  Returns
    one packed word per column.

    >>> pack_lanes([[1, 0], [1, 1], [0, 1]])
    [3, 6]
    """
    if not rows:
        return []
    width = len(rows[0])
    words = [0] * width
    for lane, row in enumerate(rows):
        if len(row) != width:
            raise ValueError("rows must all have the same width")
        bit = 1 << lane
        for i, value in enumerate(row):
            _check_bit(value)
            if value:
                words[i] |= bit
    return words


def unpack_lanes(words: Sequence[int], n_lanes: int) -> list[list[int]]:
    """Inverse of :func:`pack_lanes`: recover ``n_lanes`` rows.

    >>> unpack_lanes([3, 6], 3)
    [[1, 0], [1, 1], [0, 1]]
    """
    return [
        [(word >> lane) & 1 for word in words] for lane in range(n_lanes)
    ]


def _check_bit(bit: int) -> None:
    if bit not in (0, 1):
        raise ValueError(f"bit values must be 0 or 1, got {bit!r}")
