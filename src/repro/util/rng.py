"""Deterministic random-number management.

Every stochastic component in the library (benchmark generator, key-gate
placement, seed selection, DIP-free fallback patterns) draws from a
:class:`DeterministicRng` so that experiments are exactly reproducible from
a single integer seed, mirroring how the paper reports averages over ten
fixed LFSR seeds.
"""

from __future__ import annotations

import random


class DeterministicRng:
    """A named tree of :class:`random.Random` streams.

    A single root seed fans out into independent, stable sub-streams keyed
    by a label.  Two runs with the same root seed and the same labels see
    identical randomness regardless of call interleaving across labels.

    >>> rng = DeterministicRng(42)
    >>> a = rng.stream("keygates").randrange(100)
    >>> b = DeterministicRng(42).stream("keygates").randrange(100)
    >>> a == b
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, label: str) -> random.Random:
        """Return (creating on first use) the sub-stream for ``label``."""
        if label not in self._streams:
            # Derive a stable child seed from the root seed and the label.
            child_seed = hash_label(self.root_seed, label)
            self._streams[label] = random.Random(child_seed)
        return self._streams[label]

    def fork(self, label: str) -> "DeterministicRng":
        """Create a child rng tree rooted at a label-derived seed."""
        return DeterministicRng(hash_label(self.root_seed, label))


def hash_label(seed: int, label: str) -> int:
    """Stable 64-bit mix of an integer seed and a string label.

    ``hash()`` is salted per-process for strings, so we implement a small
    FNV-1a style mix that is stable across runs and platforms.
    """
    acc = (seed * 0x9E3779B97F4A7C15 + 0xCBF29CE484222325) & 0xFFFFFFFFFFFFFFFF
    for ch in label:
        acc ^= ord(ch)
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
