"""Wall-clock measurement used by the attack drivers and benches."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch with named laps.

    The attack reports both total execution time (paper Tables II/III) and
    a per-phase breakdown (modeling, SAT solving, refinement), which this
    class collects without cluttering the algorithm code.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.total: float = 0.0
        self.laps: dict[str, float] = {}

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.total += time.perf_counter() - self._start
        self._start = None
        return self.total

    def lap(self, name: str):
        """Context manager measuring one named phase."""
        return _Lap(self, name)

    def add_lap(self, name: str, seconds: float) -> None:
        self.laps[name] = self.laps.get(name, 0.0) + seconds


class _Lap:
    def __init__(self, watch: Stopwatch, name: str):
        self._watch = watch
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Lap":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._watch.add_lap(self._name, time.perf_counter() - self._t0)
