"""Backwards-compatible facade over :mod:`repro.runner.stores`.

The store grew into a multi-backend package (per-file JSON, sharded
JSON, compressed SQLite -- see ``docs/caching.md``); this module keeps
the original import surface alive.  ``ResultStore`` is the default
per-file JSON backend, byte-compatible with every cache tree written
before the split.  New code should import from
:mod:`repro.runner.stores` directly.
"""

from __future__ import annotations

from repro.runner.stores import (
    BACKENDS,
    DEFAULT_CACHE_DIR,
    ResultStore,
    StoreBackend,
    default_cache_dir,
    migrate,
    open_store,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_CACHE_DIR",
    "ResultStore",
    "StoreBackend",
    "default_cache_dir",
    "migrate",
    "open_store",
    "resolve_backend",
]
