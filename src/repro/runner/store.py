"""On-disk memoisation of finished experiment cells.

Layout: ``<root>/<code-version>/<experiment>/<spec-hash>.json``, one
file per cell, written atomically (temp file + rename) so an interrupted
run never leaves a torn entry behind.  Each file stores the spec's
canonical JSON next to the result, and :meth:`ResultStore.get` verifies
it against the requesting spec -- a hash collision or a hand-edited file
degrades to a cache miss, never to a wrong row.

The version directory defaults to :func:`~repro.runner.spec.code_version`,
so editing any source file under ``src/repro`` silently orphans stale
entries; profile or parameter changes land in a different spec hash.
Stale version directories are plain directories -- delete them (or run
``ResultStore.prune()``) to reclaim space.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.runner.spec import JobSpec, code_version

DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class ResultStore:
    """Content-addressed JSON store for one code version's cell results."""

    def __init__(self, root: str | Path | None = None, *, version: str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = (version if version is not None else code_version())[:20]

    def path_for(self, spec: JobSpec) -> Path:
        """File that does (or would) hold ``spec``'s cached result."""
        name = f"{spec.spec_hash[:32]}.json"
        return self.root / self.version / spec.experiment / name

    def get(self, spec: JobSpec) -> dict | None:
        """Return the cached result dict, or ``None`` on any kind of miss."""
        path = self.path_for(spec)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("spec") != spec.canonical():
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: JobSpec, result: dict, *, duration_s: float | None = None):
        """Atomically persist ``result`` for ``spec``."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "spec": spec.canonical(),
            "label": spec.label,
            "duration_s": duration_s,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, indent=1, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def invalidate(self, spec: JobSpec) -> bool:
        """Drop one cached cell; returns whether an entry existed."""
        try:
            self.path_for(spec).unlink()
            return True
        except OSError:
            return False

    def prune(self) -> int:
        """Delete entries from *other* code versions; returns files removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for version_dir in self.root.iterdir():
            if not version_dir.is_dir() or version_dir.name == self.version:
                continue
            for path in sorted(version_dir.rglob("*"), reverse=True):
                if path.is_file():
                    path.unlink()
                    removed += 1
                else:
                    path.rmdir()
            version_dir.rmdir()
        return removed

    def __len__(self) -> int:
        version_dir = self.root / self.version
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.rglob("*.json"))
