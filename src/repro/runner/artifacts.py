"""Structured result artifacts: one JSON + CSV pair per experiment run.

The emitter writes ``BENCH_<experiment>.json`` (headers, row cells, and
a ``meta`` block with timing/cache accounting) and a sibling ``.csv``
with the same grid, into a ``results/`` directory of the caller's
choosing.  The JSON is the machine-readable record CI uploads and diffs
against the checked-in baseline (``scripts/check_bench_regression.py``);
:func:`repro.reports.tables.render_artifact` turns either file's data
back into the paper-style text table.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence

ARTIFACT_FORMAT = "dynunlock-artifact/1"


def artifact_paths(directory: str | Path, experiment: str) -> tuple[Path, Path]:
    """The (json, csv) file pair an experiment's artifact occupies."""
    base = Path(directory) / f"BENCH_{experiment}"
    return base.with_suffix(".json"), base.with_suffix(".csv")


def write_artifact(
    directory: str | Path,
    experiment: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    profile: str | None = None,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write the JSON + CSV pair for one finished grid; returns the JSON path."""
    json_path, csv_path = artifact_paths(directory, experiment)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": ARTIFACT_FORMAT,
        "experiment": experiment,
        "title": title,
        "profile": profile,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "meta": dict(meta or {}),
    }
    json_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    with csv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        writer.writerows([list(row) for row in rows])
    return json_path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Read an artifact JSON back, validating its format marker."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path} is not a {ARTIFACT_FORMAT} artifact "
            f"(format={data.get('format')!r})"
        )
    return data
