"""Structured result artifacts: one JSON + CSV pair per experiment run.

The emitter writes ``BENCH_<experiment>.json`` (headers, row cells, and
a ``meta`` block with timing/cache accounting) and a sibling ``.csv``
with the same grid, into a ``results/`` directory of the caller's
choosing.  The JSON is the machine-readable record CI uploads and diffs
against the checked-in baseline (``scripts/check_bench_regression.py``);
:func:`repro.reports.tables.render_artifact` turns either file's data
back into the paper-style text table.

Every artifact carries the same versioned envelope on top of the
legacy ``format`` marker (the documented contract lives in
``docs/observability.md`` § "Artifact schema"):

* ``schema_version`` -- integer, bumped when the payload layout
  changes.  Version 1 (implicit: the field is absent) had no ``run``
  block; version 2 added it; version 3 nests the experiment data
  under ``payload`` next to a ``kind`` discriminator, so every
  ``--emit-json`` producer (grid tables, matrix, fuzz, opt, store
  bench, obs summaries) shares one wire shape with the service layer.
  :func:`load_artifact` accepts any version up to
  :data:`ARTIFACT_SCHEMA_VERSION` -- normalising old shapes to the
  same in-memory view -- and rejects newer ones, so old readers fail
  loudly instead of misparsing future layouts.
* ``run`` -- where the artifact came from: a ``run_id`` (shared with
  the observability session's logs/spans when one is active), creation
  time, python/platform, and the source-tree fingerprint prefix.

The v3 envelope::

    {
      "format": "dynunlock-artifact/1",
      "schema_version": 3,
      "kind": "<experiment>",
      "run": {...provenance...},
      "payload": {"experiment", "title", "profile",
                  "headers", "rows", "meta"}
    }

:func:`load_artifact` always returns the *flattened* view (payload
keys hoisted to the top level next to the envelope fields), so
consumers written against v1/v2 artifacts -- including the checked-in
CI baselines -- keep working unchanged.
"""

from __future__ import annotations

import csv
import json
import platform
import sys
import time
import uuid
from pathlib import Path
from typing import Any, Sequence

ARTIFACT_FORMAT = "dynunlock-artifact/1"

#: Payload layout version; see the module docstring for the history.
ARTIFACT_SCHEMA_VERSION = 3

#: Keys of the ``payload`` block (v3) / the top level (v1-v2).
_PAYLOAD_KEYS = ("experiment", "title", "profile", "headers", "rows", "meta")


def run_metadata() -> dict[str, Any]:
    """The ``run`` provenance block stamped into every artifact."""
    from repro.observability.session import current_session
    from repro.runner.spec import code_version

    session = current_session()
    return {
        "run_id": session.run_id if session is not None else uuid.uuid4().hex[:12],
        "created_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "platform": sys.platform,
        "code_version": code_version()[:20],
    }


def artifact_paths(directory: str | Path, experiment: str) -> tuple[Path, Path]:
    """The (json, csv) file pair an experiment's artifact occupies."""
    base = Path(directory) / f"BENCH_{experiment}"
    return base.with_suffix(".json"), base.with_suffix(".csv")


def write_artifact(
    directory: str | Path,
    experiment: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    profile: str | None = None,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write the JSON + CSV pair for one finished grid; returns the JSON path."""
    json_path, csv_path = artifact_paths(directory, experiment)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    envelope = {
        "format": ARTIFACT_FORMAT,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "kind": experiment,
        "run": run_metadata(),
        "payload": {
            "experiment": experiment,
            "title": title,
            "profile": profile,
            "headers": list(headers),
            "rows": [list(row) for row in rows],
            "meta": dict(meta or {}),
        },
    }
    json_path.write_text(json.dumps(envelope, indent=1, sort_keys=True) + "\n")
    with csv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        writer.writerows([list(row) for row in rows])
    return json_path


def normalize_artifact(data: dict[str, Any]) -> dict[str, Any]:
    """Flatten any accepted artifact shape to the v1/v2-style view.

    v3 envelopes get their ``payload`` keys hoisted to the top level
    (the envelope fields stay); v1/v2 dicts pass through with ``kind``
    defaulting to the experiment name.  The input dict is not mutated.
    """
    flat = {k: v for k, v in data.items() if k != "payload"}
    payload = data.get("payload")
    if isinstance(payload, dict):
        for key in _PAYLOAD_KEYS:
            if key in payload:
                flat[key] = payload[key]
    flat.setdefault("kind", flat.get("experiment"))
    return flat


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Read an artifact JSON back, validating format marker and schema.

    Artifacts written before the ``schema_version`` field (version 1,
    e.g. checked-in baselines) load unchanged; v3 envelopes are
    flattened via :func:`normalize_artifact` so every consumer sees one
    shape; artifacts from a *newer* schema are rejected rather than
    silently misread.
    """
    data = json.loads(Path(path).read_text())
    if data.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path} is not a {ARTIFACT_FORMAT} artifact "
            f"(format={data.get('format')!r})"
        )
    version = data.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise ValueError(f"{path} has an invalid schema_version: {version!r}")
    if version > ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{path} uses artifact schema v{version}; this reader understands "
            f"up to v{ARTIFACT_SCHEMA_VERSION} -- upgrade the repro package"
        )
    return normalize_artifact(data)
