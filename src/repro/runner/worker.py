"""The function that runs inside scheduler worker processes.

:func:`execute_job` is the single entry point a
:class:`~concurrent.futures.ProcessPoolExecutor` invokes: it takes a
pickled spec dict (not a :class:`JobSpec` -- plain dicts survive every
start method), resolves the cell function by experiment name, enforces
the per-job wall-clock budget with ``SIGALRM`` where the platform has
it, and returns the cell's JSON-safe result plus the measured duration.

The cell registry import happens lazily inside the function so that
``repro.runner`` never imports ``repro.reports`` at module load time
(the reports layer imports the runner, not vice versa).
"""

from __future__ import annotations

import signal
import time
from typing import Any


class JobTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock budget."""


def _alarm_handler(signum, frame):
    raise JobTimeout("job exceeded its wall-clock budget")


def execute_job(spec_dict: dict[str, Any], timeout_s: float | None = None) -> dict:
    """Run one cell; returns ``{"result": ..., "duration_s": ...}``.

    ``timeout_s`` arms an interval timer that aborts the cell with
    :class:`JobTimeout` (delivered to the caller as an exception result
    of the future).  Only the main thread of a process may set signal
    handlers, which holds for pool workers and for the serial path.
    """
    from repro.reports.cells import run_cell
    from repro.runner.spec import JobSpec

    spec = JobSpec.from_dict(spec_dict)
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    previous = None
    start = time.perf_counter()
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, max(timeout_s, 1e-3))
    try:
        result = run_cell(spec)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return {"result": result, "duration_s": time.perf_counter() - start}
