"""The function that runs inside scheduler worker processes.

:func:`execute_job` is the single entry point a
:class:`~concurrent.futures.ProcessPoolExecutor` invokes: it takes a
pickled spec dict (not a :class:`JobSpec` -- plain dicts survive every
start method), resolves the cell function by experiment name, enforces
the per-job wall-clock budget with ``SIGALRM`` where the platform has
it, and returns the cell's JSON-safe result plus the measured duration.

The cell registry import happens lazily inside the function so that
``repro.runner`` never imports ``repro.reports`` at module load time
(the reports layer imports the runner, not vice versa).
"""

from __future__ import annotations

import signal
import time
from typing import Any


class JobTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock budget."""


def _alarm_handler(signum, frame):
    raise JobTimeout("job exceeded its wall-clock budget")


def execute_job(
    spec_dict: dict[str, Any],
    timeout_s: float | None = None,
    collect_span: bool = False,
) -> dict:
    """Run one cell; returns ``{"result": ..., "duration_s": ...}``.

    ``timeout_s`` arms an interval timer that aborts the cell with
    :class:`JobTimeout` (delivered to the caller as an exception result
    of the future).  Only the main thread of a process may set signal
    handlers, which holds for pool workers and for the serial path.

    ``collect_span`` opens a :mod:`repro.observability.spans` span
    around the cell so instrumented hot paths (SatAttack, DynUnlock,
    the opt pipeline) record phase timings and counts; the finished
    span travels back under a ``"span"`` payload key -- never inside
    the result dict, so cache entries and rows are byte-identical with
    instrumentation on or off.
    """
    from repro.reports.cells import run_cell
    from repro.runner.spec import JobSpec

    spec = JobSpec.from_dict(spec_dict)
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    previous = None
    span = None
    if collect_span:
        from repro.observability.spans import begin_job_span

        span = begin_job_span(spec.experiment, spec.label, spec.spec_hash[:12])
    span_record = None
    start = time.perf_counter()
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, max(timeout_s, 1e-3))
    try:
        result = run_cell(spec)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        if span is not None:
            from repro.observability.spans import end_job_span

            # Always close the span (clears the process-global slot);
            # the record is discarded if the cell raised.
            span_record = end_job_span(span)
    payload = {"result": result, "duration_s": time.perf_counter() - start}
    if span_record is not None:
        payload["span"] = span_record
    return payload
