"""Fan an experiment grid out across cores, memoising finished cells.

:func:`run_jobs` is the one entry point: give it a list of
:class:`~repro.runner.spec.JobSpec` and it returns one
:class:`JobOutcome` per spec *in input order*, regardless of completion
order -- so aggregation code downstream never sees scheduling
nondeterminism.  Features:

* ``jobs=1`` runs serially in-process (no pickling, easy debugging);
  ``jobs>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
* A result store (any :class:`~repro.runner.stores.StoreBackend` --
  JSON, sharded, or SQLite) short-circuits cells whose
  (spec hash, code version) pair is already on disk, and absorbs every
  freshly computed cell -- an interrupted grid resumes where it stopped.
* Per-job ``timeout_s`` (enforced by an interval timer inside the
  worker) and ``retries`` re-submissions for transient failures
  (default 0: cells are deterministic, so an identical resubmission
  usually just doubles the cost of a real failure -- and with a store,
  simply re-running the grid retries the failed cells anyway).
* ``progress`` receives every :class:`JobOutcome` as it lands, cached or
  computed, for streaming CLI/bench output.
* ``observer`` (a :class:`~repro.observability.session.RunObserver`,
  or any object with ``submitted``/``finished`` hooks and a
  ``collect_spans`` flag) turns on per-job instrumentation: workers
  collect phase spans, and every dispatch/landing is reported for
  queue-latency accounting and metrics.  ``None`` (the default) is
  strictly zero-cost -- no span collection, byte-identical results.

Failures never raise mid-grid: they land in ``JobOutcome.error`` so one
bad cell cannot waste the rest of a long run.  Call
:meth:`RunReport.raise_on_error` (or use ``RunReport.results``) when
partial grids are unacceptable.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.runner.spec import JobSpec
from repro.runner.stores import StoreBackend
from repro.runner.worker import execute_job

ProgressFn = Callable[["JobOutcome"], None]


class RunnerError(RuntimeError):
    """Raised by :meth:`RunReport.raise_on_error` when any cell failed."""


@dataclass
class JobOutcome:
    """What happened to one spec: a result, a cache hit, or an error."""

    index: int
    spec: JobSpec
    result: dict | None
    cached: bool = False
    attempts: int = 0
    duration_s: float = 0.0
    error: str | None = None
    #: Worker-collected instrumentation record (observer runs only).
    span: dict | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell produced a result (cached or computed)."""
        return self.result is not None


@dataclass
class RunReport:
    """All outcomes of one grid, in input order, plus wall-clock totals."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def n_cached(self) -> int:
        """Cells served from the result store."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def n_computed(self) -> int:
        """Cells freshly executed this run."""
        return sum(1 for o in self.outcomes if o.ok and not o.cached)

    @property
    def n_failed(self) -> int:
        """Cells that errored out even after retries."""
        return sum(1 for o in self.outcomes if not o.ok)

    def raise_on_error(self) -> None:
        """Raise :class:`RunnerError` naming every failed cell, if any."""
        failed = [o for o in self.outcomes if not o.ok]
        if failed:
            detail = "; ".join(f"{o.spec.label}: {o.error}" for o in failed[:5])
            more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
            raise RunnerError(f"{len(failed)} job(s) failed: {detail}{more}")

    @property
    def results(self) -> list[dict]:
        """Result dicts in spec order; raises if any cell failed."""
        self.raise_on_error()
        return [o.result for o in self.outcomes]  # type: ignore[misc]

    def summary(self) -> str:
        """One-line ``computed/cached/failed`` accounting for CLIs."""
        return (
            f"{len(self.outcomes)} job(s): {self.n_computed} computed, "
            f"{self.n_cached} cached, {self.n_failed} failed "
            f"in {self.wall_s:.2f}s wall"
        )


def _emit(progress: ProgressFn | None, outcome: JobOutcome) -> None:
    if progress is not None:
        progress(outcome)


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int = 1,
    store: StoreBackend | None = None,
    timeout_s: float | None = None,
    retries: int = 0,
    progress: ProgressFn | None = None,
    observer=None,
) -> RunReport:
    """Execute a grid of specs; see the module docstring for semantics."""
    started = time.perf_counter()
    report = RunReport(
        outcomes=[JobOutcome(index=i, spec=s, result=None) for i, s in enumerate(specs)]
    )

    pending: list[int] = []
    for outcome in report.outcomes:
        hit = store.get(outcome.spec) if store is not None else None
        if hit is not None:
            outcome.result = hit
            outcome.cached = True
            if observer is not None:
                observer.finished(outcome)
            _emit(progress, outcome)
        else:
            pending.append(outcome.index)

    if pending:
        if jobs <= 1:
            _run_serial(report, pending, store, timeout_s, retries, progress, observer)
        else:
            _run_parallel(
                report, pending, jobs, store, timeout_s, retries, progress, observer
            )

    report.wall_s = time.perf_counter() - started
    return report


def _finish(
    report: RunReport,
    index: int,
    payload: dict,
    store: StoreBackend | None,
    progress: ProgressFn | None,
    observer=None,
) -> None:
    outcome = report.outcomes[index]
    outcome.result = payload["result"]
    outcome.duration_s = payload["duration_s"]
    outcome.span = payload.get("span")
    if store is not None:
        store.put(outcome.spec, outcome.result, duration_s=outcome.duration_s)
    if observer is not None:
        observer.finished(outcome)
    _emit(progress, outcome)


def _fail(
    report: RunReport,
    index: int,
    exc: BaseException,
    progress: ProgressFn | None,
    observer=None,
) -> None:
    outcome = report.outcomes[index]
    outcome.error = f"{type(exc).__name__}: {exc}"
    if observer is not None:
        observer.finished(outcome)
    _emit(progress, outcome)


def _collect_spans(observer) -> bool:
    return observer is not None and getattr(observer, "collect_spans", False)


def _run_serial(
    report: RunReport,
    pending: Sequence[int],
    store: StoreBackend | None,
    timeout_s: float | None,
    retries: int,
    progress: ProgressFn | None,
    observer=None,
) -> None:
    collect = _collect_spans(observer)
    for index in pending:
        outcome = report.outcomes[index]
        last_exc: BaseException | None = None
        for _ in range(retries + 1):
            outcome.attempts += 1
            if observer is not None:
                observer.submitted(outcome)
            try:
                payload = execute_job(outcome.spec.to_dict(), timeout_s, collect)
            except Exception as exc:
                last_exc = exc
            else:
                _finish(report, index, payload, store, progress, observer)
                last_exc = None
                break
        if last_exc is not None:
            _fail(report, index, last_exc, progress, observer)


def _run_parallel(
    report: RunReport,
    pending: Sequence[int],
    jobs: int,
    store: StoreBackend | None,
    timeout_s: float | None,
    retries: int,
    progress: ProgressFn | None,
    observer=None,
) -> None:
    collect = _collect_spans(observer)
    with ProcessPoolExecutor(max_workers=jobs) as pool:

        def submit(index: int):
            report.outcomes[index].attempts += 1
            spec_dict = report.outcomes[index].spec.to_dict()
            if observer is not None:
                observer.submitted(report.outcomes[index])
            return pool.submit(execute_job, spec_dict, timeout_s, collect)

        futures = {submit(index): index for index in pending}
        while futures:
            done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
            for future in done:
                index = futures.pop(future)
                try:
                    payload = future.result()
                except Exception as exc:
                    if report.outcomes[index].attempts <= retries:
                        try:
                            futures[submit(index)] = index
                        except Exception as resubmit_exc:
                            _fail(report, index, resubmit_exc, progress, observer)
                    else:
                        _fail(report, index, exc, progress, observer)
                else:
                    _finish(report, index, payload, store, progress, observer)
