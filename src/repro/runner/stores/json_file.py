"""The default per-file JSON backend (byte-compatible with seed caches).

Layout: ``<root>/<code-version>/<experiment>/<spec-hash>.json``, one
file per cell, written atomically (temp file + rename) so an interrupted
or concurrent writer never leaves a torn entry behind -- a reader sees
either the complete previous entry or the complete new one.  This is
exactly the layout (and the exact bytes) the original single-backend
``ResultStore`` wrote, so existing ``.repro_cache`` trees keep working
unchanged.

Fine at matrix scale; at 10^5+ entries every cell of an experiment
shares one directory, which is what :class:`~repro.runner.stores
.sharded.ShardedJsonStore` exists to fix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Iterable

from repro.runner.stores.base import BaseStore, EntryMeta, entry_key


class JsonFileStore(BaseStore):
    """Content-addressed one-file-per-cell JSON store (the default)."""

    name = "json"
    suffix = ".json"

    def _path(self, experiment: str, key: str) -> Path:
        return self.root / self.version / experiment / f"{key}{self.suffix}"

    def path_for(self, spec) -> Path:
        """File that does (or would) hold ``spec``'s cached result."""
        return self._path(spec.experiment, entry_key(spec))

    # -- raw hooks -----------------------------------------------------------

    def _read_raw(self, experiment: str, key: str) -> bytes | None:
        try:
            return self._path(experiment, key).read_bytes()
        except OSError:
            return None

    def _write_raw(
        self, experiment: str, key: str, raw: bytes, mtime: float | None
    ) -> None:
        path = self._path(experiment, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            if mtime is not None:
                os.utime(tmp, (mtime, mtime))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _delete(self, experiment: str, key: str) -> bool:
        try:
            self._path(experiment, key).unlink()
            return True
        except OSError:
            return False

    def _entries(self) -> Iterable[EntryMeta]:
        version_dir = self.root / self.version
        if not version_dir.is_dir():
            return
        for path in version_dir.rglob(f"*{self.suffix}"):
            if not path.is_file():
                continue
            try:
                stat = path.stat()
            except OSError:  # raced with a concurrent invalidate/GC
                continue
            relative = path.relative_to(version_dir)
            yield EntryMeta(
                experiment=relative.parts[0],
                key=path.stem,
                nbytes=stat.st_size,
                mtime=stat.st_mtime,
            )

    def prune(self) -> int:
        """Delete entries from *other* code versions; returns files removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for version_dir in self.root.iterdir():
            if not version_dir.is_dir() or version_dir.name == self.version:
                continue
            for path in sorted(version_dir.rglob("*"), reverse=True):
                if path.is_file():
                    path.unlink()
                    removed += 1
                else:
                    path.rmdir()
            version_dir.rmdir()
        return removed
