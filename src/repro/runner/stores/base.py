"""Backend-agnostic result-store machinery.

Every backend stores the same unit: one *entry* -- the canonical JSON
encoding of ``{"spec", "label", "duration_s", "result"}`` produced by
:func:`encode_entry` -- addressed by ``(code version, experiment,
entry key)`` where the key is the spec hash truncated to 32 hex chars.
Because the serialised bytes are defined here, not per backend,
migrating a cache between any two backends preserves every entry
byte-for-byte, and the fuzz campaign's cache-stability invariant means
the same thing everywhere.

Backends implement four raw hooks (:meth:`BaseStore._read_raw`,
``_write_raw``, ``_delete``, ``_entries``) plus :meth:`BaseStore.prune`;
the shared surface (get/put/invalidate/iterate/stats/gc) lives here so
semantics -- spec verification on read, corruption degrading to a miss,
LRU-by-mtime garbage collection -- cannot drift between backends.

GC policy: entries are ranked newest-first by mtime (ties broken by
``(experiment, key)`` so eviction is deterministic); the survivor set is
the maximal newest prefix whose cumulative size fits ``max_bytes``, and
*everything older is evicted* -- GC never keeps an entry older than one
it evicted, and never evicts below the survivor set.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.observability.session import store_event
from repro.runner.spec import JobSpec, code_version

DEFAULT_CACHE_DIR = ".repro_cache"

#: Spec hashes are truncated to this many hex chars in entry keys
#: (matching the legacy ``<hash>[:32].json`` file names).
KEY_LENGTH = 32


def default_cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in the cwd."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def entry_key(spec: JobSpec) -> str:
    """The content-addressed key a spec's entry is stored under."""
    return spec.spec_hash[:KEY_LENGTH]


def encode_entry(
    spec: JobSpec, result: dict, *, duration_s: float | None = None
) -> bytes:
    """Serialise one entry to its canonical bytes (all backends agree).

    The encoding is byte-identical to what the original per-file JSON
    store wrote (``indent=1, sort_keys=True``), so pre-existing caches
    and freshly written ones are indistinguishable on disk.
    """
    entry = {
        "spec": spec.canonical(),
        "label": spec.label,
        "duration_s": duration_s,
        "result": result,
    }
    return json.dumps(entry, indent=1, sort_keys=True).encode("utf-8")


def decode_entry_result(raw: bytes, spec: JobSpec) -> dict | None:
    """Parse entry bytes and return the result dict iff it matches ``spec``.

    Torn writes, hand-edited files, hash collisions, and foreign
    payloads all land here as ``None`` -- a miss, never a wrong row.
    """
    try:
        entry = json.loads(raw)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(entry, dict):
        return None
    if entry.get("spec") != spec.canonical():
        return None
    result = entry.get("result")
    return result if isinstance(result, dict) else None


@dataclass(frozen=True)
class EntryMeta:
    """Size/age bookkeeping for one stored entry (GC and stats input)."""

    experiment: str
    key: str
    nbytes: int
    mtime: float


@dataclass(frozen=True)
class StoreEntry:
    """One entry streamed out of a store (migration/inspection unit)."""

    experiment: str
    key: str
    raw: bytes
    mtime: float


@dataclass
class GCReport:
    """What one :meth:`BaseStore.gc` sweep kept and evicted."""

    limit_bytes: int
    n_before: int
    n_evicted: int
    bytes_before: int
    bytes_after: int
    dry_run: bool = False
    evicted: list[tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        """One-line accounting for CLI output."""
        verb = "would evict" if self.dry_run else "evicted"
        return (
            f"{verb} {self.n_evicted}/{self.n_before} entr"
            f"{'y' if self.n_evicted == 1 else 'ies'}: "
            f"{self.bytes_before} -> {self.bytes_after} bytes "
            f"(limit {self.limit_bytes})"
        )


@runtime_checkable
class StoreBackend(Protocol):
    """What the scheduler (and every grid/fuzz harness) needs from a store."""

    def get(self, spec: JobSpec) -> dict | None: ...

    def put(
        self, spec: JobSpec, result: dict, *, duration_s: float | None = None
    ) -> None: ...

    def invalidate(self, spec: JobSpec) -> bool: ...

    def iterate(self) -> Iterator[StoreEntry]: ...

    def stats(self) -> dict: ...

    def gc(self, max_bytes: int, *, dry_run: bool = False) -> GCReport: ...

    def prune(self) -> int: ...

    def close(self) -> None: ...

    def __len__(self) -> int: ...


class BaseStore:
    """Shared store surface; backends supply the four raw hooks."""

    #: Registry name; subclasses override ("json", "sharded", "sqlite").
    name = "base"

    def __init__(self, root: str | Path | None = None, *, version: str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version = (version if version is not None else code_version())[:20]

    # -- raw hooks every backend implements ---------------------------------

    def _read_raw(self, experiment: str, key: str) -> bytes | None:
        raise NotImplementedError

    def _write_raw(
        self, experiment: str, key: str, raw: bytes, mtime: float | None
    ) -> None:
        raise NotImplementedError

    def _delete(self, experiment: str, key: str) -> bool:
        raise NotImplementedError

    def _entries(self) -> Iterable[EntryMeta]:
        raise NotImplementedError

    def prune(self) -> int:
        """Delete entries from *other* code versions; returns units removed."""
        raise NotImplementedError

    # -- shared semantics ----------------------------------------------------

    def get(self, spec: JobSpec) -> dict | None:
        """Return the cached result dict, or ``None`` on any kind of miss."""
        raw = self._read_raw(spec.experiment, entry_key(spec))
        result = None if raw is None else decode_entry_result(raw, spec)
        store_event(self.name, "hit" if result is not None else "miss")
        return result

    def put(
        self, spec: JobSpec, result: dict, *, duration_s: float | None = None
    ) -> None:
        """Atomically persist ``result`` for ``spec``."""
        raw = encode_entry(spec, result, duration_s=duration_s)
        self._write_raw(spec.experiment, entry_key(spec), raw, None)
        store_event(self.name, "put")

    def put_raw(
        self, experiment: str, key: str, raw: bytes, *, mtime: float | None = None
    ) -> None:
        """Store pre-serialised entry bytes verbatim (migration path).

        ``mtime`` preserves the source entry's age so a migrated cache
        keeps its LRU order; ``None`` stamps the entry as fresh.
        """
        self._write_raw(experiment, key, raw, mtime)

    def invalidate(self, spec: JobSpec) -> bool:
        """Drop one cached cell; returns whether an entry existed."""
        return self._delete(spec.experiment, entry_key(spec))

    def iterate(self) -> Iterator[StoreEntry]:
        """Stream every current-version entry in deterministic order."""
        for meta in sorted(self._entries(), key=lambda m: (m.experiment, m.key)):
            raw = self._read_raw(meta.experiment, meta.key)
            if raw is not None:
                yield StoreEntry(meta.experiment, meta.key, raw, meta.mtime)

    def gc(self, max_bytes: int, *, dry_run: bool = False) -> GCReport:
        """Evict oldest-first until the current version fits ``max_bytes``.

        See the module docstring for the exact survivor-set policy.
        ``dry_run`` computes the report without deleting anything.
        """
        metas = sorted(
            self._entries(), key=lambda m: (-m.mtime, m.experiment, m.key)
        )
        bytes_before = sum(m.nbytes for m in metas)
        kept_bytes = 0
        evicted: list[EntryMeta] = []
        for meta in metas:  # newest first; first overflow evicts the rest
            if evicted or kept_bytes + meta.nbytes > max_bytes:
                evicted.append(meta)
            else:
                kept_bytes += meta.nbytes
        report = GCReport(
            limit_bytes=max_bytes,
            n_before=len(metas),
            n_evicted=len(evicted),
            bytes_before=bytes_before,
            bytes_after=kept_bytes,
            dry_run=dry_run,
            evicted=[(m.experiment, m.key) for m in evicted],
        )
        if not dry_run and evicted:
            for meta in evicted:
                self._delete(meta.experiment, meta.key)
            self._after_gc()
        return report

    def _after_gc(self) -> None:
        """Hook for space reclamation after deletions (SQLite vacuums)."""

    def stats(self) -> dict:
        """Uniform stats block: identity, entry counts, byte totals."""
        metas = list(self._entries())
        base = {
            "backend": self.name,
            "root": str(self.root),
            "version": self.version,
            "entries": len(metas),
            "stored_bytes": sum(m.nbytes for m in metas),
            "experiments": sorted({m.experiment for m in metas}),
        }
        base.update(self._stats_extra())
        return base

    def _stats_extra(self) -> dict:
        """Backend-specific stats fields (codec mix, db size, ...)."""
        return {}

    def close(self) -> None:
        """Release backend resources (file backends hold none)."""

    def __enter__(self) -> "BaseStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} backend={self.name!r} root={str(self.root)!r} "
            f"version={self.version!r}>"
        )
