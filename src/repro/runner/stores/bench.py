"""Head-to-head result-store benchmark (the ``dynunlock store-bench`` core).

Generates one deterministic synthetic workload -- N experiment cells
with JSON payloads of roughly the requested size, shaped like real
attack results (nested dicts, float timings, compressible key streams)
-- and pushes the identical workload through every backend: bulk put,
hit-path get, miss-path get, full iterate, then a size accounting of
what landed on disk.

The emitted ``BENCH_store.json`` meta block carries per-backend timings
plus ``default_total_s`` (put+get of the default ``json`` backend),
which CI gates against ``benchmarks/baselines/store_quick.json`` with
the same ``scripts/check_bench_regression.py`` used for Table II.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from repro.runner.spec import JobSpec
from repro.runner.stores import BACKENDS, DEFAULT_BACKEND, open_store
from repro.runner.stores.codecs import zstd_available

BENCH_VERSION = "storebench" + "0" * 10  # fixed: timings, not cache reuse

HEADERS = [
    "Backend",
    "Entries",
    "Put (s)",
    "Get hit (s)",
    "Get miss (s)",
    "Iterate (s)",
    "Disk bytes",
    "B/entry",
]


def synthetic_workload(
    entries: int, payload_bytes: int, seed: int = 0
) -> list[tuple[JobSpec, dict]]:
    """Deterministic ``(spec, result)`` pairs; same seed => same bytes."""
    rng = random.Random(seed)
    workload = []
    for index in range(entries):
        # A handful of experiments so the per-experiment fan-out and the
        # sharded layout both get exercised, not one giant directory.
        experiment = f"bench{index % 4}"
        spec = JobSpec(
            experiment=experiment,
            params={"index": index, "nonce": rng.getrandbits(32)},
            profile={"name": "storebench", "payload_bytes": payload_bytes},
        )
        filler = "".join(
            rng.choice("0123456789abcdef") * rng.randint(1, 8)
            for _ in range(max(1, payload_bytes // 8))
        )[:payload_bytes]
        result = {
            "success": True,
            "time_s": rng.random(),
            "iterations": rng.randint(1, 64),
            "keystream": filler,
        }
        workload.append((spec, result))
    return workload


def bench_backend(
    backend: str, root: Path, workload: list[tuple[JobSpec, dict]]
) -> dict:
    """Time one backend over the shared workload; returns a metrics dict."""
    store = open_store(root, backend=backend, version=BENCH_VERSION)
    try:
        started = time.perf_counter()
        for spec, result in workload:
            store.put(spec, result, duration_s=result["time_s"])
        put_s = time.perf_counter() - started

        started = time.perf_counter()
        hits = sum(1 for spec, _ in workload if store.get(spec) is not None)
        get_hit_s = time.perf_counter() - started

        misses = [
            JobSpec("benchmiss", {"index": i}, {"name": "storebench"})
            for i in range(len(workload))
        ]
        started = time.perf_counter()
        found = sum(1 for spec in misses if store.get(spec) is not None)
        get_miss_s = time.perf_counter() - started

        started = time.perf_counter()
        iterated = sum(1 for _ in store.iterate())
        iterate_s = time.perf_counter() - started

        if hits != len(workload) or found != 0 or iterated != len(workload):
            raise RuntimeError(
                f"{backend}: benchmark store misbehaved "
                f"(hits={hits}, phantom={found}, iterated={iterated}, "
                f"expected {len(workload)})"
            )
    finally:
        # Close before sizing so SQLite checkpoints its WAL -- otherwise
        # the journal, not the data, dominates the disk accounting.
        store.close()
    disk_bytes = sum(
        path.stat().st_size for path in root.rglob("*") if path.is_file()
    )
    return {
        "backend": backend,
        "entries": len(workload),
        "put_s": put_s,
        "get_hit_s": get_hit_s,
        "get_miss_s": get_miss_s,
        "iterate_s": iterate_s,
        "disk_bytes": disk_bytes,
        "bytes_per_entry": disk_bytes / len(workload) if workload else 0.0,
        "total_s": put_s + get_hit_s,
    }


def run_store_bench(
    workdir: Path,
    *,
    entries: int = 1500,
    payload_bytes: int = 1024,
    seed: int = 0,
    backends: list[str] | None = None,
) -> tuple[list[str], list[list], dict]:
    """Run the head-to-head; returns ``(headers, rows, meta)`` for emission."""
    names = list(backends) if backends else sorted(BACKENDS)
    workload = synthetic_workload(entries, payload_bytes, seed)
    metrics = {}
    for name in names:
        root = Path(workdir) / f"store-{name}"
        metrics[name] = bench_backend(name, root, workload)
    rows = [
        [
            m["backend"],
            m["entries"],
            f"{m['put_s']:.3f}",
            f"{m['get_hit_s']:.3f}",
            f"{m['get_miss_s']:.3f}",
            f"{m['iterate_s']:.3f}",
            m["disk_bytes"],
            f"{m['bytes_per_entry']:.0f}",
        ]
        for m in (metrics[name] for name in names)
    ]
    meta = {
        "entries": entries,
        "payload_bytes": payload_bytes,
        "seed": seed,
        "zstd_available": zstd_available(),
        "backends": metrics,
        "default_backend": DEFAULT_BACKEND,
        # The CI gate metric: regressions of the default backend's
        # put+get path fail the build (see Makefile `store-bench`).
        "default_total_s": metrics[DEFAULT_BACKEND]["total_s"]
        if DEFAULT_BACKEND in metrics
        else None,
    }
    return HEADERS, rows, meta
