"""Sharded-directory JSON backend: two-level hash fan-out.

Layout: ``<root>/<version>/<experiment>/<k[:2]>/<k[2:4]>/<k>.json``
where ``k`` is the 32-hex-char entry key.  The two shard levels give
256 x 256 = 65536 leaf directories per experiment, so a million-entry
sweep puts ~15 files in each instead of a million in one -- directory
operations (create, list, fsync-on-rename) stay O(1) as the cache
grows, which is the entire difference from the flat
:class:`~repro.runner.stores.json_file.JsonFileStore`.

Entry bytes, atomic-rename writes, GC, and prune semantics are all
inherited unchanged; only the path function differs.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner.stores.json_file import JsonFileStore


class ShardedJsonStore(JsonFileStore):
    """Hash-fanned-out variant of the per-file JSON store."""

    name = "sharded"

    def _path(self, experiment: str, key: str) -> Path:
        return (
            self.root
            / self.version
            / experiment
            / key[:2]
            / key[2:4]
            / f"{key}{self.suffix}"
        )
