"""Per-entry payload compression for the binary store backends.

Every compressed backend records the codec *per row*, so a cache
written by a process that had ``zstandard`` importable reads back
correctly in one that does not (zstd rows simply degrade to misses
there, zlib/raw rows keep working).  The stdlib ``zlib`` codec is the
floor every interpreter can decode; ``zstd`` is used opportunistically
when the optional ``zstandard`` package is importable -- never a hard
dependency.

Codec names are part of the on-disk format: add new ones, never rename.
"""

from __future__ import annotations

import zlib

try:  # optional accelerator -- the container may not ship it
    import zstandard
except ImportError:  # pragma: no cover - exercised via monkeypatching
    zstandard = None

#: Codec names accepted by :func:`encode_blob` / :func:`decode_blob`.
KNOWN_CODECS = ("raw", "zlib", "zstd")

_ZLIB_LEVEL = 6


class CodecError(ValueError):
    """A blob could not be encoded or decoded (bad codec or bad bytes)."""


def zstd_available() -> bool:
    """Whether the optional ``zstandard`` package imported successfully."""
    return zstandard is not None


def preferred_codec() -> str:
    """Best codec this interpreter can both write and read back."""
    return "zstd" if zstd_available() else "zlib"


def encode_blob(raw: bytes, codec: str | None = None) -> tuple[str, bytes]:
    """Compress ``raw``; returns ``(codec_name, blob)`` for the row."""
    codec = codec or preferred_codec()
    if codec == "raw":
        return "raw", bytes(raw)
    if codec == "zlib":
        return "zlib", zlib.compress(raw, _ZLIB_LEVEL)
    if codec == "zstd":
        if not zstd_available():
            raise CodecError("codec 'zstd' requested but zstandard is not importable")
        return "zstd", zstandard.ZstdCompressor().compress(raw)
    raise CodecError(f"unknown codec {codec!r}; known: {', '.join(KNOWN_CODECS)}")


def decode_blob(codec: str, blob: bytes) -> bytes:
    """Inverse of :func:`encode_blob`; raises :class:`CodecError` on rot."""
    if codec == "raw":
        return bytes(blob)
    if codec == "zlib":
        try:
            return zlib.decompress(blob)
        except zlib.error as exc:
            raise CodecError(f"zlib payload is corrupt: {exc}") from exc
    if codec == "zstd":
        if not zstd_available():
            raise CodecError("row is zstd-compressed but zstandard is not importable")
        try:
            return zstandard.ZstdDecompressor().decompress(blob)
        except zstandard.ZstdError as exc:
            raise CodecError(f"zstd payload is corrupt: {exc}") from exc
    raise CodecError(f"unknown codec {codec!r}; known: {', '.join(KNOWN_CODECS)}")
