"""Pluggable result-store backends for the experiment runner.

Three backends, one contract (:class:`~repro.runner.stores.base
.StoreBackend`):

``json``
    One JSON file per cell (the default; byte-compatible with every
    pre-existing ``.repro_cache`` tree).
``sharded``
    The same files behind a two-level hash fan-out, so a million
    entries never share one directory.
``sqlite``
    One WAL-mode database with per-row zlib (opportunistically zstd)
    compression -- the scale-out backend for full sweeps and services.

Selection: pass ``backend=`` explicitly, or let :func:`open_store`
consult ``$REPRO_CACHE_BACKEND`` (the CLI's ``--cache-backend`` flag
feeds the explicit argument).  All backends store identical entry
bytes, so :func:`migrate` moves a cache between any two of them
byte-for-byte -- and ``dynunlock cache migrate`` is exactly that.

See ``docs/caching.md`` for the backend matrix, layouts, GC policy,
and migration recipes.
"""

from __future__ import annotations

import os

from repro.runner.stores.base import (
    DEFAULT_CACHE_DIR,
    BaseStore,
    EntryMeta,
    GCReport,
    StoreBackend,
    StoreEntry,
    decode_entry_result,
    default_cache_dir,
    encode_entry,
    entry_key,
)
from repro.runner.stores.json_file import JsonFileStore
from repro.runner.stores.sharded import ShardedJsonStore
from repro.runner.stores.sqlite_store import SqliteStore

#: Registry name -> backend class.  Names are part of the CLI/env surface.
BACKENDS: dict[str, type[BaseStore]] = {
    JsonFileStore.name: JsonFileStore,
    ShardedJsonStore.name: ShardedJsonStore,
    SqliteStore.name: SqliteStore,
}

DEFAULT_BACKEND = JsonFileStore.name
ENV_BACKEND = "REPRO_CACHE_BACKEND"

#: Backwards-compatible alias: the original single-backend store class.
ResultStore = JsonFileStore


def resolve_backend(name: str | None = None) -> str:
    """Backend choice: explicit arg > ``$REPRO_CACHE_BACKEND`` > ``json``."""
    choice = name or os.environ.get(ENV_BACKEND) or DEFAULT_BACKEND
    if choice not in BACKENDS:
        raise ValueError(
            f"unknown cache backend {choice!r}; known: {', '.join(sorted(BACKENDS))}"
        )
    return choice


def open_store(
    root=None, *, backend: str | None = None, version: str | None = None
) -> BaseStore:
    """Construct a store at ``root`` with the resolved backend."""
    return BACKENDS[resolve_backend(backend)](root, version=version)


def migrate(src: BaseStore, dst: BaseStore) -> int:
    """Copy every current-version entry ``src`` -> ``dst`` byte-for-byte.

    Entry bytes and mtimes (LRU order) are preserved exactly; existing
    destination entries with the same key are overwritten.  Returns the
    number of entries copied.
    """
    copied = 0
    for entry in src.iterate():
        dst.put_raw(entry.experiment, entry.key, entry.raw, mtime=entry.mtime)
        copied += 1
    return copied


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_CACHE_DIR",
    "ENV_BACKEND",
    "BaseStore",
    "EntryMeta",
    "GCReport",
    "JsonFileStore",
    "ResultStore",
    "ShardedJsonStore",
    "SqliteStore",
    "StoreBackend",
    "StoreEntry",
    "decode_entry_result",
    "default_cache_dir",
    "encode_entry",
    "entry_key",
    "migrate",
    "open_store",
    "resolve_backend",
]
