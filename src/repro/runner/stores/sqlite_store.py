"""SQLite backend: one compressed row per cell, safe concurrent writers.

One database file (``<root>/cells.sqlite3``) holds every code version's
entries, keyed ``(version, experiment, spec_hash)``.  Payloads are the
same canonical entry bytes every backend stores, compressed per row
through :mod:`repro.runner.stores.codecs` -- zlib always, zstd
opportunistically -- with the codec recorded in the row so mixed caches
(written across interpreters with and without ``zstandard``) read back
correctly.

Concurrency: WAL journal mode plus a generous busy timeout make
concurrent writer processes safe -- writers queue on the WAL lock
instead of failing, readers never block, and a row is visible either
entirely or not at all (no torn reads by construction).  Each process
opens its own connection; stores are cheap to construct and the
connection is opened lazily on first use, so merely instantiating one
(or probing an empty cache) conjures no database file.

Every failure mode on the read path -- missing file, foreign schema,
corrupt payload, undecodable codec -- degrades to a cache miss, never
an exception, matching the file backends' contract.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Iterable

from repro.runner.stores.base import BaseStore, EntryMeta
from repro.runner.stores.codecs import CodecError, decode_blob, encode_blob

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    version     TEXT NOT NULL,
    experiment  TEXT NOT NULL,
    spec_hash   TEXT NOT NULL,
    codec       TEXT NOT NULL,
    payload     BLOB NOT NULL,
    stored_bytes INTEGER NOT NULL,
    raw_bytes   INTEGER NOT NULL,
    mtime       REAL NOT NULL,
    PRIMARY KEY (version, experiment, spec_hash)
)
"""


class SqliteStore(BaseStore):
    """Compressed embedded-DB result store (stdlib ``sqlite3`` only)."""

    name = "sqlite"
    DB_FILENAME = "cells.sqlite3"
    BUSY_TIMEOUT_S = 30.0

    def __init__(self, root=None, *, version: str | None = None):
        super().__init__(root, version=version)
        self._conn: sqlite3.Connection | None = None

    @property
    def db_path(self):
        """Where the database file lives (or would live) under the root."""
        return self.root / self.DB_FILENAME

    def _connect(self, *, create: bool) -> sqlite3.Connection | None:
        """Open (or reuse) the connection; ``create=False`` never touches disk."""
        if self._conn is not None:
            return self._conn
        if not create and not self.db_path.is_file():
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.db_path), timeout=self.BUSY_TIMEOUT_S)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.BUSY_TIMEOUT_S * 1000)}")
            with conn:
                conn.execute(_SCHEMA)
        except sqlite3.Error:
            # A foreign or damaged file: readers degrade to misses,
            # writers surface the error when they actually write.
            if create:
                conn.close()
                raise
        self._conn = conn
        return conn

    # -- raw hooks -----------------------------------------------------------

    def _read_raw(self, experiment: str, key: str) -> bytes | None:
        try:
            conn = self._connect(create=False)
        except sqlite3.Error:
            return None
        if conn is None:
            return None
        try:
            row = conn.execute(
                "SELECT codec, payload FROM cells"
                " WHERE version = ? AND experiment = ? AND spec_hash = ?",
                (self.version, experiment, key),
            ).fetchone()
        except sqlite3.Error:
            return None
        if row is None:
            return None
        try:
            return decode_blob(row[0], row[1])
        except CodecError:
            return None

    def _write_raw(
        self, experiment: str, key: str, raw: bytes, mtime: float | None
    ) -> None:
        conn = self._connect(create=True)
        codec, blob = encode_blob(raw)
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO cells"
                " (version, experiment, spec_hash, codec, payload,"
                "  stored_bytes, raw_bytes, mtime)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    self.version,
                    experiment,
                    key,
                    codec,
                    blob,
                    len(blob),
                    len(raw),
                    time.time() if mtime is None else mtime,
                ),
            )

    def _delete(self, experiment: str, key: str) -> bool:
        try:
            conn = self._connect(create=False)
        except sqlite3.Error:
            return False
        if conn is None:
            return False
        try:
            with conn:
                cursor = conn.execute(
                    "DELETE FROM cells"
                    " WHERE version = ? AND experiment = ? AND spec_hash = ?",
                    (self.version, experiment, key),
                )
            return cursor.rowcount > 0
        except sqlite3.Error:
            return False

    def _entries(self) -> Iterable[EntryMeta]:
        try:
            conn = self._connect(create=False)
        except sqlite3.Error:
            return
        if conn is None:
            return
        try:
            rows = conn.execute(
                "SELECT experiment, spec_hash, stored_bytes, mtime FROM cells"
                " WHERE version = ?",
                (self.version,),
            ).fetchall()
        except sqlite3.Error:
            return
        for experiment, key, stored_bytes, mtime in rows:
            yield EntryMeta(experiment, key, stored_bytes, mtime)

    def prune(self) -> int:
        """Delete rows from *other* code versions; returns rows removed."""
        try:
            conn = self._connect(create=False)
        except sqlite3.Error:
            return 0
        if conn is None:
            return 0
        try:
            with conn:
                cursor = conn.execute(
                    "DELETE FROM cells WHERE version != ?", (self.version,)
                )
            removed = cursor.rowcount
        except sqlite3.Error:
            return 0
        if removed:
            self._vacuum()
        return removed

    # -- backend extras ------------------------------------------------------

    def _after_gc(self) -> None:
        self._vacuum()

    def _vacuum(self) -> None:
        """Best-effort space reclamation after bulk deletes."""
        if self._conn is None:
            return
        try:
            self._conn.execute("VACUUM")
        except sqlite3.Error:  # busy under a concurrent writer: fine
            pass

    def _stats_extra(self) -> dict:
        extra: dict = {"db_path": str(self.db_path)}
        try:
            extra["db_bytes"] = self.db_path.stat().st_size
        except OSError:
            extra["db_bytes"] = 0
        try:
            conn = self._connect(create=False)
        except sqlite3.Error:
            conn = None
        if conn is None:
            extra.update({"codecs": {}, "raw_bytes": 0, "foreign_entries": 0})
            return extra
        try:
            codec_rows = conn.execute(
                "SELECT codec, COUNT(*) FROM cells WHERE version = ?"
                " GROUP BY codec",
                (self.version,),
            ).fetchall()
            raw_total = conn.execute(
                "SELECT COALESCE(SUM(raw_bytes), 0) FROM cells WHERE version = ?",
                (self.version,),
            ).fetchone()[0]
            foreign = conn.execute(
                "SELECT COUNT(*) FROM cells WHERE version != ?", (self.version,)
            ).fetchone()[0]
        except sqlite3.Error:
            codec_rows, raw_total, foreign = [], 0, 0
        extra.update(
            {
                "codecs": {codec: count for codec, count in codec_rows},
                "raw_bytes": raw_total,
                "foreign_entries": foreign,
            }
        )
        return extra

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
