"""Parallel experiment orchestration with a cached artifact store.

The paper's evaluation is a grid of independent cells (benchmark x lock
scheme x attack x profile x LFSR seed).  This package turns each cell
into a declarative :class:`~repro.runner.spec.JobSpec` with a stable
content hash, fans the grid out across cores with
:func:`~repro.runner.scheduler.run_jobs`, and memoises finished cells in
an on-disk result store (:mod:`repro.runner.stores` -- per-file JSON,
sharded JSON, or compressed SQLite) keyed by spec hash
plus a fingerprint of the source tree -- so re-runs are resumable and
table regeneration only recomputes stale cells.  Finished grids are
written out as JSON + CSV artifacts (:mod:`repro.runner.artifacts`) that
:mod:`repro.reports.tables` can render and that CI diffs against a
checked-in timing baseline.

Layering: :mod:`repro.runner` knows nothing about specific experiments;
the cell implementations live in :mod:`repro.reports.cells` and are
looked up by name inside the worker process.
"""

from repro.runner.artifacts import load_artifact, normalize_artifact, write_artifact
from repro.runner.scheduler import JobOutcome, RunReport, run_jobs
from repro.runner.spec import JobSpec, code_version
from repro.runner.stores import (
    BACKENDS,
    ResultStore,
    StoreBackend,
    migrate,
    open_store,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "JobOutcome",
    "JobSpec",
    "ResultStore",
    "StoreBackend",
    "RunReport",
    "code_version",
    "load_artifact",
    "migrate",
    "normalize_artifact",
    "open_store",
    "resolve_backend",
    "run_jobs",
    "write_artifact",
]
