"""Declarative experiment-cell specifications with stable content hashes.

A :class:`JobSpec` is the unit of work the scheduler distributes: one
experiment cell (e.g. "Table II, s5378, LFSR seed 3, quick profile")
described entirely by JSON-safe values, so it can be pickled into a
worker process, hashed into a cache key, and serialised into artifacts.

Two hashing layers make the cache sound:

* :attr:`JobSpec.spec_hash` -- SHA-256 over the spec's canonical JSON
  (sorted keys, no whitespace).  Any change to the experiment name, a
  parameter, or a profile field produces a different hash.
* :func:`code_version` -- SHA-256 over every ``*.py`` file under
  ``src/repro``.  The result store namespaces entries by this
  fingerprint, so editing the attack (or the runner itself) invalidates
  every cached cell without any manual bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping


def _jsonable(value: Any) -> Any:
    """Normalise ``value`` into plain JSON types (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"JobSpec values must be JSON-safe, got {type(value).__name__}")


@dataclass
class JobSpec:
    """One experiment cell: an experiment name, its parameters, a profile.

    ``experiment`` selects the cell function (see
    :data:`repro.reports.cells.CELL_RUNNERS`); ``params`` are its keyword
    arguments; ``profile`` is the serialised
    :class:`~repro.reports.profiles.ExperimentProfile` the cell runs at.
    Instances are value objects -- do not mutate them after creation.
    """

    experiment: str
    params: dict[str, Any] = field(default_factory=dict)
    profile: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def make(cls, experiment: str, profile: Any, **params: Any) -> "JobSpec":
        """Build a spec from an :class:`ExperimentProfile` and cell kwargs."""
        from repro.reports.profiles import profile_to_dict

        return cls(
            experiment=experiment,
            params=_jsonable(params),
            profile=profile_to_dict(profile),
        )

    def canonical(self) -> str:
        """Canonical JSON encoding: sorted keys, minimal separators."""
        payload = {
            "experiment": self.experiment,
            "params": _jsonable(self.params),
            "profile": _jsonable(self.profile),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def spec_hash(self) -> str:
        """Stable SHA-256 hex digest of the canonical encoding."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identity for progress lines and logs."""
        parts = [
            f"{key}={value}"
            for key, value in sorted(self.params.items())
            if value is not None
        ]
        profile_name = self.profile.get("name", "?")
        detail = ",".join(parts) if parts else "-"
        return f"{self.experiment}[{detail}]@{profile_name}"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (what gets pickled into worker processes)."""
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "profile": dict(self.profile),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment=data["experiment"],
            params=dict(data.get("params", {})),
            profile=dict(data.get("profile", {})),
        )


_CODE_VERSION: str | None = None


def _fingerprint_source_tree(root: Path) -> str:
    """One full walk of ``root``: hash every ``*.py`` path and contents.

    This is the expensive part of :func:`code_version` (it reads every
    source file under ``src/repro``), kept as a separate hook so tests
    can pin that it runs at most once per process no matter how many
    stores are opened.
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def code_version() -> str:
    """Fingerprint of the ``src/repro`` source tree (cached per process).

    Hashes every ``*.py`` file's path and contents in sorted order, so
    any source edit -- attack, simulator, or the runner itself -- yields
    a new version and orphans previously cached results.  The walk runs
    once per process and the digest is shared by every store opened
    afterwards (opening N stores must not re-hash the tree N times).
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        _CODE_VERSION = _fingerprint_source_tree(Path(__file__).resolve().parents[1])
    return _CODE_VERSION
