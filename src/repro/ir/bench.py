"""Pure-vs-array benchmark harness behind ``dynunlock ir-bench``.

Measures the kernels the array IR accelerates -- packed-lane simulator
construction + a multi-pattern batch, Tseitin template compilation, and
a level-1 optimizer pass -- on the quick Table II locked models, once
with :mod:`repro.ir` forced off (the pure dict/gate-object walks) and
once forced on.  Both arms run the *same public entry points*; only the
:func:`repro.ir.set_enabled` toggle differs, which is exactly the
contract the IR claims: same results, less time.

Two correctness gates ride along with the timing:

* **kernel identity** -- per benchmark, the simulator outputs, compiled
  encoding (clauses, variable numbering, ``net_local`` order) and
  optimizer gate counts must be equal across arms;
* **attack identity** -- per benchmark and requested opt level, a full
  :func:`~repro.core.dynunlock.dynunlock` run must produce the same
  success flag, recovered seed, iteration count and candidate count in
  both arms.

The CLI turns the aggregate into a ``BENCH_ir.json`` artifact and fails
when the array arm is not at least ``--min-speedup`` faster or either
identity gate trips; CI additionally diffs ``array_total_s`` against
``benchmarks/baselines/ir_quick.json`` via
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro import ir
from repro.util.rng import hash_label


@dataclass
class IrBenchRow:
    """Per-benchmark measurement: one pure arm vs one array arm."""

    benchmark: str
    model_gates: int
    pure_s: float
    array_s: float
    kernel_match: bool
    identity_ok: bool
    identity_detail: list[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.pure_s / self.array_s if self.array_s > 0 else float("inf")


@dataclass
class IrBenchReport:
    """Aggregate over all benchmarks; the CLI's artifact source."""

    rows: list[IrBenchRow]
    n_patterns: int
    repeats: int
    opt_levels: tuple[int, ...]

    @property
    def pure_total_s(self) -> float:
        return sum(r.pure_s for r in self.rows)

    @property
    def array_total_s(self) -> float:
        return sum(r.array_s for r in self.rows)

    @property
    def speedup(self) -> float:
        total = self.array_total_s
        return self.pure_total_s / total if total > 0 else float("inf")

    @property
    def mismatches(self) -> list[str]:
        out: list[str] = []
        for row in self.rows:
            if not row.kernel_match:
                out.append(f"{row.benchmark}: kernel results differ between arms")
            out.extend(row.identity_detail)
        return out


def _patterns_for(netlist, n_patterns: int, label: str):
    """Deterministic random input batch for one model netlist."""
    rng = random.Random(hash_label(0, f"ir-bench/{label}"))
    nets = list(netlist.inputs)
    return [
        {net: rng.getrandbits(1) for net in nets} for _ in range(n_patterns)
    ]


def _kernel_once(netlist, lock, kb, patterns):
    """One timed kernel pass; returns (seconds, comparable fingerprint).

    Builds a fresh combinational model first (untimed -- model
    construction is identical in both arms) so no cache carried over
    from the other arm can flatter the timing, then times the three
    IR-accelerated kernels end to end.
    """
    from repro.core.modeling import build_combinational_model
    from repro.opt import optimize
    from repro.sat.tseitin import compile_encoding
    from repro.sim.logicsim import BitParallelSimulator

    model = build_combinational_model(netlist, lock.spec, lock.lfsr_taps, kb)
    mn = model.netlist
    t0 = time.perf_counter()
    sim = BitParallelSimulator(mn)
    outputs = sim.run_patterns(patterns)
    enc = compile_encoding(mn)
    stats = optimize(mn, level=1).stats
    elapsed = time.perf_counter() - t0
    fingerprint = (
        outputs,
        enc.n_locals,
        enc.clauses,
        list(enc.net_local.items()),
        stats.gates_after,
    )
    return elapsed, fingerprint


def _attack_signature(profile, netlist, lock, opt_level: int):
    """Outcome tuple a full attack must reproduce identically per arm."""
    from repro.core.dynunlock import DynUnlockConfig, dynunlock

    result = dynunlock(
        netlist,
        lock.public_view(),
        lock.make_oracle(),
        DynUnlockConfig(
            timeout_s=profile.timeout_s,
            candidate_limit=profile.candidate_limit,
            opt_level=opt_level,
        ),
    )
    seed = tuple(result.recovered_seed) if result.recovered_seed else None
    return (result.success, seed, result.iterations, result.n_seed_candidates)


def run_ir_bench(
    profile,
    benchmarks: list[str] | None = None,
    *,
    n_patterns: int = 1024,
    repeats: int = 3,
    opt_levels: tuple[int, ...] = (0, 1, 2),
    log: Callable[[str], None] | None = None,
) -> IrBenchReport:
    """Measure pure vs array kernels (and attack identity) per benchmark.

    Per-arm kernel time is the **minimum** over ``repeats`` fresh-model
    passes -- the standard microbenchmark reduction, since every source
    of noise on a shared box only ever adds time.  ``opt_levels`` may be
    empty to skip the (much slower) full-attack identity gate.
    """
    from repro.reports.cells import build_table2_lock
    from repro.reports.experiments import TABLE2_BENCHMARKS

    say = log or (lambda _msg: None)
    names = benchmarks or list(TABLE2_BENCHMARKS)
    rows: list[IrBenchRow] = []
    prior = ir.core._FORCED
    try:
        for bench in names:
            netlist, lock, kb = build_table2_lock(profile, bench)
            patterns = _patterns_for_model(netlist, lock, kb, n_patterns, bench)
            times = {False: float("inf"), True: float("inf")}
            prints = {}
            for arm in (False, True):
                ir.set_enabled(arm)
                for _ in range(repeats):
                    elapsed, fingerprint = _kernel_once(
                        netlist, lock, kb, patterns
                    )
                    times[arm] = min(times[arm], elapsed)
                prints[arm] = fingerprint
            kernel_match = prints[False] == prints[True]
            model_gates = prints[True][4] if kernel_match else prints[False][4]

            identity_detail: list[str] = []
            for level in opt_levels:
                ir.set_enabled(False)
                pure_sig = _attack_signature(profile, netlist, lock, level)
                ir.set_enabled(True)
                array_sig = _attack_signature(profile, netlist, lock, level)
                if pure_sig != array_sig:
                    identity_detail.append(
                        f"{bench}/opt{level}: pure {pure_sig} != array {array_sig}"
                    )
            row = IrBenchRow(
                benchmark=bench,
                model_gates=model_gates,
                pure_s=times[False],
                array_s=times[True],
                kernel_match=kernel_match,
                identity_ok=not identity_detail,
                identity_detail=identity_detail,
            )
            rows.append(row)
            say(
                f"{bench}: pure {row.pure_s * 1e3:.1f}ms, "
                f"array {row.array_s * 1e3:.1f}ms ({row.speedup:.2f}x), "
                f"identical={row.kernel_match and row.identity_ok}"
            )
    finally:
        ir.set_enabled(prior)
    return IrBenchReport(
        rows=rows,
        n_patterns=n_patterns,
        repeats=repeats,
        opt_levels=tuple(opt_levels),
    )


def _patterns_for_model(netlist, lock, kb, n_patterns: int, label: str):
    """Patterns over the *model* netlist's inputs (shared by both arms)."""
    from repro.core.modeling import build_combinational_model

    model = build_combinational_model(netlist, lock.spec, lock.lfsr_taps, kb)
    return _patterns_for(model.netlist, n_patterns, label)


__all__ = ["IrBenchReport", "IrBenchRow", "run_ir_bench"]
