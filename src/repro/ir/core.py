"""The flat integer-array netlist IR.

:class:`ArrayNetlist` is a lossless, order-stable array view of a
:class:`~repro.netlist.netlist.Netlist`: every net gets a dense integer
id, gates become parallel ``gate_type``/``gate_out`` arrays with their
operands packed into one flat ``fanin`` array behind a ``fanin_offset``
table (fixed-arity and variadic gates share the layout), and the
interface -- primary inputs/outputs, DFF D/Q pins -- is a set of integer
index tables.  Conversion never re-orders anything: net ids are assigned
in a canonical first-seen order (inputs, flop Q nets, gate outputs in
insertion order, then remaining referenced nets), and
:func:`to_netlist` rebuilds a netlist whose insertion orders, names and
operand tuples are identical to the source -- the round-trip property
the hypothesis suite pins.

Everything the hot paths used to do by walking ``dict``-of-``Gate``
structures is an integer-array walk here:

* :meth:`ArrayNetlist.topological_order` -- Kahn's algorithm over int
  arrays, producing *exactly* the order the pure-Python walk produces
  (the rewrite passes' CSE naming depends on it);
* :meth:`ArrayNetlist.fanout` -- CSR-packed net -> reader-gate indices;
* :meth:`ArrayNetlist.read_counts` / :meth:`ArrayNetlist.cone_keep` --
  the array substrates under ``opt.structhash`` and ``opt.sweep``.

:func:`ir_for` caches one ``ArrayNetlist`` per netlist object, keyed on
the netlist's mutation :attr:`~repro.netlist.netlist.Netlist.version`,
so the conversion cost is paid once per settled netlist and shared by
the simulator, the Tseitin compiler and the optimizer passes.

The module is stdlib-only; numpy acceleration lives in
:mod:`repro.ir.lanes` behind an optional import.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.netlist.gates import GateType
from repro.netlist.netlist import Dff, Gate, Netlist, NetlistError

#: Stable GateType <-> small-int code tables (definition order).
GT_LIST: tuple[GateType, ...] = tuple(GateType)
GT_CODE: dict[GateType, int] = {gt: i for i, gt in enumerate(GT_LIST)}

_FORCED: bool | None = None


def enabled() -> bool:
    """Is the array IR the active engine for the hot paths?

    Defaults to on; ``REPRO_IR=0`` (or ``off``/``false``/``no``) selects
    the pure dict-walking implementations -- the comparison arm
    ``dynunlock ir-bench`` measures against.  :func:`set_enabled`
    overrides the environment for in-process benchmarking.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_IR", "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def set_enabled(value: bool | None) -> None:
    """Force the IR on/off in-process (``None`` = defer to ``$REPRO_IR``)."""
    global _FORCED
    _FORCED = value


@dataclass
class ArrayNetlist:
    """Flat array view of one netlist (see the module docstring).

    All arrays are ``array('i')`` except ``gate_type`` (``array('b')``).
    ``gates`` keeps the source :class:`Gate` objects aligned with the
    gate arrays so array-ordered walks can hand the original objects to
    code that still consumes them (the structural-hash rewriter).
    """

    name: str
    names: list[str]  # net id -> name
    index: dict[str, int]  # name -> net id
    pi: array  # primary-input net ids, in order
    po: array  # primary-output net ids, in order
    dff_q: array  # flop Q net ids, canonical flop order
    dff_d: array  # flop D net ids, aligned with dff_q
    gate_type: array  # per gate: GT_CODE of its GateType
    gate_out: array  # per gate: output net id
    fanin_offset: array  # len n_gates+1; gate g reads fanin[off[g]:off[g+1]]
    fanin: array  # flat operand net ids
    gates: tuple  # aligned source Gate objects
    source_version: int = 0
    _topo: array | None = field(default=None, repr=False)
    _fanout_offset: array | None = field(default=None, repr=False)
    _fanout: array | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def n_nets(self) -> int:
        return len(self.names)

    @property
    def n_gates(self) -> int:
        return len(self.gate_out)

    # ------------------------------------------------------------------
    # topological order
    # ------------------------------------------------------------------
    def topological_order(self) -> array:
        """Gate indices in dependency order (cached).

        Mirrors the pure ``Netlist.topological_gates`` walk instruction
        for instruction -- same ready/consumer discipline, hence the
        same emitted order -- so the two engines are interchangeable
        without perturbing any downstream naming or encoding.
        """
        if self._topo is not None:
            return self._topo
        n_gates = self.n_gates
        gate_out = self.gate_out.tolist()
        driver = [-1] * self.n_nets  # net id -> driving gate index
        for gi, out in enumerate(gate_out):
            driver[out] = gi
        resolved = bytearray(self.n_nets)
        for nid in self.pi:
            resolved[nid] = 1
        for nid in self.dff_q:
            resolved[nid] = 1

        # Walk plain lists: array('i') getitem boxes on every read, which
        # dominates these tight loops.
        fanin = self.fanin.tolist()
        offsets = self.fanin_offset.tolist()
        pending = [0] * n_gates
        consumers: list[list[int]] = [[] for _ in range(n_gates)]
        ready: list[int] = []
        for gi in range(n_gates):
            unresolved = 0
            for k in range(offsets[gi], offsets[gi + 1]):
                nid = fanin[k]
                producer = driver[nid]
                if producer >= 0 and not resolved[nid]:
                    unresolved += 1
                    consumers[producer].append(gi)
            if unresolved == 0:
                ready.append(gi)
            else:
                pending[gi] = unresolved

        order: list[int] = []
        cursor = 0
        while cursor < len(ready):
            gi = ready[cursor]
            cursor += 1
            order.append(gi)
            for consumer in consumers[gi]:
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)

        if len(order) != n_gates:
            emitted = bytearray(n_gates)
            for gi in order:
                emitted[gi] = 1
            stuck = sorted(
                self.names[gate_out[gi]]
                for gi in range(n_gates)
                if not emitted[gi]
            )
            raise NetlistError(
                f"combinational cycle involving nets {stuck[:10]}"
                + ("..." if len(stuck) > 10 else "")
            )
        self._topo = array("i", order)
        return self._topo

    def topological_gate_objects(self) -> list[Gate]:
        """The source Gate objects in :meth:`topological_order`."""
        gates = self.gates
        return [gates[gi] for gi in self.topological_order()]

    # ------------------------------------------------------------------
    # fanout / read counts / cone of influence
    # ------------------------------------------------------------------
    def fanout(self) -> tuple[array, array]:
        """CSR map net id -> indices of gates reading it (cached).

        ``(offsets, readers)``: net ``n`` is read by gate indices
        ``readers[offsets[n]:offsets[n+1]]``, ascending (gate insertion
        order), with multiplicity for repeated operands -- the same
        multiset ``Netlist.fanout_map`` builds as dict-of-lists.
        """
        if self._fanout_offset is not None:
            assert self._fanout is not None
            return self._fanout_offset, self._fanout
        fanin = self.fanin.tolist()
        counts = [0] * (self.n_nets + 1)
        for nid in fanin:
            counts[nid + 1] += 1
        offsets = counts
        for i in range(1, len(offsets)):
            offsets[i] += offsets[i - 1]
        readers = [0] * len(fanin)
        cursor = offsets[:-1]
        gate_offsets = self.fanin_offset.tolist()
        for gi in range(self.n_gates):
            for k in range(gate_offsets[gi], gate_offsets[gi + 1]):
                nid = fanin[k]
                readers[cursor[nid]] = gi
                cursor[nid] += 1
        # cursor aliased offsets[:-1] as a copy, so offsets is intact here
        self._fanout_offset = array("i", offsets)
        self._fanout = array("i", readers)
        return self._fanout_offset, self._fanout

    def read_counts(self) -> dict[str, int]:
        """Sink count per net name: gate reads + DFF D pins + outputs.

        Array equivalent of ``opt.structhash._read_counts`` -- nets with
        zero sinks are omitted, multiplicities match.
        """
        counts = [0] * self.n_nets
        for nid in self.fanin.tolist():
            counts[nid] += 1
        for nid in self.dff_d:
            counts[nid] += 1
        for nid in self.po:
            counts[nid] += 1
        names = self.names
        return {names[nid]: c for nid, c in enumerate(counts) if c}

    def cone_keep(self, pinned: frozenset[str] = frozenset()) -> set[str]:
        """Gate-output net names reachable backwards from the roots.

        Roots are primary outputs, DFF D pins, and ``pinned`` names
        (unknown pinned names are ignored, like the dict walk).  Array
        equivalent of ``opt.sweep.cone_of_influence``.
        """
        gate_out = self.gate_out.tolist()
        driver = [-1] * self.n_nets
        for gi, out in enumerate(gate_out):
            driver[out] = gi
        keep = bytearray(self.n_gates)
        stack: list[int] = []
        for nid in self.po:
            if driver[nid] >= 0:
                stack.append(driver[nid])
        for nid in self.dff_d:
            if driver[nid] >= 0:
                stack.append(driver[nid])
        for name in pinned:
            nid = self.index.get(name)
            if nid is not None and driver[nid] >= 0:
                stack.append(driver[nid])
        fanin = self.fanin.tolist()
        offsets = self.fanin_offset.tolist()
        while stack:
            gi = stack.pop()
            if keep[gi]:
                continue
            keep[gi] = 1
            for k in range(offsets[gi], offsets[gi + 1]):
                producer = driver[fanin[k]]
                if producer >= 0 and not keep[producer]:
                    stack.append(producer)
        names = self.names
        return {names[gate_out[gi]] for gi in range(self.n_gates) if keep[gi]}


# ----------------------------------------------------------------------
# conversion
# ----------------------------------------------------------------------
def from_netlist(netlist: Netlist) -> ArrayNetlist:
    """Convert a :class:`Netlist` into its flat array view (one pass)."""
    names: list[str] = []
    index: dict[str, int] = {}

    def nid(name: str) -> int:
        existing = index.get(name)
        if existing is not None:
            return existing
        new = len(names)
        index[name] = new
        names.append(name)
        return new

    pi = array("i", (nid(n) for n in netlist.inputs))
    dff_q = array("i", (nid(q) for q in netlist.dffs))
    gate_list = tuple(netlist.gates.values())
    gate_out = array("i", (nid(g.output) for g in gate_list))
    gate_type = array("b", (GT_CODE[g.gtype] for g in gate_list))
    # The operand walk is the conversion hot loop; inline the id lookup.
    fanin_ids: list[int] = []
    append = fanin_ids.append
    index_get = index.get
    fanin_offset = array("i", [0])
    offset_append = fanin_offset.append
    for gate in gate_list:
        for operand in gate.inputs:
            i = index_get(operand)
            if i is None:
                i = len(names)
                index[operand] = i
                names.append(operand)
            append(i)
        offset_append(len(fanin_ids))
    fanin = array("i", fanin_ids)
    dff_d = array("i", (nid(netlist.dffs[q].d) for q in netlist.dffs))
    po = array("i", (nid(n) for n in netlist.outputs))
    return ArrayNetlist(
        name=netlist.name,
        names=names,
        index=index,
        pi=pi,
        po=po,
        dff_q=dff_q,
        dff_d=dff_d,
        gate_type=gate_type,
        gate_out=gate_out,
        fanin_offset=fanin_offset,
        fanin=fanin,
        gates=gate_list,
        source_version=netlist.version,
    )


def to_netlist(ir: ArrayNetlist) -> Netlist:
    """Rebuild a :class:`Netlist` from the array view.

    Insertion orders (inputs, flops, gates, outputs), net names and
    operand tuples all round-trip exactly; ``from_netlist`` then
    ``to_netlist`` is the identity up to object identity.
    """
    names = ir.names
    netlist = Netlist(name=ir.name)
    for nid in ir.pi:
        netlist.add_input(names[nid])
    for q, d in zip(ir.dff_q, ir.dff_d):
        netlist.add_dff(q=names[q], d=names[d])
    offsets, fanin = ir.fanin_offset, ir.fanin
    for gi in range(ir.n_gates):
        netlist.add_gate(
            names[ir.gate_out[gi]],
            GT_LIST[ir.gate_type[gi]],
            [names[fanin[k]] for k in range(offsets[gi], offsets[gi + 1])],
        )
    for nid in ir.po:
        netlist.add_output(names[nid])
    return netlist


# ----------------------------------------------------------------------
# per-netlist cache
# ----------------------------------------------------------------------
_IR_CACHE: "WeakKeyDictionary[Netlist, ArrayNetlist]" = WeakKeyDictionary()


def ir_for(netlist: Netlist) -> ArrayNetlist:
    """Cached :func:`from_netlist`.

    Keyed on the netlist object *and* its mutation counter: any mutator
    call (including interface-only ones like ``add_output``) bumps
    ``netlist.version`` and invalidates the cached view, so a stale IR
    can never be served after in-place edits -- the failure mode the
    PR-5-era topo/fanout caches had on non-``add_gate`` mutations.
    """
    cached = _IR_CACHE.get(netlist)
    if cached is not None and cached.source_version == netlist.version:
        return cached
    built = from_netlist(netlist)
    _IR_CACHE[netlist] = built
    return built


__all__ = [
    "ArrayNetlist",
    "Dff",
    "GT_CODE",
    "GT_LIST",
    "enabled",
    "from_netlist",
    "ir_for",
    "set_enabled",
    "to_netlist",
]
