"""numpy-vectorized packed-lane evaluation over the array IR.

The scalar packed engine in :mod:`repro.sim.logicsim` evaluates one
Python bitwise instruction per gate per 64-lane word.  This module
compiles the same instruction list into a *leveled word program*:

* every variadic gate is decomposed into a chain of binary micro-ops
  (aux slots live past the named slots, invisible to callers);
* each micro-op gets a level = 1 + max(level of its operands), so all
  micro-ops at one level are mutually independent;
* micro-ops are grouped by ``(level, opcode)`` into index arrays.

Evaluation walks levels in order and executes each group as one fancy-
indexed numpy expression over a ``(n_slots, n_words)`` ``uint64`` state
matrix -- ``n_words`` packed 64-lane words per net evaluated per Python
bytecode, instead of one.  The per-word lane masks are broadcast down
the rows, so partial final words mask exactly like the scalar engine
and results are bit-identical ints either way.

numpy is optional: :data:`HAVE_NUMPY` is False when it is absent and
:func:`word_engine_for` returns ``None``, leaving the scalar engine as
the only (and still correct) path.
"""

from __future__ import annotations

from typing import Sequence

try:  # optional dependency: the scalar engine needs nothing beyond stdlib
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.netlist.gates import GateType

HAVE_NUMPY = np is not None

# Binary/unary micro-opcodes of the leveled word program.
_AND2, _NAND2, _OR2, _NOR2, _XOR2, _XNOR2, _NOT1, _BUF1, _MUX3, _C0, _C1 = range(11)

_FOLD_OP = {
    GateType.AND: _AND2,
    GateType.NAND: _AND2,
    GateType.OR: _OR2,
    GateType.NOR: _OR2,
    GateType.XOR: _XOR2,
    GateType.XNOR: _XOR2,
}
_FINAL_OP = {
    GateType.AND: _AND2,
    GateType.NAND: _NAND2,
    GateType.OR: _OR2,
    GateType.NOR: _NOR2,
    GateType.XOR: _XOR2,
    GateType.XNOR: _XNOR2,
}

#: Minimum ``run_patterns`` batch size routed through the word engine.
#: Below this, straight-line scalar evaluation wins: per-op numpy
#: dispatch plus matrix set-up costs more than it saves on one narrow
#: word (measured on the quick Table II locked models).
MIN_ENGINE_PATTERNS = 16


class WordEngine:
    """Compiled leveled word program for one packed-lane instruction list.

    Built from the ``(GateType, out_slot, in_slots)`` program of a
    :class:`~repro.sim.logicsim.BitParallelSimulator`; slots
    ``0..n_free-1`` are the free nets (primary inputs + flop Qs), the
    remaining named slots are gate outputs in topological order, and aux
    slots for decomposed variadic chains follow past ``n_named``.
    """

    def __init__(
        self,
        n_free: int,
        n_named: int,
        n_slots: int,
        groups: list[tuple],
        avg_level_width: float,
    ):
        self.n_free = n_free
        self.n_named = n_named
        self.n_slots = n_slots
        self._groups = groups
        self.avg_level_width = avg_level_width

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        program: Sequence[tuple[GateType, int, tuple[int, ...]]],
        n_free: int,
        n_named: int,
    ) -> "WordEngine":
        assert np is not None
        level = [0] * n_named  # slot -> write level (free slots: 0)
        # micro-ops per opcode+level: opcode -> level -> [out, a, b(, c)]
        ops: list[tuple[int, int, int, int, int]] = []
        n_slots = n_named

        def emit(opcode: int, out: int, a: int = -1, b: int = -1, c: int = -1) -> int:
            operands = [x for x in (a, b, c) if x >= 0]
            lvl = 1 + max((level[x] for x in operands), default=0)
            if out >= len(level):
                level.extend([0] * (out + 1 - len(level)))
            level[out] = lvl
            ops.append((opcode, out, a, b, c))
            return out

        def aux() -> int:
            nonlocal n_slots
            slot = n_slots
            n_slots += 1
            return slot

        for gtype, out, ins in program:
            if gtype in _FOLD_OP:
                if len(ins) == 2:
                    emit(_FINAL_OP[gtype], out, ins[0], ins[1])
                else:
                    fold = _FOLD_OP[gtype]
                    acc = emit(fold, aux(), ins[0], ins[1])
                    for operand in ins[2:-1]:
                        acc = emit(fold, aux(), acc, operand)
                    emit(_FINAL_OP[gtype], out, acc, ins[-1])
            elif gtype is GateType.NOT:
                emit(_NOT1, out, ins[0])
            elif gtype is GateType.BUF:
                emit(_BUF1, out, ins[0])
            elif gtype is GateType.MUX:
                emit(_MUX3, out, ins[0], ins[1], ins[2])
            elif gtype is GateType.CONST0:
                emit(_C0, out)
            else:  # CONST1
                emit(_C1, out)

        buckets: dict[tuple[int, int], list[tuple[int, int, int, int]]] = {}
        for opcode, out, a, b, c in ops:
            buckets.setdefault((level[out], opcode), []).append((out, a, b, c))
        groups = []
        for (lvl, opcode), rows in sorted(buckets.items()):
            out_idx = np.array([r[0] for r in rows], dtype=np.intp)
            a_idx = np.array([r[1] for r in rows], dtype=np.intp)
            b_idx = np.array([r[2] for r in rows], dtype=np.intp)
            c_idx = np.array([r[3] for r in rows], dtype=np.intp)
            groups.append((lvl, opcode, out_idx, a_idx, b_idx, c_idx))
        n_levels = len({lvl for lvl, _ in buckets}) or 1
        avg_width = len(ops) / n_levels
        return cls(n_free, n_named, n_slots, groups, avg_width)

    # ------------------------------------------------------------------
    def eval_words(
        self, input_rows: "np.ndarray", masks: "np.ndarray"
    ) -> "np.ndarray":
        """Run the word program.

        ``input_rows``: ``(n_free, n_words)`` uint64, already lane-masked.
        ``masks``: ``(n_words,)`` uint64 lane masks (all-ones except a
        partial final word).  Returns the full ``(n_slots, n_words)``
        state; callers slice the named rows they need.
        """
        assert np is not None
        n_words = input_rows.shape[1]
        state = np.zeros((self.n_slots, n_words), dtype=np.uint64)
        state[: self.n_free] = input_rows
        for _lvl, opcode, out_idx, a_idx, b_idx, c_idx in self._groups:
            if opcode == _AND2:
                state[out_idx] = state[a_idx] & state[b_idx]
            elif opcode == _NAND2:
                state[out_idx] = (state[a_idx] & state[b_idx]) ^ masks
            elif opcode == _OR2:
                state[out_idx] = state[a_idx] | state[b_idx]
            elif opcode == _NOR2:
                state[out_idx] = (state[a_idx] | state[b_idx]) ^ masks
            elif opcode == _XOR2:
                state[out_idx] = state[a_idx] ^ state[b_idx]
            elif opcode == _XNOR2:
                state[out_idx] = (state[a_idx] ^ state[b_idx]) ^ masks
            elif opcode == _NOT1:
                state[out_idx] = state[a_idx] ^ masks
            elif opcode == _BUF1:
                state[out_idx] = state[a_idx]
            elif opcode == _MUX3:
                sel = state[a_idx]
                state[out_idx] = (state[b_idx] & ~sel) | (state[c_idx] & sel)
            elif opcode == _C0:
                state[out_idx] = 0
            else:  # _C1
                state[out_idx] = masks
        return state


def word_engine_for(
    program: Sequence[tuple[GateType, int, tuple[int, ...]]],
    n_free: int,
    n_named: int,
) -> WordEngine | None:
    """Compile a :class:`WordEngine`, or ``None`` when numpy is absent."""
    if np is None:
        return None
    return WordEngine.compile(program, n_free, n_named)


__all__ = [
    "HAVE_NUMPY",
    "MIN_ENGINE_PATTERNS",
    "WordEngine",
    "word_engine_for",
]
