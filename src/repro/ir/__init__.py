"""repro.ir -- flat integer-array netlist IR and vectorized lane engine.

Layering: sits directly above :mod:`repro.netlist` (it imports Gate /
GateType / Netlist) and below everything else; consumers (`sim`, `sat`,
`opt`) reach it through :func:`ir_for` and check :func:`enabled` to pick
between the array engines and the original pure-Python walks.  numpy is
optional throughout -- :data:`HAVE_NUMPY` reports whether the vectorized
word engine is available.
"""

from repro.ir.core import (
    GT_CODE,
    GT_LIST,
    ArrayNetlist,
    enabled,
    from_netlist,
    ir_for,
    set_enabled,
    to_netlist,
)
from repro.ir.lanes import HAVE_NUMPY, WordEngine, word_engine_for

__all__ = [
    "ArrayNetlist",
    "GT_CODE",
    "GT_LIST",
    "HAVE_NUMPY",
    "WordEngine",
    "enabled",
    "from_netlist",
    "ir_for",
    "set_enabled",
    "to_netlist",
    "word_engine_for",
]
