"""Command-line interface.

Subcommands mirror the library's main entry points::

    dynunlock info s5378                  # benchmark stats at a scale
    dynunlock selftest                    # end-to-end attack on s27
    dynunlock attack s13207 --key-bits 8  # DynUnlock one circuit
    dynunlock table1|table2|table3        # regenerate the paper tables
    dynunlock scaling                     # Section IV scalability study
    dynunlock ablation                    # Section V nonlinear-PRNG study

All table commands accept ``--profile quick|full|paper`` (or the
``REPRO_PROFILE`` environment variable).
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.bench_suite.registry import (
    PAPER_BENCHMARKS,
    build_benchmark_netlist,
    get_benchmark,
)
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.effdyn import lock_with_effdyn
from repro.reports.experiments import (
    ABLATION_HEADERS,
    SCALING_HEADERS,
    TABLE1_HEADERS,
    TABLE2_HEADERS,
    TABLE3_HEADERS,
    run_flop_scaling,
    run_nonlinear_ablation,
    run_table1,
    run_table2,
    run_table3,
)
from repro.reports.profiles import PROFILES, active_profile
from repro.reports.tables import render_table


def _progress(message: str) -> None:
    print(f"  [.] {message}", file=sys.stderr)


def _profile_from_args(args: argparse.Namespace):
    if getattr(args, "profile", None):
        return PROFILES[args.profile]
    return active_profile()


def cmd_info(args: argparse.Namespace) -> int:
    """``dynunlock info``: print a benchmark's structural statistics."""
    spec = get_benchmark(args.benchmark)
    netlist = build_benchmark_netlist(args.benchmark, scale=args.scale)
    print(f"benchmark    : {spec.name} ({spec.suite})")
    print(f"paper flops  : {spec.n_scan_flops}")
    print(f"scale        : 1/{args.scale}")
    for key, value in netlist.stats().items():
        print(f"{key:13}: {value}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``dynunlock list``: enumerate the registry benchmarks."""
    for name, spec in PAPER_BENCHMARKS.items():
        print(f"{name:10} {spec.suite:8} {spec.n_scan_flops:6} scan flops")
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """``dynunlock selftest``: end-to-end DynUnlock on the genuine s27."""
    from repro.bench_suite.iscas import s27_netlist

    netlist = s27_netlist()
    lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(7))
    result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
    exact = result.recovered_seed == list(lock.seed)
    print(
        f"s27 self-test: success={result.success} exact_seed={exact} "
        f"iterations={result.iterations} time={result.runtime_s:.2f}s"
    )
    return 0 if (result.success and exact) else 1


def cmd_attack(args: argparse.Namespace) -> int:
    """``dynunlock attack``: lock one benchmark with EFF-Dyn and break it."""
    profile = _profile_from_args(args)
    netlist = build_benchmark_netlist(args.benchmark, scale=args.scale or profile.scale)
    key_bits = profile.effective_key_bits(netlist.n_dffs, args.key_bits)
    rng = random.Random(args.lock_seed)
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
    print(
        f"locked {args.benchmark}: {netlist.n_dffs} scan flops, "
        f"{key_bits}-bit dynamic key",
        file=sys.stderr,
    )
    result = dynunlock(
        netlist,
        lock.public_view(),
        lock.make_oracle(),
        DynUnlockConfig(timeout_s=args.timeout or profile.timeout_s),
    )
    exact = result.recovered_seed == list(lock.seed)
    print(f"success          : {result.success}")
    print(f"exact seed       : {exact}")
    print(f"seed candidates  : {result.n_seed_candidates}")
    print(f"iterations       : {result.iterations}")
    print(f"oracle queries   : {result.oracle_queries}")
    print(f"captures used    : {result.n_captures_used}")
    print(f"execution time   : {result.runtime_s:.2f}s")
    return 0 if result.success else 1


def cmd_export(args: argparse.Namespace) -> int:
    """Export a registry benchmark (optionally EFF-Dyn locked) to disk."""
    from pathlib import Path

    from repro.netlist.bench_io import write_bench
    from repro.netlist.verilog_io import write_verilog
    from repro.scan.structural import build_scan_netlist

    netlist = build_benchmark_netlist(args.benchmark, scale=args.scale)
    if args.lock:
        rng = random.Random(args.lock_seed)
        key_bits = min(args.key_bits or 8, netlist.n_dffs - 1)
        lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
        netlist, pins = build_scan_netlist(netlist, lock.spec)
        print(
            f"locked with {key_bits} key gates at positions "
            f"{lock.spec.keygate_positions}",
            file=sys.stderr,
        )
    text = (
        write_verilog(netlist) if args.format == "verilog" else write_bench(netlist)
    )
    out = Path(args.output) if args.output else None
    if out is None:
        print(text, end="")
    else:
        out.write_text(text)
        print(f"wrote {out}", file=sys.stderr)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """``dynunlock table1``: regenerate the defense-evolution table."""
    profile = _profile_from_args(args)
    rows = run_table1(profile, progress=_progress)
    print(render_table(TABLE1_HEADERS, [r.as_cells() for r in rows],
                       title=f"Table I (profile={profile.name})"))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    """``dynunlock table2``: regenerate the paper's main results table."""
    profile = _profile_from_args(args)
    rows = run_table2(profile, benchmarks=args.benchmarks or None, progress=_progress)
    print(render_table(TABLE2_HEADERS, [r.as_cells() for r in rows],
                       title=f"Table II (profile={profile.name})"))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    """``dynunlock table3``: regenerate the key-size scaling table."""
    profile = _profile_from_args(args)
    rows = run_table3(profile, benchmarks=args.benchmarks or None, progress=_progress)
    print(render_table(TABLE3_HEADERS, [r.as_cells() for r in rows],
                       title=f"Table III (profile={profile.name})"))
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    """``dynunlock scaling``: regenerate the Section IV flop-count study."""
    profile = _profile_from_args(args)
    rows = run_flop_scaling(profile, progress=_progress)
    print(render_table(SCALING_HEADERS, [r.as_cells() for r in rows],
                       title=f"Flop scaling (profile={profile.name})"))
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    """``dynunlock ablation``: regenerate the Section V nonlinear-PRNG study."""
    profile = _profile_from_args(args)
    rows = run_nonlinear_ablation(profile, progress=_progress)
    print(render_table(ABLATION_HEADERS, [r.as_cells() for r in rows],
                       title=f"PRNG ablation (profile={profile.name})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree for the ``dynunlock`` CLI."""
    parser = argparse.ArgumentParser(
        prog="dynunlock",
        description="DynUnlock (DATE 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_profile(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", choices=sorted(PROFILES), default=None,
            help="experiment size profile (default: $REPRO_PROFILE or quick)",
        )

    p = sub.add_parser("info", help="show benchmark statistics")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=int, default=16)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("list", help="list registry benchmarks")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("selftest", help="end-to-end attack on s27")
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser("export", help="export a benchmark as .bench/.v")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--format", choices=["bench", "verilog"], default="bench")
    p.add_argument("--lock", action="store_true",
                   help="insert an EFF-Dyn locked scan chain first")
    p.add_argument("--key-bits", type=int, default=None)
    p.add_argument("--lock-seed", type=int, default=0)
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("attack", help="run DynUnlock on one benchmark")
    p.add_argument("benchmark")
    p.add_argument("--key-bits", type=int, default=None)
    p.add_argument("--scale", type=int, default=None)
    p.add_argument("--lock-seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=None)
    add_profile(p)
    p.set_defaults(func=cmd_attack)

    for name, func, has_benchmarks in [
        ("table1", cmd_table1, False),
        ("table2", cmd_table2, True),
        ("table3", cmd_table3, True),
        ("scaling", cmd_scaling, False),
        ("ablation", cmd_ablation, False),
    ]:
        p = sub.add_parser(name, help=f"regenerate {name}")
        if has_benchmarks:
            p.add_argument("benchmarks", nargs="*", default=[])
        add_profile(p)
        p.set_defaults(func=func)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
