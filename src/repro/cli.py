"""Command-line interface.

Subcommands mirror the library's main entry points::

    dynunlock info s5378                  # benchmark stats at a scale
    dynunlock selftest                    # end-to-end attack on s27
    dynunlock attack s13207 --key-bits 8  # DynUnlock one circuit
    dynunlock table1|table2|table3        # regenerate the paper tables
    dynunlock scaling                     # Section IV scalability study
    dynunlock ablation                    # Section V nonlinear-PRNG study
    dynunlock matrix                      # attack x defense resilience grid
    dynunlock opt s5378                   # netlist-optimization statistics
    dynunlock opt-bench --emit-json out   # opt vs raw attack-pipeline bench
    dynunlock ir-bench --emit-json out    # pure vs array-IR kernel bench
    dynunlock run table2 scaling --jobs 4 # several grids through the runner
    dynunlock cache stats|gc|prune|migrate  # manage the result store
    dynunlock store-bench --emit-json out # head-to-head backend benchmark
    dynunlock top results/metrics         # live view over a run's metrics

``dynunlock matrix`` executes every applicable (attack, defense) pair
from the plugin registry over the smallest registry benchmarks, prints
the resilience grid (verdicts ``broken``/``resilient``/``partial``/
``n/a``), and exits non-zero when a measured verdict disagrees with the
paper's Table I expectations (``--no-check-paper`` to disable).
``--attacks/--defenses/--benchmarks`` filter the grid.

Attacks preprocess their locked netlists through the :mod:`repro.opt`
optimizer by default; ``--no-opt`` (or ``--opt-level 0``) on any attack
or grid command is the escape hatch, ``--opt-level 2`` adds SAT
sweeping, and ``REPRO_OPT_LEVEL`` changes the process-wide default.

All table commands accept ``--profile quick|full|paper`` (or the
``REPRO_PROFILE`` environment variable) plus the runner surfaces:
``--jobs N`` fans the experiment grid across N worker processes (0 =
one per CPU core); ``--resume`` (default) memoises finished cells in
``--cache-dir`` (default ``.repro_cache``, override with
``$REPRO_CACHE_DIR``) so interrupted or repeated runs only recompute
stale cells -- pass ``--no-resume`` to force recomputation; and
``--emit-json DIR`` writes ``BENCH_<experiment>.json`` + ``.csv``
artifacts that CI uploads and diffs against the checked-in baseline.

The result store is pluggable: ``--cache-backend json|sharded|sqlite``
(or ``$REPRO_CACHE_BACKEND``) selects the backend on every grid/fuzz
command, ``dynunlock cache`` inspects, garbage-collects, prunes, and
migrates caches, and ``dynunlock store-bench`` measures the backends
head-to-head (see ``docs/caching.md``).

Observability (``docs/observability.md``): every grid/attack/fuzz
command accepts ``--metrics-dir DIR`` (per-job spans, a Prometheus
``metrics.prom``, and a ``BENCH_obs.json`` summary land in DIR;
``$REPRO_METRICS_DIR`` sets a default) and ``--log-json PATH``
(structured JSON event log; ``-`` for stderr).  ``dynunlock top DIR``
renders a live ``top(1)``-style view over a running or finished
instrumented run.  With neither flag, instrumentation is fully off:
no spans are collected, and results/cache bytes are identical.

Declarative configs (``docs/configs.md``): ``--config FILE`` on
``fuzz``, ``farm``, ``matrix`` and every grid command resolves flags
through a checked TOML/JSON profile (explicit CLI flags win; the
resolved config is stamped into artifact provenance).  ``dynunlock
config check --strict`` validates profiles, rejecting unknown keys,
type mismatches and policy-violating values with dotted-path errors.

The continuous fuzz farm (``docs/fuzzing.md``): ``dynunlock farm run
--budget 10m --config farm.toml`` runs time-budgeted rolling rounds
that persist a deduplicating corpus plus coverage-scheduler state
under ``--state`` and checkpoint after every round, so a killed farm
resumes byte-identically; ``dynunlock farm status`` summarizes a
state dir, and ``dynunlock fuzz-replay <state>/corpus`` replays the
farmed corpus as a regression suite.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from contextlib import contextmanager

from repro import api
from repro.bench_suite.registry import (
    PAPER_BENCHMARKS,
    build_benchmark_netlist,
    get_benchmark,
)
from repro.locking.effdyn import lock_with_effdyn
from repro.reports.experiments import GRID
from repro.reports.profiles import PROFILES, active_profile
from repro.reports.tables import render_table
from repro.runner.artifacts import write_artifact
from repro.runner.spec import code_version
from repro.runner.stores import (
    BACKENDS,
    StoreBackend,
    migrate,
    open_store,
    resolve_backend,
)


def _progress(message: str) -> None:
    print(f"  [.] {message}", file=sys.stderr)


def _profile_from_args(args: argparse.Namespace):
    if getattr(args, "profile", None):
        return PROFILES[args.profile]
    return active_profile()


def _jobs_from_args(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", 1)
    if jobs is None:  # config-covered flag left unresolved
        jobs = 1
    return max(1, os.cpu_count() or 1) if jobs == 0 else max(1, jobs)


def _resolve_config(args: argparse.Namespace, command: str):
    """Resolve ``--config``-covered flags (CLI > file > default).

    Always runs, file or not, so config-covered flags (argparse default
    ``None``) pick up their built-in defaults in exactly one place.
    The provenance block lands on ``args.config_provenance`` for
    :func:`_emit_artifact` to stamp into artifacts.
    """
    from repro.config import ConfigError, apply_config

    try:
        provenance = apply_config(
            args,
            command,
            warn=lambda message: print(f"  [!] {message}", file=sys.stderr),
        )
    except ConfigError as exc:
        print(f"dynunlock: {exc}", file=sys.stderr)
        raise SystemExit(2)
    args.config_provenance = provenance
    return provenance


@contextmanager
def _observation(args: argparse.Namespace, command: str, existing=None):
    """Yield a RunObserver for this invocation, or ``None`` when off.

    One observability session spans the whole command; passing an
    ``existing`` observer (``dynunlock run`` driving several grids)
    reuses it instead of opening a nested session.  Without
    ``--metrics-dir``/``$REPRO_METRICS_DIR``/``--log-json`` this yields
    ``None`` and touches nothing -- the zero-cost-by-default path.
    """
    metrics_dir = getattr(args, "metrics_dir", None) or os.environ.get(
        "REPRO_METRICS_DIR"
    )
    log_json = getattr(args, "log_json", None)
    if existing is not None or (not metrics_dir and not log_json):
        yield existing
        return
    from repro.observability import RunObserver, end_session, start_session

    session = start_session(
        metrics_dir=metrics_dir, log_json=log_json, command=command
    )
    try:
        yield RunObserver(session)
    finally:
        end_session()
        if metrics_dir:
            print(f"  [=] wrote metrics to {metrics_dir}", file=sys.stderr)


def _store_from_args(args: argparse.Namespace) -> StoreBackend | None:
    if not getattr(args, "resume", True):
        return None
    try:
        return open_store(
            getattr(args, "cache_dir", None),
            backend=getattr(args, "cache_backend", None),
        )
    except ValueError as exc:  # a bad $REPRO_CACHE_BACKEND value
        raise SystemExit(f"dynunlock: {exc}")


def _emit_artifact(
    args: argparse.Namespace,
    name: str,
    headers,
    row_cells,
    *,
    title: str,
    profile_name: str,
    report,
    extra_meta: dict | None = None,
) -> None:
    """Write the BENCH_* JSON/CSV pair when ``--emit-json`` was given.

    One meta block for every grid command, so artifact consumers
    (``scripts/check_bench_regression.py``, CI) see a uniform shape.
    """
    if not getattr(args, "emit_json", None):
        return
    times = [o.result.get("time_s", 0.0) for o in report.outcomes]
    meta = {
        "jobs": _jobs_from_args(args),
        "n_jobs_total": len(report.outcomes),
        "n_cached": report.n_cached,
        "n_computed": report.n_computed,
        "total_attack_time_s": sum(times),
        "wall_s": report.wall_s,
        "code_version": code_version()[:20],
    }
    provenance = getattr(args, "config_provenance", None)
    if provenance is not None:
        meta["config"] = provenance
    meta.update(extra_meta or {})
    path = write_artifact(
        args.emit_json,
        name,
        headers,
        row_cells,
        title=title,
        profile=profile_name,
        meta=meta,
    )
    print(f"  [=] wrote {path}", file=sys.stderr)


def _run_experiment(
    args: argparse.Namespace, name: str, observer=None, **spec_kwargs
) -> int:
    """Run one named grid through :mod:`repro.api` and print/emit its table."""
    profile = _profile_from_args(args)
    opt_level = getattr(args, "opt_level", None)
    if opt_level is not None:
        spec_kwargs["opt_level"] = opt_level
    with _observation(args, name, observer) as obs:
        grid = api.run_grid(
            name,
            profile=profile,
            jobs=_jobs_from_args(args),
            store=_store_from_args(args),
            progress=_progress,
            observer=obs,
            **spec_kwargs,
        )
        # Emit inside the observation so the artifact's run block shares
        # the session's run_id with the logs/spans it was measured under.
        print(render_table(grid.headers, grid.as_cells(), title=grid.title))
        print(f"  [=] {grid.report.summary()}", file=sys.stderr)
        _emit_artifact(
            args,
            name,
            grid.headers,
            grid.as_cells(),
            title=grid.title,
            profile_name=profile.name,
            report=grid.report,
        )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``dynunlock info``: print a benchmark's structural statistics."""
    spec = get_benchmark(args.benchmark)
    netlist = build_benchmark_netlist(args.benchmark, scale=args.scale)
    print(f"benchmark    : {spec.name} ({spec.suite})")
    print(f"paper flops  : {spec.n_scan_flops}")
    print(f"scale        : 1/{args.scale}")
    for key, value in netlist.stats().items():
        print(f"{key:13}: {value}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    """``dynunlock list``: enumerate the registry benchmarks."""
    for name, spec in PAPER_BENCHMARKS.items():
        print(f"{name:10} {spec.suite:8} {spec.n_scan_flops:6} scan flops")
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """``dynunlock selftest``: end-to-end DynUnlock on the genuine s27."""
    from repro.bench_suite.iscas import s27_netlist
    from repro.core.dynunlock import dynunlock

    netlist = s27_netlist()
    lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(7))
    result = dynunlock(netlist, lock.public_view(), lock.make_oracle())
    exact = result.recovered_seed == list(lock.seed)
    print(
        f"s27 self-test: success={result.success} exact_seed={exact} "
        f"iterations={result.iterations} time={result.runtime_s:.2f}s"
    )
    return 0 if (result.success and exact) else 1


def cmd_attack(args: argparse.Namespace) -> int:
    """``dynunlock attack``: lock one benchmark with EFF-Dyn and break it."""
    with _observation(args, "attack") as observer:
        run = api.run_attack(
            args.benchmark,
            profile=_profile_from_args(args),
            key_bits=args.key_bits,
            scale=args.scale,
            lock_seed=args.lock_seed,
            timeout_s=args.timeout,
            opt_level=args.opt_level,
            observer=observer,
            progress=lambda message: print(message, file=sys.stderr),
        )
    result = run.result
    print(f"success          : {result.success}")
    print(f"exact seed       : {run.exact_seed}")
    print(f"seed candidates  : {result.n_seed_candidates}")
    print(f"iterations       : {result.iterations}")
    print(f"oracle queries   : {result.oracle_queries}")
    print(f"captures used    : {result.n_captures_used}")
    print(f"execution time   : {result.runtime_s:.2f}s")
    return 0 if result.success else 1


def cmd_export(args: argparse.Namespace) -> int:
    """Export a registry benchmark (optionally EFF-Dyn locked) to disk."""
    from pathlib import Path

    from repro.netlist.bench_io import write_bench
    from repro.netlist.verilog_io import write_verilog
    from repro.scan.structural import build_scan_netlist

    netlist = build_benchmark_netlist(args.benchmark, scale=args.scale)
    if args.lock:
        rng = random.Random(args.lock_seed)
        key_bits = min(args.key_bits or 8, netlist.n_dffs - 1)
        lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
        netlist, pins = build_scan_netlist(netlist, lock.spec)
        print(
            f"locked with {key_bits} key gates at positions "
            f"{lock.spec.keygate_positions}",
            file=sys.stderr,
        )
    text = (
        write_verilog(netlist) if args.format == "verilog" else write_bench(netlist)
    )
    out = Path(args.output) if args.output else None
    if out is None:
        print(text, end="")
    else:
        out.write_text(text)
        print(f"wrote {out}", file=sys.stderr)
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """``dynunlock table1``: regenerate the defense-evolution table."""
    _resolve_config(args, "grid")
    return _run_experiment(args, "table1")


def cmd_table2(args: argparse.Namespace) -> int:
    """``dynunlock table2``: regenerate the paper's main results table."""
    _resolve_config(args, "grid")
    return _run_experiment(args, "table2", benchmarks=args.benchmarks or None)


def cmd_table3(args: argparse.Namespace) -> int:
    """``dynunlock table3``: regenerate the key-size scaling table."""
    _resolve_config(args, "grid")
    return _run_experiment(args, "table3", benchmarks=args.benchmarks or None)


def cmd_scaling(args: argparse.Namespace) -> int:
    """``dynunlock scaling``: regenerate the Section IV flop-count study."""
    _resolve_config(args, "grid")
    return _run_experiment(args, "scaling")


def cmd_ablation(args: argparse.Namespace) -> int:
    """``dynunlock ablation``: regenerate the Section V nonlinear-PRNG study."""
    _resolve_config(args, "grid")
    return _run_experiment(args, "ablation")


def cmd_matrix(args: argparse.Namespace) -> int:
    """``dynunlock matrix``: run the attack x defense resilience grid."""
    from repro.matrix.grid import PAPER_EXPECTATIONS
    from repro.matrix.registry import attack_names, defense_names

    _resolve_config(args, "matrix")
    profile = _profile_from_args(args)
    attacks = args.attacks or None
    defenses = args.defenses or None
    unknown = [a for a in (attacks or []) if a not in attack_names()]
    unknown += [d for d in (defenses or []) if d not in defense_names()]
    if unknown:
        print(
            f"unknown attack/defense name(s): {', '.join(unknown)}; "
            f"attacks: {', '.join(attack_names())}; "
            f"defenses: {', '.join(defense_names())}",
            file=sys.stderr,
        )
        return 2
    bad_benchmarks = [b for b in args.benchmarks if b not in PAPER_BENCHMARKS]
    if bad_benchmarks:
        print(
            f"unknown benchmark(s): {', '.join(bad_benchmarks)}; "
            f"known: {', '.join(PAPER_BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    with _observation(args, "matrix") as observer:
        grid = api.run_matrix(
            profile=profile,
            jobs=_jobs_from_args(args),
            store=_store_from_args(args),
            progress=_progress,
            attacks=attacks,
            defenses=defenses,
            benchmarks=args.benchmarks or None,
            opt_level=args.opt_level,
            observer=observer,
        )
        rows = grid.rows
        print(render_table(grid.headers, grid.as_cells(), title=grid.title))
        print(f"  [=] {grid.report.summary()}", file=sys.stderr)

        mismatches = (
            api.check_matrix_against_paper(rows) if args.check_paper else []
        )
        _emit_artifact(
            args,
            "matrix",
            grid.headers,
            grid.as_cells(),
            title=grid.title,
            profile_name=profile.name,
            report=grid.report,
            extra_meta={
                "verdicts": {f"{r.attack}|{r.defense}": r.verdict for r in rows},
                # None (not 0) when the check was disabled, so artifact
                # consumers can tell "clean" from "never ran".
                "paper_checked": bool(args.check_paper),
                "n_paper_mismatches": len(mismatches) if args.check_paper else None,
            },
        )
    for mismatch in mismatches:
        print(f"  [!] paper disagreement: {mismatch}", file=sys.stderr)
    if mismatches:
        return 1
    if args.check_paper:
        checked = sum(
            1 for r in rows if (r.attack, r.defense) in PAPER_EXPECTATIONS
        )
        print(
            f"  [=] paper check: {checked} pair(s) agree with Table I",
            file=sys.stderr,
        )
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``dynunlock fuzz``: run a seeded differential-fuzzing campaign."""
    from repro.fuzz.campaign import FUZZ_HEADERS, campaign_rows

    _resolve_config(args, "fuzz")
    profile = _profile_from_args(args)
    with _observation(args, "fuzz") as observer:
        report = api.run_fuzz(
            profile=profile,
            trials=args.trials,
            seed=args.seed,
            jobs=_jobs_from_args(args),
            store=_store_from_args(args),
            time_budget_s=args.time_budget,
            corpus_dir=args.corpus,
            progress=_progress,
            shrink_limit=args.shrink_limit,
            opt_level=args.opt_level,
            observer=observer,
        )
        if observer is not None:
            # Campaign-level outcomes the per-trial spans cannot see.
            counters = observer.session.metrics
            counters.counter(
                "repro_fuzz_trials_total", "Fuzz trials by disposition"
            ).inc(len(report.outcomes), disposition="ran")
            counters.counter(
                "repro_fuzz_trials_total", "Fuzz trials by disposition"
            ).inc(report.n_not_run, disposition="not_run")
            counters.counter(
                "repro_fuzz_violations_total", "Invariant violations found"
            ).inc(len(report.violations))
        title = (
            f"Differential fuzz campaign (seed={args.seed}, "
            f"profile={profile.name})"
        )
        rows = campaign_rows(report)
        print(render_table(FUZZ_HEADERS, rows, title=title))
        print(f"  [=] {report.summary()}", file=sys.stderr)
        for violation in report.violations:
            where = violation.get("corpus_path")
            suffix = f" -> {where}" if where else ""
            print(
                f"  [!] trial {violation['index']} violated "
                f"{violation['invariant']}: {violation['detail']}{suffix}",
                file=sys.stderr,
            )
        _emit_artifact(
            args,
            "fuzz",
            FUZZ_HEADERS,
            rows,
            title=title,
            profile_name=profile.name,
            report=_FuzzArtifactReport(report),
            extra_meta={
                "campaign_seed": args.seed,
                "n_trials": report.n_trials,
                "n_not_run": report.n_not_run,
                "n_unbuildable": report.n_skipped_builds,
                "violations": report.violations,
            },
        )
    return 0 if report.ok else 1


class _FuzzArtifactReport:
    """Adapter giving :func:`_emit_artifact` the RunReport surface it reads."""

    def __init__(self, report):
        self.outcomes = [o for o in report.outcomes if o.ok]
        self.wall_s = report.wall_s
        self.n_cached = report.n_cached
        self.n_computed = report.n_computed


def cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """``dynunlock fuzz-replay``: re-demonstrate every crash-corpus entry.

    Exit codes (pinned by tests): 0 -- every replayable entry still
    reproduces (or the corpus is empty); 1 -- at least one entry no
    longer reproduces (the stale files are listed); 2 -- the corpus
    directory is damaged (unreadable or malformed entries).
    """
    from repro.fuzz.corpus import CorpusError, load_corpus, replay_entry

    try:
        entries = load_corpus(args.corpus)
    except CorpusError as exc:
        print(f"corpus {args.corpus} is damaged: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"corpus {args.corpus} is empty; nothing to replay")
        return 0
    profile = PROFILES[args.profile] if args.profile else None
    reproduced_count = skipped = 0
    stale_paths: list[str] = []
    for path, entry in entries:
        reproduced = replay_entry(entry, profile)
        if reproduced is None:
            status = "SKIP (needs a pool/store to reproduce)"
            skipped += 1
        elif reproduced:
            status = "reproduced"
            reproduced_count += 1
        else:
            status = "NO LONGER REPRODUCES"
            stale_paths.append(str(path))
        print(f"{path}: {entry.invariant} ... {status}")
        if args.verbose:
            print(f"    detail : {entry.detail}")
            print(f"    trial  : {entry.trial}")
    print(
        f"  [=] {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}: "
        f"{reproduced_count} reproduced, {len(stale_paths)} stale, "
        f"{skipped} skipped"
    )
    if stale_paths:
        stale = len(stale_paths)
        print(
            f"  [!] {stale} entr{'y' if stale == 1 else 'ies'} no longer "
            "reproduce -- the bug is fixed; delete the file(s) to retire "
            "them:",
            file=sys.stderr,
        )
        for path in stale_paths:
            print(f"  [!]   {path}", file=sys.stderr)
        return 1
    return 0


FARM_HEADERS = ["Attack", "Defense", "Bucket", "Trials", "Violations", "Hot"]


def cmd_farm_run(args: argparse.Namespace) -> int:
    """``dynunlock farm run``: rolling, checkpointed fuzz-farm rounds.

    Exit codes: 0 -- this invocation's rounds found no violations;
    1 -- at least one violation (reproducers are in the corpus);
    2 -- usage/state errors (bad config, mismatched state dir).
    """
    from repro.farm import FarmConfig, FarmDriver
    from repro.farm.driver import FarmStateError

    _resolve_config(args, "farm")
    profile = _profile_from_args(args)
    config = FarmConfig(
        seed=args.seed,
        round_trials=args.round_trials,
        max_rounds=args.max_rounds,
        budget_s=args.budget,
        concurrency=_jobs_from_args(args),
        state_dir=args.state,
        bias=args.bias,
        stability_every=args.stability_every,
        shrink_limit=args.shrink_limit,
        opt_level=args.opt_level,
        attacks=args.attacks or None,
        defenses=args.defenses or None,
    )

    # SIGTERM (a CI timeout, a container stop) must behave like C-c:
    # the torn round is abandoned and the last checkpoint stands, so
    # the next invocation resumes byte-identically.
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        with _observation(args, "farm") as observer:
            try:
                driver = FarmDriver(
                    profile,
                    config,
                    store=_store_from_args(args),
                    observer=observer,
                    progress=_progress,
                )
            except FarmStateError as exc:
                print(f"dynunlock: {exc}", file=sys.stderr)
                return 2
            report = driver.run()
            rows = [
                [*key.split("|"), int(stat["trials"]), int(stat["violations"]),
                 f"{stat['hot']:.2f}"]
                for key, stat in sorted(driver.scheduler.stats.items())
                if stat["trials"] > 0
            ]
            title = (
                f"Fuzz farm (seed={config.seed}, profile={profile.name}, "
                f"round {report.total_rounds})"
            )
            print(render_table(FARM_HEADERS, rows, title=title))
            print(f"  [=] {report.summary()}", file=sys.stderr)
            if args.emit_json:
                covered, total = report.coverage
                meta = {
                    "seed": config.seed,
                    "rounds_this_run": len(report.rounds),
                    "trials_this_run": report.trials_this_run,
                    "violations_this_run": report.violations_this_run,
                    "total_rounds": report.total_rounds,
                    "total_trials": report.total_trials,
                    "total_violations": report.total_violations,
                    "corpus": report.corpus_stats,
                    "cells_covered": covered,
                    "n_cells": total,
                    "stopped": report.stopped,
                    "wall_s": report.wall_s,
                    "trials_per_s": (
                        report.trials_this_run / report.wall_s
                        if report.wall_s > 0
                        else 0.0
                    ),
                    "state_dir": str(config.state_dir),
                    "code_version": code_version()[:20],
                }
                provenance = getattr(args, "config_provenance", None)
                if provenance is not None:
                    meta["config"] = provenance
                path = write_artifact(
                    args.emit_json,
                    "farm",
                    FARM_HEADERS,
                    rows,
                    title=title,
                    profile=profile.name,
                    meta=meta,
                )
                print(f"  [=] wrote {path}", file=sys.stderr)
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 1 if report.violations_this_run else 0


def cmd_farm_status(args: argparse.Namespace) -> int:
    """``dynunlock farm status``: summarize a farm state directory."""
    import json as json_mod

    from repro.farm.driver import load_status

    status = load_status(args.state)
    if args.json:
        print(json_mod.dumps(status, indent=1, sort_keys=True))
        return 0 if status["exists"] else 1
    if not status["exists"]:
        print(f"no farm state at {args.state}")
        return 1
    totals = status.get("totals", {})
    corpus = status.get("corpus", {})
    print(f"state dir    : {status['state_dir']}")
    print(f"seed         : {status['seed']}")
    print(f"rounds       : {status['rounds']}")
    print(f"trials       : {totals.get('trials', 0)}")
    print(f"violations   : {totals.get('violations', 0)}")
    print(
        f"coverage     : {status['cells_covered']}/{status['n_cells']} cells"
    )
    print(
        f"corpus       : {corpus.get('entries', 0)} entries "
        f"{json_mod.dumps(corpus.get('by_kind', {}), sort_keys=True)}"
    )
    for key, trials, violations in status.get("hot_cells", []):
        print(f"  cell {key}: {trials} trials, {violations} violations")
    return 0


def cmd_config_check(args: argparse.Namespace) -> int:
    """``dynunlock config check``: validate config profiles.

    Exit codes: 0 -- every file is valid; 1 -- at least one issue
    (each printed as ``file: dotted.path: message``).
    """
    from repro.config import ConfigError, check_config, load_config_file

    failed = False
    for path in args.files:
        try:
            data = load_config_file(path)
        except ConfigError as exc:
            for issue in exc.issues:
                print(f"{path}: {issue}")
            failed = True
            continue
        values, issues = check_config(data, strict=args.strict)
        if issues:
            for issue in issues:
                print(f"{path}: {issue}")
            failed = True
        else:
            print(f"{path}: OK ({len(values)} value(s))")
    return 1 if failed else 0


def cmd_config_show(args: argparse.Namespace) -> int:
    """``dynunlock config show``: print a profile's resolved values."""
    import json as json_mod

    from repro.config import ConfigError, load_and_check

    try:
        resolved = load_and_check(args.file, strict=False)
    except ConfigError as exc:
        for issue in exc.issues:
            print(f"{args.file}: {issue}", file=sys.stderr)
        return 1
    print(json_mod.dumps(resolved.values, indent=1, sort_keys=True))
    return 0


def cmd_opt(args: argparse.Namespace) -> int:
    """``dynunlock opt``: netlist-optimization statistics for a benchmark.

    Optimizes both the raw benchmark netlist and its EFF-Dyn attack
    model (the circuit every DIP iteration actually encodes), printing
    per-pass gate counts and timings.
    """
    from repro.core.modeling import build_combinational_model
    from repro.locking.effdyn import lock_with_effdyn
    from repro.opt import optimize, resolve_level

    profile = _profile_from_args(args)
    level = resolve_level(args.level)
    scale = args.scale or profile.scale
    netlist = build_benchmark_netlist(args.benchmark, scale=scale)
    key_bits = profile.effective_key_bits(netlist.n_dffs, args.key_bits)
    lock = lock_with_effdyn(
        netlist, key_bits=key_bits, rng=random.Random(args.lock_seed)
    )
    model = build_combinational_model(
        netlist, lock.spec, lock.lfsr_taps, key_bits
    )

    headers = ["Target", "Pass", "Gates before", "Gates after", "Time (s)"]
    rows: list[list] = []
    summaries: dict[str, dict] = {}
    for label, target in (("netlist", netlist), ("effdyn-model", model.netlist)):
        result = optimize(target, level=level)
        stats = result.stats
        for record in stats.passes:
            rows.append(
                [
                    label,
                    record.name,
                    record.gates_before,
                    record.gates_after,
                    f"{record.time_s:.3f}",
                ]
            )
        rows.append(
            [label, "TOTAL", stats.gates_before, stats.gates_after, f"{stats.time_s:.3f}"]
        )
        summaries[label] = stats.as_dict()
        print(
            f"  [=] {label}: {stats.gates_before} -> {stats.gates_after} gates "
            f"({stats.reduction:.1%} removed), "
            f"{len(stats.unused_inputs)} unused input(s)",
            file=sys.stderr,
        )
    title = (
        f"Netlist optimization (benchmark={args.benchmark}, scale=1/{scale}, "
        f"level={level}, key_bits={key_bits})"
    )
    print(render_table(headers, rows, title=title))
    if args.emit_json:
        path = write_artifact(
            args.emit_json,
            "opt",
            headers,
            rows,
            title=title,
            profile=profile.name,
            meta={
                "benchmark": args.benchmark,
                "scale": scale,
                "level": level,
                "key_bits": key_bits,
                "targets": summaries,
            },
        )
        print(f"  [=] wrote {path}", file=sys.stderr)
    return 0


def cmd_opt_bench(args: argparse.Namespace) -> int:
    """``dynunlock opt-bench``: measure the optimized vs raw attack pipeline.

    Runs the Table II grid twice through the scheduler -- once with
    optimization disabled, once at the requested level -- cache-less so
    the timings are honest, then writes ``BENCH_opt.json`` and fails
    (exit 1) when the optimized pipeline is slower than the raw one by
    more than ``--threshold``, or when optimization changed any cell's
    attack outcome (success / exact-seed bits).
    """
    from repro.core.modeling import build_combinational_model
    from repro.opt import optimize, resolve_level
    from repro.reports.cells import build_table2_lock
    from repro.reports.experiments import adapt_progress, table2_specs
    from repro.runner.scheduler import run_jobs

    profile = _profile_from_args(args)
    level = resolve_level(args.level)
    if level == 0:
        print("opt-bench needs a non-zero --level to compare", file=sys.stderr)
        return 2
    benchmarks = args.benchmarks or None
    jobs = _jobs_from_args(args)

    reports = {}
    with _observation(args, "opt-bench") as observer:
        for label, arm_level in (("no-opt", 0), ("opt", level)):
            print(f"  [.] running table2 arm: {label}", file=sys.stderr)
            specs = table2_specs(profile, benchmarks, opt_level=arm_level)
            report = run_jobs(
                specs,
                jobs=jobs,
                store=None,
                progress=adapt_progress(_progress),
                observer=observer,
            )
            report.raise_on_error()
            reports[label] = report

    def by_cell(report):
        return {
            (o.spec.params["benchmark"], o.spec.params["seed_index"]): o.result
            for o in report.outcomes
        }

    raw, opt = by_cell(reports["no-opt"]), by_cell(reports["opt"])
    outcome_mismatches = []
    for (bench, seed), raw_cell in raw.items():
        opt_cell = opt[(bench, seed)]
        if (raw_cell["success"], raw_cell["exact_seed"]) != (
            opt_cell["success"],
            opt_cell["exact_seed"],
        ):
            outcome_mismatches.append(
                f"{bench}/seed{seed}: success {raw_cell['success']}->"
                f"{opt_cell['success']}, exact_seed "
                f"{raw_cell['exact_seed']}->{opt_cell['exact_seed']}"
            )

    headers = [
        "Benchmark",
        "Model gates",
        "Opt gates",
        "Reduction",
        "No-opt time (s)",
        "Opt time (s)",
        "Speedup",
    ]
    rows: list[list] = []
    total_raw = total_opt = 0.0
    bench_names = list(dict.fromkeys(bench for bench, _ in raw))
    for bench in bench_names:
        cells_raw = [v for (b, _), v in raw.items() if b == bench]
        cells_opt = [v for (b, _), v in opt.items() if b == bench]
        t_raw = sum(c["time_s"] for c in cells_raw)
        t_opt = sum(c["time_s"] for c in cells_opt)
        total_raw += t_raw
        total_opt += t_opt
        netlist, lock, kb = build_table2_lock(profile, bench)
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, kb
        )
        stats = optimize(model.netlist, level=level).stats
        rows.append(
            [
                bench,
                stats.gates_before,
                stats.gates_after,
                f"{stats.reduction:.0%}",
                f"{t_raw:.2f}",
                f"{t_opt:.2f}",
                f"{t_raw / t_opt:.2f}x" if t_opt > 0 else "-",
            ]
        )

    ratio = total_opt / total_raw if total_raw > 0 else 1.0
    regressed = total_opt > total_raw * (1.0 + args.threshold)
    title = f"Optimized vs raw attack pipeline (profile={profile.name}, level={level})"
    print(render_table(headers, rows, title=title))
    print(
        f"  [=] total attack time: no-opt {total_raw:.2f}s, "
        f"opt {total_opt:.2f}s (ratio {ratio:.2f}, budget "
        f"{1.0 + args.threshold:.2f})",
        file=sys.stderr,
    )
    if args.emit_json:
        path = write_artifact(
            args.emit_json,
            "opt",
            headers,
            rows,
            title=title,
            profile=profile.name,
            meta={
                "level": level,
                "threshold": args.threshold,
                "jobs": jobs,
                "total_no_opt_time_s": total_raw,
                "total_opt_time_s": total_opt,
                "total_attack_time_s": total_opt,
                "ratio": ratio,
                "outcome_mismatches": outcome_mismatches,
                "regressed": bool(regressed),
                "code_version": code_version()[:20],
            },
        )
        print(f"  [=] wrote {path}", file=sys.stderr)
    for mismatch in outcome_mismatches:
        print(f"  [!] outcome changed under optimization: {mismatch}", file=sys.stderr)
    if regressed:
        print(
            f"  [!] optimized pipeline exceeds the no-opt budget: "
            f"{total_opt:.2f}s > {total_raw:.2f}s * {1.0 + args.threshold:.2f}",
            file=sys.stderr,
        )
    return 1 if (regressed or outcome_mismatches) else 0


def cmd_ir_bench(args: argparse.Namespace) -> int:
    """``dynunlock ir-bench``: measure pure vs array-IR kernels.

    Times the IR-accelerated kernels (packed-lane simulation, Tseitin
    template compilation, level-1 optimization) on the Table II locked
    models with :mod:`repro.ir` forced off and on, checks that both arms
    produce identical kernel results and identical full-attack outcomes
    at every requested opt level, writes ``BENCH_ir.json``, and fails
    (exit 1) when the array arm is slower than ``--min-speedup`` times
    the pure arm or any identity check trips.
    """
    from repro.ir.bench import run_ir_bench

    profile = _profile_from_args(args)
    benchmarks = args.benchmarks or None
    opt_levels = tuple(args.identity_levels)

    def _say(msg: str) -> None:
        print(f"  [.] {msg}", file=sys.stderr)

    report = run_ir_bench(
        profile,
        benchmarks,
        n_patterns=args.patterns,
        repeats=args.repeats,
        opt_levels=opt_levels,
        log=_say,
    )

    headers = [
        "Benchmark",
        "Model gates",
        "Pure (s)",
        "Array (s)",
        "Speedup",
        "Success",
    ]
    rows: list[list] = []
    for row in report.rows:
        identical = row.kernel_match and row.identity_ok
        rows.append(
            [
                row.benchmark,
                row.model_gates,
                f"{row.pure_s:.3f}",
                f"{row.array_s:.3f}",
                f"{row.speedup:.2f}x",
                "yes" if identical else "MISMATCH",
            ]
        )

    mismatches = report.mismatches
    speedup = report.speedup
    too_slow = speedup < args.min_speedup
    title = (
        f"Pure vs array-IR kernels (profile={profile.name}, "
        f"{report.n_patterns} patterns, best of {report.repeats})"
    )
    print(render_table(headers, rows, title=title))
    print(
        f"  [=] kernel totals: pure {report.pure_total_s:.2f}s, "
        f"array {report.array_total_s:.2f}s (speedup {speedup:.2f}x, "
        f"floor {args.min_speedup:.2f}x)",
        file=sys.stderr,
    )
    if args.emit_json:
        path = write_artifact(
            args.emit_json,
            "ir",
            headers,
            rows,
            title=title,
            profile=profile.name,
            meta={
                "n_patterns": report.n_patterns,
                "repeats": report.repeats,
                "identity_levels": list(report.opt_levels),
                "min_speedup": args.min_speedup,
                "pure_total_s": report.pure_total_s,
                "array_total_s": report.array_total_s,
                "speedup": speedup,
                "mismatches": mismatches,
                "regressed": bool(too_slow or mismatches),
                "code_version": code_version()[:20],
            },
        )
        print(f"  [=] wrote {path}", file=sys.stderr)
    for mismatch in mismatches:
        print(f"  [!] arms disagree: {mismatch}", file=sys.stderr)
    if too_slow:
        print(
            f"  [!] array IR below the speedup floor: {speedup:.2f}x < "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
    return 1 if (too_slow or mismatches) else 0


def _parse_size(text: str) -> int:
    """Parse a byte count with optional K/M/G/T suffix (binary units)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}
    cleaned = text.strip().lower().removesuffix("b")
    factor = 1
    if cleaned and cleaned[-1] in units:
        factor = units[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(float(cleaned) * factor)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a size: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0: {text!r}")
    return value


def _open_cache(args: argparse.Namespace) -> StoreBackend:
    try:
        return open_store(args.cache_dir, backend=args.cache_backend)
    except ValueError as exc:
        raise SystemExit(f"dynunlock: {exc}")


def cmd_cache_stats(args: argparse.Namespace) -> int:
    """``dynunlock cache stats``: describe the result store."""
    import json as json_mod

    with _open_cache(args) as store:
        stats = store.stats()
    if args.json:
        print(json_mod.dumps(stats, indent=1, sort_keys=True))
        return 0
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, (list, dict)):
            value = json_mod.dumps(value, sort_keys=True)
        print(f"{key:14}: {value}")
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    """``dynunlock cache gc``: LRU-evict down to a size bound."""
    with _open_cache(args) as store:
        report = store.gc(args.max_bytes, dry_run=args.dry_run)
    print(f"  [=] {report.summary()}", file=sys.stderr)
    if args.verbose:
        for experiment, key in report.evicted:
            print(f"  [-] {experiment}/{key}", file=sys.stderr)
    return 0


def cmd_cache_prune(args: argparse.Namespace) -> int:
    """``dynunlock cache prune``: drop entries from other code versions."""
    with _open_cache(args) as store:
        removed = store.prune()
    print(f"  [=] pruned {removed} stale unit(s)", file=sys.stderr)
    return 0


def cmd_cache_migrate(args: argparse.Namespace) -> int:
    """``dynunlock cache migrate``: copy a cache into another backend.

    Entries move byte-for-byte (mtimes included, so LRU order
    survives).  Only the current code version's entries migrate --
    foreign versions are exactly what ``cache prune`` deletes.
    """
    source_backend = resolve_backend(args.cache_backend)
    dest_dir = args.to_dir if args.to_dir is not None else args.cache_dir
    same_dir = (dest_dir or "") == (args.cache_dir or "")
    if args.to == source_backend and same_dir:
        print(
            "dynunlock: refusing to migrate a store onto itself "
            f"(backend {args.to!r}, same directory); pass --to-dir",
            file=sys.stderr,
        )
        return 2
    with _open_cache(args) as source:
        with open_store(dest_dir, backend=args.to) as dest:
            copied = migrate(source, dest)
    print(
        f"  [=] migrated {copied} entr{'y' if copied == 1 else 'ies'} "
        f"{source_backend} -> {args.to}",
        file=sys.stderr,
    )
    return 0


def cmd_store_bench(args: argparse.Namespace) -> int:
    """``dynunlock store-bench``: head-to-head backend benchmark.

    Pushes one deterministic synthetic workload through every backend
    and reports put/get/iterate timings plus on-disk size; with
    ``--emit-json`` the ``BENCH_store.json`` meta block carries
    ``default_total_s``, the metric CI gates against the checked-in
    baseline.
    """
    import tempfile
    from pathlib import Path

    from repro.runner.stores.bench import run_store_bench

    def bench_in(workdir: Path):
        return run_store_bench(
            workdir,
            entries=args.entries,
            payload_bytes=args.payload_bytes,
            seed=args.seed,
            backends=args.backends or None,
        )

    if args.workdir:
        headers, rows, meta = bench_in(Path(args.workdir))
    else:
        with tempfile.TemporaryDirectory(prefix="storebench-") as scratch:
            headers, rows, meta = bench_in(Path(scratch))
    title = (
        f"Result-store head-to-head "
        f"({args.entries} entries x {args.payload_bytes}B payloads)"
    )
    print(render_table(headers, rows, title=title))
    if args.emit_json:
        meta["code_version"] = code_version()[:20]
        path = write_artifact(
            args.emit_json, "store", headers, rows, title=title, meta=meta
        )
        print(f"  [=] wrote {path}", file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``dynunlock run``: push one or more experiment grids through the runner."""
    _resolve_config(args, "grid")
    names = list(GRID) if "all" in args.experiments else args.experiments
    seen: list[str] = []
    for name in names:
        if name not in seen:
            seen.append(name)
    # One observability session spans all requested grids; each grid's
    # spans stay distinguishable by their experiment field.
    with _observation(args, "run") as observer:
        for name in seen:
            kwargs = {}
            if name in ("table2", "table3") and args.benchmarks:
                kwargs["benchmarks"] = args.benchmarks
            code = _run_experiment(args, name, observer=observer, **kwargs)
            if code != 0:
                return code
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``dynunlock serve``: run the attack-as-a-service HTTP job API."""
    from repro.service import ReproService

    store = _store_from_args(args)
    metrics_dir = args.metrics_dir or os.environ.get("REPRO_METRICS_DIR")
    service = ReproService(
        host=args.host,
        port=args.port,
        jobs=_jobs_from_args(args),
        store=store,
        metrics_dir=metrics_dir,
        log_json=args.log_json,
        argv=sys.argv,
    )
    backend = store.name if store is not None else "none"
    print(
        f"  [=] serving on {service.url} "
        f"(store={backend}, jobs={_jobs_from_args(args)}; C-c to stop)",
        file=sys.stderr,
    )
    # SIGTERM (e.g. a container runtime stopping the pod) must flush
    # metrics like C-c does; raising turns it into the same exit path.
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("  [=] shutting down", file=sys.stderr)
    finally:
        service.close()
        if metrics_dir:
            print(f"  [=] wrote metrics to {metrics_dir}", file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """``dynunlock submit``: run one grid remotely through a server.

    Enumerates the same specs ``dynunlock run`` would, streams them to
    the server through the batching client, polls to completion, then
    aggregates the fetched results into the same table -- so a remote
    grid and a local one print identical rows.
    """
    from repro.runner.scheduler import JobOutcome, RunReport
    from repro.service.client import BatchingClient, ServiceClient

    profile = _profile_from_args(args)
    spec_kwargs = {}
    if args.opt_level is not None:
        spec_kwargs["opt_level"] = args.opt_level
    if args.experiment in ("table2", "table3") and args.benchmarks:
        spec_kwargs["benchmarks"] = args.benchmarks
    specs = api.grid_specs(args.experiment, profile, **spec_kwargs)

    import time as time_mod

    t0 = time_mod.perf_counter()
    client = ServiceClient(args.url, timeout_s=args.timeout, retries=args.retries)
    with BatchingClient(client=client, batch_size=args.batch_size) as batcher:
        for spec in specs:
            batcher.submit(spec)
        batcher.flush()
        views = batcher.job_views
    job_ids = list(dict.fromkeys(views[s.spec_hash]["job_id"] for s in specs))
    print(
        f"  [.] submitted {len(specs)} spec(s) as {len(job_ids)} job(s) "
        f"to {args.url}",
        file=sys.stderr,
    )
    done = client.wait(job_ids, timeout_s=args.wait_timeout, poll_s=args.poll)
    failures = [v for v in done.values() if v["status"] == "failed"]
    for view in failures:
        print(f"  [!] {view['label']}: {view['error']}", file=sys.stderr)
    if failures:
        return 1
    results = {job_id: client.result(job_id) for job_id in done}
    outcomes = []
    for i, spec in enumerate(specs):
        job_id = views[spec.spec_hash]["job_id"]
        view = done[job_id]
        outcomes.append(
            JobOutcome(
                index=i,
                spec=spec,
                result=results[job_id],
                cached=bool(view["cached"]),
                attempts=int(view["attempts"]),
                duration_s=float(view["duration_s"]),
            )
        )
    report = RunReport(outcomes=outcomes, wall_s=time_mod.perf_counter() - t0)
    rows = api.aggregate_grid(args.experiment, outcomes)
    title = f"{GRID[args.experiment].title} (profile={profile.name}, remote)"
    headers = list(GRID[args.experiment].headers)
    cells = [row.as_cells() for row in rows]
    print(render_table(headers, cells, title=title))
    print(f"  [=] {report.summary()}", file=sys.stderr)
    _emit_artifact(
        args,
        args.experiment,
        headers,
        cells,
        title=title,
        profile_name=profile.name,
        report=report,
        extra_meta={"remote_url": args.url},
    )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """``dynunlock top``: live view over a run's metrics directory."""
    from repro.observability.top import watch

    metrics_dir = args.metrics_dir or os.environ.get(
        "REPRO_METRICS_DIR", ".repro_metrics"
    )
    return watch(metrics_dir, interval=args.interval, once=args.once)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree for the ``dynunlock`` CLI."""
    parser = argparse.ArgumentParser(
        prog="dynunlock",
        description="DynUnlock (DATE 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_profile(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", choices=sorted(PROFILES), default=None,
            help="experiment size profile (default: $REPRO_PROFILE or quick)",
        )

    def add_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--opt-level", type=int, choices=(0, 1, 2), default=None,
            help="netlist-optimization preprocessing level "
                 "(default: $REPRO_OPT_LEVEL or 1; 2 adds SAT sweeping)",
        )
        p.add_argument(
            "--no-opt", dest="opt_level", action="store_const", const=0,
            help="disable netlist optimization (same as --opt-level 0)",
        )

    def add_config(p: argparse.ArgumentParser) -> None:
        # Config-covered flags use a None/[] argparse default so
        # explicit-vs-absent stays detectable; repro.config fills in
        # (file value > built-in default) for everything not given.
        p.add_argument(
            "--config", default=None, metavar="FILE",
            help="resolve flags through a TOML/JSON config profile "
                 "(explicit flags win; see docs/configs.md)",
        )

    def add_runner(p: argparse.ArgumentParser) -> None:
        add_config(p)
        p.add_argument(
            "-j", "--jobs", type=int, default=None, metavar="N",
            help="worker processes for the experiment grid "
                 "(default 1 = serial, 0 = one per CPU core)",
        )
        p.add_argument(
            "--resume", action=argparse.BooleanOptionalAction, default=None,
            help="reuse cached cells from --cache-dir and store new ones "
                 "(default: on; --no-resume recomputes everything)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="result store location (default: $REPRO_CACHE_DIR "
                 "or .repro_cache)",
        )
        p.add_argument(
            "--cache-backend", choices=sorted(BACKENDS), default=None,
            help="result store backend (default: $REPRO_CACHE_BACKEND "
                 "or json; see docs/caching.md)",
        )
        p.add_argument(
            "--emit-json", default=None, metavar="DIR",
            help="write BENCH_<experiment>.json + .csv artifacts to DIR",
        )

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics-dir", default=None, metavar="DIR",
            help="record per-job spans and metrics into DIR "
                 "(spans.jsonl, metrics.prom, BENCH_obs.json; default: "
                 "$REPRO_METRICS_DIR, unset = instrumentation off)",
        )
        p.add_argument(
            "--log-json", default=None, metavar="PATH",
            help="append structured JSON log events to PATH "
                 "('-' = stderr; see docs/observability.md)",
        )

    p = sub.add_parser("info", help="show benchmark statistics")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=int, default=16)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("list", help="list registry benchmarks")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("selftest", help="end-to-end attack on s27")
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser("export", help="export a benchmark as .bench/.v")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=int, default=16)
    p.add_argument("--format", choices=["bench", "verilog"], default="bench")
    p.add_argument("--lock", action="store_true",
                   help="insert an EFF-Dyn locked scan chain first")
    p.add_argument("--key-bits", type=int, default=None)
    p.add_argument("--lock-seed", type=int, default=0)
    p.add_argument("--output", default=None)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("attack", help="run DynUnlock on one benchmark")
    p.add_argument("benchmark")
    p.add_argument("--key-bits", type=int, default=None)
    p.add_argument("--scale", type=int, default=None)
    p.add_argument("--lock-seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=None)
    add_profile(p)
    add_opt(p)
    add_obs(p)
    p.set_defaults(func=cmd_attack)

    for name, func, has_benchmarks in [
        ("table1", cmd_table1, False),
        ("table2", cmd_table2, True),
        ("table3", cmd_table3, True),
        ("scaling", cmd_scaling, False),
        ("ablation", cmd_ablation, False),
    ]:
        p = sub.add_parser(name, help=f"regenerate {name}")
        if has_benchmarks:
            p.add_argument("benchmarks", nargs="*", default=[])
        add_profile(p)
        add_runner(p)
        add_opt(p)
        add_obs(p)
        p.set_defaults(func=func)

    p = sub.add_parser(
        "opt", help="netlist-optimization statistics for a benchmark"
    )
    p.add_argument("benchmark")
    p.add_argument("--scale", type=int, default=None,
                   help="flop-count divisor (default: the profile's scale)")
    p.add_argument("--level", type=int, choices=(0, 1, 2), default=None,
                   help="optimization level (default: $REPRO_OPT_LEVEL or 1)")
    p.add_argument("--key-bits", type=int, default=None)
    p.add_argument("--lock-seed", type=int, default=0)
    p.add_argument("--emit-json", default=None, metavar="DIR",
                   help="write BENCH_opt.json + .csv artifacts to DIR")
    add_profile(p)
    p.set_defaults(func=cmd_opt)

    p = sub.add_parser(
        "opt-bench",
        help="measure the optimized vs raw attack pipeline (Table II grid)",
    )
    p.add_argument(
        "--benchmarks", nargs="*", default=[],
        help="restrict the grid to these benchmarks (default: all of "
             "Table II)",
    )
    p.add_argument("--level", type=int, choices=(1, 2), default=None,
                   help="optimization level of the opt arm "
                        "(default: $REPRO_OPT_LEVEL or 1)")
    p.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="fail when opt total time exceeds no-opt by this fraction "
             "(default 0.10)",
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = serial, 0 = one per CPU core)",
    )
    p.add_argument("--emit-json", default=None, metavar="DIR",
                   help="write BENCH_opt.json + .csv artifacts to DIR")
    add_profile(p)
    add_obs(p)
    p.set_defaults(func=cmd_opt_bench)

    p = sub.add_parser(
        "ir-bench",
        help="measure pure vs array-IR kernels (Table II locked models)",
    )
    p.add_argument(
        "--benchmarks", nargs="*", default=[],
        help="restrict to these benchmarks (default: all of Table II)",
    )
    p.add_argument(
        "--patterns", type=int, default=1024, metavar="N",
        help="simulation batch size per kernel pass (default 1024)",
    )
    p.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="kernel passes per arm; best-of is reported (default 3)",
    )
    p.add_argument(
        "--identity-levels", type=int, nargs="*", default=[0, 1, 2],
        choices=(0, 1, 2), metavar="L",
        help="opt levels for the full-attack identity gate "
             "(default 0 1 2; pass none to skip)",
    )
    p.add_argument(
        "--min-speedup", type=float, default=1.15, metavar="X",
        help="fail when array total is not this many times faster "
             "than pure (default 1.15)",
    )
    p.add_argument("--emit-json", default=None, metavar="DIR",
                   help="write BENCH_ir.json + .csv artifacts to DIR")
    add_profile(p)
    p.set_defaults(func=cmd_ir_bench)

    p = sub.add_parser(
        "matrix", help="run the attack x defense resilience grid"
    )
    p.add_argument(
        "--attacks", nargs="*", default=[],
        help="restrict the grid to these registered attacks",
    )
    p.add_argument(
        "--defenses", nargs="*", default=[],
        help="restrict the grid to these registered defenses",
    )
    p.add_argument(
        "--benchmarks", nargs="*", default=[],
        help="benchmarks to lock (default: the two smallest at the "
             "profile's scale)",
    )
    p.add_argument(
        "--check-paper", action=argparse.BooleanOptionalAction, default=True,
        help="exit non-zero when a measured verdict disagrees with the "
             "paper's Table I (default: on)",
    )
    add_profile(p)
    add_runner(p)
    add_opt(p)
    add_obs(p)
    p.set_defaults(func=cmd_matrix)

    p = sub.add_parser(
        "fuzz", help="run a seeded differential-fuzzing campaign"
    )
    p.add_argument(
        "--trials", type=int, default=None, metavar="N",
        help="number of sampled trials in the campaign (default 100)",
    )
    p.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="campaign seed; same seed + trials => identical campaign "
             "(default 0)",
    )
    p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop dispatching new trials after this many seconds",
    )
    p.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write shrunk failing trials here (e.g. .fuzz_corpus); "
             "omit to skip corpus persistence",
    )
    p.add_argument(
        "--shrink-limit", type=int, default=None, metavar="N",
        help="minimize at most N violations (default 8)",
    )
    add_profile(p)
    add_runner(p)
    add_opt(p)
    add_obs(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "fuzz-replay",
        help="re-demonstrate every crash-corpus entry",
        description="Replay a crash corpus (flat fuzz corpus or a farm's "
                    "<state>/corpus). Exit 0: every replayable entry still "
                    "reproduces (or the corpus is empty); exit 1: at least "
                    "one entry no longer reproduces; exit 2: the corpus is "
                    "damaged.",
    )
    p.add_argument(
        "corpus", nargs="?", default=".fuzz_corpus",
        help="corpus directory (default .fuzz_corpus)",
    )
    p.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="replay under this profile instead of the recorded one",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="print each entry's detail and trial params",
    )
    p.set_defaults(func=cmd_fuzz_replay)

    def _duration(text: str) -> float:
        from repro.config import parse_duration

        try:
            return parse_duration(text)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc))

    p = sub.add_parser(
        "farm", help="continuous fuzz farm (rolling, resumable rounds)"
    )
    farm_sub = p.add_subparsers(dest="farm_command", required=True)

    fp = farm_sub.add_parser(
        "run",
        help="run budgeted farm rounds against a state directory",
        description="Run coverage-scheduled fuzz rounds, persisting a "
                    "deduplicating corpus and checkpointing state after "
                    "every round (a killed run resumes byte-identically). "
                    "Exit 0: no violations this run; 1: violations found; "
                    "2: usage/state error.",
    )
    fp.add_argument(
        "--state", default=None, metavar="DIR",
        help="farm state directory: corpus + journal + checkpoint "
             "(default .repro_farm)",
    )
    fp.add_argument(
        "--budget", type=_duration, default=None, metavar="DURATION",
        help="wall-clock budget for this invocation, e.g. 90, 10m, 1h30m "
             "(stops starting new rounds past it)",
    )
    fp.add_argument(
        "--max-rounds", type=int, default=None, metavar="N",
        help="stop once the farm's lifetime round count reaches N "
             "(deterministic budget; default 0 = unbounded)",
    )
    fp.add_argument(
        "--round-trials", type=int, default=None, metavar="N",
        help="trials per round (default 24)",
    )
    fp.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="farm seed; must match the state directory's (default 0)",
    )
    fp.add_argument(
        "--attacks", nargs="*", default=[],
        help="restrict scheduling to these registered attacks",
    )
    fp.add_argument(
        "--defenses", nargs="*", default=[],
        help="restrict scheduling to these registered defenses",
    )
    add_profile(fp)
    add_runner(fp)
    add_opt(fp)
    add_obs(fp)
    fp.set_defaults(func=cmd_farm_run)

    fp = farm_sub.add_parser(
        "status", help="summarize a farm state directory"
    )
    fp.add_argument(
        "state", nargs="?", default=".repro_farm",
        help="farm state directory (default .repro_farm)",
    )
    fp.add_argument(
        "--json", action="store_true",
        help="emit the status block as JSON",
    )
    fp.set_defaults(func=cmd_farm_status)

    p = sub.add_parser(
        "config", help="validate and inspect experiment config profiles"
    )
    config_sub = p.add_subparsers(dest="config_command", required=True)

    cfp = config_sub.add_parser(
        "check",
        help="validate config profiles against the schema",
        description="Validate TOML/JSON config profiles. Every problem "
                    "is reported with its dotted key path (e.g. "
                    "fuzz.concurrency). Exit 0: all valid; 1: any issue.",
    )
    cfp.add_argument(
        "files", nargs="+", metavar="FILE",
        help="config profile(s) to validate",
    )
    cfp.add_argument(
        "--strict", action="store_true",
        help="also reject unknown keys and sections",
    )
    cfp.set_defaults(func=cmd_config_check)

    cfp = config_sub.add_parser(
        "show", help="print a profile's validated values as JSON"
    )
    cfp.add_argument("file", help="config profile to show")
    cfp.set_defaults(func=cmd_config_show)

    p = sub.add_parser(
        "cache", help="inspect and manage the result store"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    def add_cache_args(cp: argparse.ArgumentParser) -> None:
        cp.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="result store location (default: $REPRO_CACHE_DIR "
                 "or .repro_cache)",
        )
        cp.add_argument(
            "--cache-backend", choices=sorted(BACKENDS), default=None,
            help="result store backend (default: $REPRO_CACHE_BACKEND "
                 "or json)",
        )

    cp = cache_sub.add_parser("stats", help="describe the store's contents")
    add_cache_args(cp)
    cp.add_argument("--json", action="store_true",
                    help="emit the stats block as JSON")
    cp.set_defaults(func=cmd_cache_stats)

    cp = cache_sub.add_parser(
        "gc", help="evict oldest entries down to a size bound"
    )
    add_cache_args(cp)
    cp.add_argument(
        "--max-bytes", type=_parse_size, required=True, metavar="SIZE",
        help="size bound for the current version's entries "
             "(suffixes K/M/G/T accepted, e.g. 500M)",
    )
    cp.add_argument("--dry-run", action="store_true",
                    help="report what would be evicted without deleting")
    cp.add_argument("-v", "--verbose", action="store_true",
                    help="list each evicted entry")
    cp.set_defaults(func=cmd_cache_gc)

    cp = cache_sub.add_parser(
        "prune", help="drop entries from other code versions"
    )
    add_cache_args(cp)
    cp.set_defaults(func=cmd_cache_prune)

    cp = cache_sub.add_parser(
        "migrate", help="copy the cache into another backend byte-for-byte"
    )
    add_cache_args(cp)
    cp.add_argument(
        "--to", choices=sorted(BACKENDS), required=True,
        help="destination backend",
    )
    cp.add_argument(
        "--to-dir", default=None, metavar="DIR",
        help="destination store location (default: the source --cache-dir)",
    )
    cp.set_defaults(func=cmd_cache_migrate)

    p = sub.add_parser(
        "store-bench",
        help="head-to-head result-store backend benchmark",
    )
    p.add_argument("--entries", type=int, default=1500, metavar="N",
                   help="synthetic cells per backend (default 1500)")
    p.add_argument("--payload-bytes", type=int, default=1024, metavar="B",
                   help="approximate payload size per cell (default 1024)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (same seed => same bytes)")
    p.add_argument(
        "--backends", nargs="*", choices=sorted(BACKENDS), default=[],
        help="restrict the comparison (default: all backends)",
    )
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep the benchmark stores here instead of a "
                        "throwaway temp dir")
    p.add_argument("--emit-json", default=None, metavar="DIR",
                   help="write BENCH_store.json + .csv artifacts to DIR")
    p.set_defaults(func=cmd_store_bench)

    p = sub.add_parser(
        "run", help="run experiment grids through the parallel runner"
    )
    p.add_argument(
        "experiments", nargs="+", choices=sorted(GRID) + ["all"],
        help="which grids to run (or 'all')",
    )
    p.add_argument(
        "--benchmarks", nargs="*", default=[],
        help="restrict table2/table3 to these benchmarks",
    )
    add_profile(p)
    add_runner(p)
    add_opt(p)
    add_obs(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "serve", help="run the HTTP job API (attack-as-a-service)"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8537,
                   help="bind port (default 8537; 0 = pick a free one)")
    p.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes per job batch (1 = serial, 0 = one per core)",
    )
    p.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="share cached cells through --cache-dir "
             "(--no-resume serves without a store)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store location (default: $REPRO_CACHE_DIR "
             "or .repro_cache)",
    )
    p.add_argument(
        "--cache-backend", choices=sorted(BACKENDS), default=None,
        help="result store backend (default: $REPRO_CACHE_BACKEND or json)",
    )
    add_obs(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="run an experiment grid remotely through a server"
    )
    p.add_argument(
        "experiment", choices=sorted(GRID),
        help="which grid's specs to submit",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8537", metavar="URL",
        help="server base URL (default http://127.0.0.1:8537)",
    )
    p.add_argument(
        "--benchmarks", nargs="*", default=[],
        help="restrict table2/table3 to these benchmarks",
    )
    p.add_argument(
        "--batch-size", type=int, default=16, metavar="N",
        help="specs per POST from the batching client (default 16)",
    )
    p.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="status poll interval (default 0.2)",
    )
    p.add_argument(
        "--wait-timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting for results after this long (default 600)",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request HTTP timeout (default 30)",
    )
    p.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="retries per request on 5xx/connection errors (default 3)",
    )
    p.add_argument(
        "--emit-json", default=None, metavar="DIR",
        help="write BENCH_<experiment>.json + .csv artifacts to DIR",
    )
    add_profile(p)
    add_opt(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "top", help="live view over an instrumented run's metrics directory"
    )
    p.add_argument(
        "metrics_dir", nargs="?", default=None,
        help="metrics directory of the run to watch "
             "(default: $REPRO_METRICS_DIR or .repro_metrics)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh interval (default 2.0)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p.set_defaults(func=cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
