"""Structured JSON logging: one event per line, shared run context.

:class:`JsonLogger` writes newline-delimited JSON records -- never
free-form text -- so a fuzz farm's log pipeline can filter and join
them without regexes.  Every record carries the same envelope::

    {"ts": 1754650000.123, "level": "info", "event": "job_finished",
     "run_id": "f3a9c2d41b08", ...event fields...}

``ts`` is a unix timestamp, ``event`` is a stable snake_case name from
the catalogue in ``docs/observability.md``, and ``run_id`` ties every
line of one invocation together (the same id appears in span records
and artifact headers).  Event fields are JSON-safe by construction;
anything exotic is stringified rather than raising mid-run.
"""

from __future__ import annotations

import json
import time
from typing import IO


class JsonLogger:
    """Write structured events as JSON lines to one stream."""

    def __init__(self, stream: IO[str], *, run_id: str = "", close: bool = False) -> None:
        self._stream = stream
        self._close = close
        self.run_id = run_id

    def log(self, event: str, *, level: str = "info", **fields: object) -> None:
        """Emit one event record; never raises on unserialisable fields."""
        record: dict[str, object] = {
            "ts": round(time.time(), 3),
            "level": level,
            "event": event,
        }
        if self.run_id:
            record["run_id"] = self.run_id
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):
            line = json.dumps(
                {"ts": record["ts"], "level": "error", "event": "log_encode_failed"}
            )
        self._stream.write(line + "\n")
        try:
            self._stream.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        """Close the underlying stream iff this logger owns it."""
        if self._close:
            try:
                self._stream.close()
            except OSError:
                pass
