"""A dependency-free Prometheus-style metrics registry.

Three instrument kinds cover everything the runner and the service
need:

* :class:`Counter` -- a monotonically increasing sum per label set
  (jobs finished, store hits, DIPs enumerated, seconds spent per
  phase);
* :class:`Gauge` -- a settable/up-down value per label set (service
  queue depth, in-flight jobs);
* :class:`Histogram` -- cumulative-bucket distributions per label set
  (job durations, queue latency), with the classic Prometheus
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` exposition.

A :class:`MetricsRegistry` owns the instruments and renders them either
as Prometheus text exposition (:meth:`MetricsRegistry.render_prom`,
scrape-compatible) or as a JSON-safe dict
(:meth:`MetricsRegistry.as_dict`, embedded in ``BENCH_obs.json``).
Everything is plain in-process Python -- no sockets, no threads, no
third-party client library -- because the runner only needs to
*export* metrics at the end of a run, not serve them.

Rendering is deterministic: metric names, label keys, and label sets
are all emitted in sorted order, so two runs that observe the same
events produce byte-identical ``metrics.prom`` files.
"""

from __future__ import annotations

from typing import Iterable, Mapping

#: Default histogram buckets, in seconds: solver cells span ~10ms
#: (cached/selfcheck) to minutes (paper-profile Table III rows).
DEFAULT_BUCKETS = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing metric, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` (default 1) to the series selected by ``labels``."""
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {value})")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels: object) -> float:
        """Current value of one series (0 if never incremented)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> list[tuple[LabelKey, float]]:
        """All ``(label_key, value)`` pairs, sorted for determinism."""
        return sorted(self._series.items())

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} counter")
        for key, value in self.series():
            lines.append(f"{self.name}{_format_labels(key)} {_format_value(value)}")
        return lines

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value} for key, value in self.series()
            ],
        }


class Gauge:
    """A value that can go up, down, or be set outright; per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        self._series[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` (default 1; may be negative) to one series."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels: object) -> None:
        """Subtract ``value`` (default 1) from one series."""
        self.inc(-value, **labels)

    def value(self, **labels: object) -> float:
        """Current value of one series (0 if never touched)."""
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> list[tuple[LabelKey, float]]:
        """All ``(label_key, value)`` pairs, sorted for determinism."""
        return sorted(self._series.items())

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} gauge")
        for key, value in self.series():
            lines.append(f"{self.name}{_format_labels(key)} {_format_value(value)}")
        return lines

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": value} for key, value in self.series()
            ],
        }


class Histogram:
    """A cumulative-bucket distribution, one series per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(set(buckets if buckets is not None else DEFAULT_BUCKETS)))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        # Per label set: per-bucket counts (non-cumulative, +Inf last),
        # running sum, and observation count.
        self._series: dict[LabelKey, dict] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation in the series selected by ``labels``."""
        key = _label_key(labels)
        entry = self._series.get(key)
        if entry is None:
            entry = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            self._series[key] = entry
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                entry["counts"][i] += 1
                break
        else:
            entry["counts"][-1] += 1
        entry["sum"] += value
        entry["count"] += 1

    def stats(self, **labels: object) -> tuple[int, float]:
        """``(count, sum)`` of one series (``(0, 0.0)`` if empty)."""
        entry = self._series.get(_label_key(labels))
        if entry is None:
            return 0, 0.0
        return entry["count"], entry["sum"]

    def series(self) -> list[tuple[LabelKey, dict]]:
        return sorted(self._series.items())

    def _cumulative(self, entry: dict) -> list[int]:
        out, running = [], 0
        for count in entry["counts"]:
            running += count
            out.append(running)
        return out

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} histogram")
        for key, entry in self.series():
            cumulative = self._cumulative(entry)
            bounds = [_format_value(float(b)) for b in self.buckets] + ["+Inf"]
            for bound, count in zip(bounds, cumulative):
                bucket_key = key + (("le", bound),)
                lines.append(
                    f"{self.name}_bucket{_format_labels(bucket_key)} {count}"
                )
            lines.append(
                f"{self.name}_sum{_format_labels(key)} {_format_value(entry['sum'])}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {entry['count']}")
        return lines

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(key),
                    "count": entry["count"],
                    "sum": entry["sum"],
                    "bucket_counts": list(entry["counts"]),
                }
                for key, entry in self.series()
            ],
        }


class MetricsRegistry:
    """Owns counters, gauges, and histograms; get-or-create by name."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Return the counter called ``name``, creating it on first use."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Return the gauge called ``name``, creating it on first use."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None
    ) -> Histogram:
        """Return the histogram called ``name``, creating it on first use."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(f"metric {name} already registered as {metric.kind}")
        return metric

    def _get_or_create(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name} already registered as {metric.kind}")
        return metric

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def render_prom(self) -> str:
        """Prometheus text exposition of every registered metric."""
        lines: list[str] = []
        for metric in self:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict:
        """JSON-safe snapshot, keyed by metric name."""
        return {metric.name: metric.as_dict() for metric in self}
