"""``dynunlock top``: a live text view over a run's metrics directory.

The view is reconstructed purely from the files an
:class:`~repro.observability.session.ObsSession` streams to disk
(``run.json`` + ``spans.jsonl``), so it works on a run in progress in
another process, on a finished run, or on a copy of the directory
downloaded from CI.  A job counts as *running* when its ``submitted``
record has no matching ``span`` record yet -- which is exactly how you
spot a stuck cell from the outside.

:func:`load_snapshot` is tolerant by construction: missing files give
an empty snapshot, and a torn trailing JSONL line (the writer may be
mid-append) is skipped rather than fatal.  :func:`render_top` is a pure
function of the snapshot and a clock, so tests can render canned runs
deterministically.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.observability.session import SUMMARY_PHASES, aggregate_spans


@dataclass
class RunSnapshot:
    """Everything :func:`render_top` needs, parsed from one metrics dir."""

    run: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    submitted: dict[int, dict] = field(default_factory=dict)
    farm_rounds: list[dict] = field(default_factory=list)

    @property
    def running(self) -> list[dict]:
        """Submitted records with no finished span yet (oldest first)."""
        done = {span.get("job_id") for span in self.spans}
        live = [rec for job_id, rec in self.submitted.items() if job_id not in done]
        return sorted(live, key=lambda rec: rec.get("t", 0.0))


def load_snapshot(metrics_dir: str | Path) -> RunSnapshot:
    """Parse ``run.json`` + ``spans.jsonl`` from ``metrics_dir``."""
    root = Path(metrics_dir)
    snapshot = RunSnapshot()
    run_path = root / "run.json"
    if run_path.is_file():
        try:
            snapshot.run = json.loads(run_path.read_text())
        except ValueError:
            snapshot.run = {}
    spans_path = root / "spans.jsonl"
    if spans_path.is_file():
        for line in spans_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn trailing write
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if kind == "span":
                snapshot.spans.append(record)
            elif kind == "submitted":
                snapshot.submitted[record.get("job_id", -1)] = record
            elif kind == "farm_round":
                snapshot.farm_rounds.append(record)
    return snapshot


def _fmt_age(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m{seconds % 60:.0f}s"
    return f"{seconds / 3600:.1f}h"


def render_top(
    snapshot: RunSnapshot,
    *,
    now: float | None = None,
    max_running: int = 8,
    max_slowest: int = 5,
) -> str:
    """Render one frame of the live view as plain text."""
    from repro.reports.tables import render_table

    now = time.time() if now is None else now
    run = snapshot.run
    lines: list[str] = []
    run_id = run.get("run_id", "?")
    command = run.get("command") or "?"
    started = run.get("started_unix")
    uptime = f"  up {_fmt_age(now - started)}" if started else ""
    n_done = len(snapshot.spans)
    n_cached = sum(1 for s in snapshot.spans if s.get("status") == "cached")
    n_failed = sum(1 for s in snapshot.spans if s.get("status") == "failed")
    running = snapshot.running
    lines.append(f"run {run_id} ({command}){uptime}")
    lines.append(
        f"jobs: {n_done} done ({n_cached} cached, {n_failed} failed), "
        f"{len(running)} running"
    )
    if snapshot.farm_rounds:
        latest = snapshot.farm_rounds[-1]
        lines.append(
            f"farm: round {latest.get('round', 0) + 1} done, "
            f"{latest.get('trials_total', 0)} trials, "
            f"{latest.get('violations_total', 0)} violation(s), "
            f"corpus {latest.get('corpus_entries', 0)}, "
            f"cells {latest.get('cells_covered', 0)}"
            f"/{latest.get('n_cells', 0)}, "
            f"{float(latest.get('trials_per_s', 0.0)):.1f} trials/s"
        )
        hot = latest.get("hot_cells") or []
        for cell in hot[:3]:
            try:
                key, trials, violations = cell
            except (TypeError, ValueError):
                continue
            lines.append(
                f"  hot cell {key}: {trials} trials, "
                f"{violations} violation(s)"
            )
    if snapshot.spans:
        headers, rows = aggregate_spans(snapshot.spans)
        lines.append("")
        lines.append(render_table(headers, rows, title="Where the time went"))
    if running:
        lines.append("")
        lines.append("running jobs:")
        for rec in running[:max_running]:
            age = _fmt_age(now - rec.get("t", now))
            lines.append(f"  #{rec.get('job_id', '?')} {rec.get('label', '?')} — {age}")
        if len(running) > max_running:
            lines.append(f"  ... and {len(running) - max_running} more")
    computed = [s for s in snapshot.spans if s.get("status") == "computed"]
    if computed:
        slowest = sorted(
            computed, key=lambda s: -float(s.get("duration_s", 0.0))
        )[:max_slowest]
        lines.append("")
        lines.append("slowest completed:")
        for span in slowest:
            detail = ", ".join(
                f"{p}={float(span.get('phases', {}).get(p, 0.0)):.2f}s"
                for p in SUMMARY_PHASES
                if p != "queue" and span.get("phases", {}).get(p)
            )
            counts = span.get("counts") or {}
            if counts.get("dips"):
                detail += f"{', ' if detail else ''}dips={counts['dips']}"
            suffix = f" ({detail})" if detail else ""
            lines.append(
                f"  {span.get('label', '?')} — "
                f"{float(span.get('duration_s', 0.0)):.2f}s{suffix}"
            )
    return "\n".join(lines) + "\n"


def watch(
    metrics_dir: str | Path,
    *,
    interval: float = 2.0,
    once: bool = False,
    out=None,
) -> int:
    """The ``dynunlock top`` loop: render, sleep, repeat until Ctrl-C."""
    import sys

    out = sys.stdout if out is None else out
    root = Path(metrics_dir)
    if not root.is_dir():
        print(f"error: no metrics directory at {root}", file=sys.stderr)
        return 2
    while True:
        frame = render_top(load_snapshot(root))
        if once:
            out.write(frame)
            return 0
        # ANSI clear-screen + home keeps the frame in place like top(1).
        out.write("\x1b[2J\x1b[H" + frame)
        out.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
