"""Per-job span accumulation, zero-cost when nobody is listening.

A *span* is the instrumented life of one cell execution: wall-clock
endpoints, named phase timings (``model``/``opt``/``encode``/``solve``/
``oracle``/``enumerate``/``replay``), event counts (DIPs, oracle
queries, rounds), and free-form attributes.  The scheduler's worker
opens one span around :func:`repro.reports.cells.run_cell`
(:func:`begin_job_span` / :func:`end_job_span`), and the instrumented
hot paths -- :class:`~repro.attack.satattack.SatAttack`,
:class:`~repro.core.dynunlock.DynUnlock`, the opt pipeline -- report
into whichever span is active via module functions.

The design constraint is the tentpole's zero-cost-by-default rule:
when no span is open (the normal case -- metrics off), every hook here
is a single global-``None`` check and the :func:`phase` context manager
is a shared no-op instance, so instrumented code paths cost nothing
measurable and results stay byte-identical.  The current span is a
module global rather than a thread-local because cells run one-per-
process (the scheduler's pool workers and the serial path are both
single-threaded); the global also survives ``fork`` harmlessly -- a
forked worker starts with no span until told otherwise.

Span dicts are JSON-safe and travel from pool workers back to the
scheduler inside the ``execute_job`` payload, *never* inside the cell
result itself -- cache entries and table rows are identical with
instrumentation on or off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

_CURRENT: JobSpan | None = None


@dataclass
class JobSpan:
    """One cell's in-flight instrumentation record."""

    experiment: str
    label: str
    spec_hash: str = ""
    started_unix: float = field(default_factory=time.time)
    phases: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    attrs: dict[str, object] = field(default_factory=dict)
    _t0: float = field(default_factory=time.perf_counter)


def active() -> bool:
    """Whether a span is currently collecting (the hot-path guard)."""
    return _CURRENT is not None


def current() -> JobSpan | None:
    """The open span, if any."""
    return _CURRENT


def begin_job_span(experiment: str, label: str, spec_hash: str = "") -> JobSpan:
    """Open a span and make it the collection target for this process."""
    global _CURRENT
    span = JobSpan(experiment=experiment, label=label, spec_hash=spec_hash)
    _CURRENT = span
    return span


def end_job_span(span: JobSpan) -> dict:
    """Close ``span`` and return its JSON-safe record."""
    global _CURRENT
    if _CURRENT is span:
        _CURRENT = None
    ended_unix = time.time()
    return {
        "experiment": span.experiment,
        "label": span.label,
        "spec_hash": span.spec_hash,
        "started_unix": round(span.started_unix, 6),
        "ended_unix": round(ended_unix, 6),
        "duration_s": time.perf_counter() - span._t0,
        "phases": {k: span.phases[k] for k in sorted(span.phases)},
        "counts": {k: span.counts[k] for k in sorted(span.counts)},
        "attrs": dict(span.attrs),
    }


def add_phase(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` into the active span's phase ``name``."""
    span = _CURRENT
    if span is not None:
        span.phases[name] = span.phases.get(name, 0.0) + seconds


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to the active span's count ``name``."""
    span = _CURRENT
    if span is not None:
        span.counts[name] = span.counts.get(name, 0) + n


def annotate(**attrs: object) -> None:
    """Attach free-form JSON-safe attributes to the active span."""
    span = _CURRENT
    if span is not None:
        span.attrs.update(attrs)


class _NullPhase:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class _Phase:
    __slots__ = ("name", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t0 = 0.0

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        add_phase(self.name, time.perf_counter() - self._t0)
        return False


_NULL_PHASE = _NullPhase()


def phase(name: str):
    """Context manager timing a phase; a shared no-op when no span is open."""
    if _CURRENT is None:
        return _NULL_PHASE
    return _Phase(name)
