"""Production observability for the runner: logs, spans, metrics, top.

The ROADMAP item this package implements: at fuzz-farm/service scale
you cannot find hot paths or stuck jobs from stdout.  Four pieces,
composable and dependency-free:

* :mod:`repro.observability.logs` -- structured JSON logging with a
  shared run-id context (``--log-json``);
* :mod:`repro.observability.spans` -- per-job spans collected inside
  workers (queue→encode→solve→replay timings, DIP counts, opt stats),
  zero-cost when off;
* :mod:`repro.observability.metrics` -- a Prometheus-style
  counter/histogram registry exported as ``metrics.prom`` and a
  ``BENCH_obs.json`` artifact;
* :mod:`repro.observability.top` -- the ``dynunlock top`` live view
  over a run's streamed span file.

:mod:`repro.observability.session` ties them together per CLI
invocation.  See ``docs/observability.md`` for the span/metric
catalogue and the log schema.
"""

from repro.observability.logs import JsonLogger
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.session import (
    OBS_SCHEMA_VERSION,
    SUMMARY_PHASES,
    ObsSession,
    RunObserver,
    aggregate_spans,
    current_session,
    end_session,
    install_session,
    start_session,
    store_event,
)
from repro.observability.spans import (
    JobSpan,
    active,
    add_phase,
    annotate,
    begin_job_span,
    end_job_span,
    incr,
    phase,
)

__all__ = [
    "JsonLogger",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS_SCHEMA_VERSION",
    "SUMMARY_PHASES",
    "ObsSession",
    "RunObserver",
    "aggregate_spans",
    "current_session",
    "end_session",
    "install_session",
    "start_session",
    "store_event",
    "JobSpan",
    "active",
    "add_phase",
    "annotate",
    "begin_job_span",
    "end_job_span",
    "incr",
    "phase",
]
