"""The per-invocation observability session and the runner observer.

One :class:`ObsSession` exists per instrumented CLI invocation (started
by ``--metrics-dir`` / ``--log-json``, or programmatically via
:func:`start_session`).  It owns the run id, the structured
:class:`~repro.observability.logs.JsonLogger`, the
:class:`~repro.observability.metrics.MetricsRegistry`, and -- when a
metrics directory is given -- the on-disk artifacts:

* ``run.json`` -- run identity (id, command, argv, start time);
* ``spans.jsonl`` -- streamed per-job records (``kind: submitted`` when
  a job is dispatched, ``kind: span`` when it finishes), appended as
  they happen so ``dynunlock top`` can watch a live run;
* ``metrics.prom`` -- Prometheus text exposition, written at
  :meth:`ObsSession.finalize`;
* ``BENCH_obs.json``/``.csv`` -- the per-experiment phase-time summary
  as a standard artifact.

:class:`RunObserver` is the bridge the scheduler calls: it stamps
submit times (queue latency), folds finished
:class:`~repro.runner.scheduler.JobOutcome` spans into metrics, and
streams the records out.  The session is held in a module global so
the store backends can report hits/misses through :func:`store_event`
without any plumbing -- and so that, with no session active, that
report is a single ``None`` check (the zero-cost-by-default rule).
The global is parent-process state: pool workers inherit it across
``fork`` but never touch it -- worker-side instrumentation goes
through :mod:`repro.observability.spans` only.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import IO

from repro.observability.logs import JsonLogger
from repro.observability.metrics import MetricsRegistry

#: Schema of the ``run.json`` / ``spans.jsonl`` record layout.
OBS_SCHEMA_VERSION = 1

#: Phase columns of the ``BENCH_obs`` summary, in reporting order;
#: phases outside this list (e.g. ``opt``, ``enumerate``) fold into
#: the ``Other`` column.  Catalogue: ``docs/observability.md``.
SUMMARY_PHASES = ("queue", "model", "encode", "solve", "oracle", "replay")

_SESSION: ObsSession | None = None


def current_session() -> ObsSession | None:
    """The active session, if any."""
    return _SESSION


def store_event(backend: str, event: str) -> None:
    """Count one result-store operation (``hit``/``miss``/``put``/...).

    Called from :class:`~repro.runner.stores.base.BaseStore` on every
    get/put; a bare ``None`` check when no session is active.
    """
    session = _SESSION
    if session is not None:
        session.metrics.counter(
            "repro_store_requests_total",
            "Result-store operations by backend and outcome",
        ).inc(backend=backend, event=event)


class ObsSession:
    """Run-scoped observability state; see the module docstring."""

    def __init__(
        self,
        *,
        metrics_dir: str | Path | None = None,
        log_json: str | Path | None = None,
        command: str = "",
        run_id: str | None = None,
        argv: list[str] | None = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.command = command
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self._finalized = False
        # Guards the span sink and the finalize flag: HTTP handler
        # threads and the service's job worker emit concurrently.
        self._lock = threading.Lock()
        self.metrics = MetricsRegistry()
        self.spans: list[dict] = []
        self.metrics_dir = Path(metrics_dir) if metrics_dir else None
        self._spans_fh: IO[str] | None = None
        if self.metrics_dir is not None:
            self.metrics_dir.mkdir(parents=True, exist_ok=True)
            (self.metrics_dir / "run.json").write_text(
                json.dumps(
                    {
                        "schema_version": OBS_SCHEMA_VERSION,
                        "run_id": self.run_id,
                        "command": command,
                        "argv": list(argv if argv is not None else sys.argv),
                        "started_unix": round(self.started_unix, 3),
                    },
                    indent=1,
                    sort_keys=True,
                )
                + "\n"
            )
            self._spans_fh = (self.metrics_dir / "spans.jsonl").open("a")
        self.logger: JsonLogger | None = None
        if log_json:
            if str(log_json) == "-":
                self.logger = JsonLogger(sys.stderr, run_id=self.run_id)
            else:
                path = Path(log_json)
                path.parent.mkdir(parents=True, exist_ok=True)
                self.logger = JsonLogger(path.open("a"), run_id=self.run_id, close=True)
        self.log(
            "run_started",
            command=command,
            metrics_dir=str(self.metrics_dir) if self.metrics_dir else None,
        )

    # -- event sinks ---------------------------------------------------------

    def log(self, event: str, *, level: str = "info", **fields: object) -> None:
        """Emit one structured log event (no-op without ``--log-json``)."""
        if self.logger is not None:
            self.logger.log(event, level=level, **fields)

    def emit(self, record: dict) -> None:
        """Stream one span-file record (and retain ``kind: span`` ones).

        Thread-safe: a long-lived service emits from its job worker
        while handler threads read, and interleaved writers must not
        tear ``spans.jsonl`` lines.
        """
        record = {"run_id": self.run_id, **record}
        with self._lock:
            if record.get("kind") == "span":
                self.spans.append(record)
            if self._spans_fh is not None:
                self._spans_fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._spans_fh.flush()

    # -- summary + teardown --------------------------------------------------

    def summary(self) -> tuple[list[str], list[list[object]]]:
        """Aggregate retained spans into the ``BENCH_obs`` table."""
        return aggregate_spans(self.spans)

    def write_metrics(self) -> None:
        """Snapshot ``metrics.prom`` now (no-op without a metrics dir).

        Long-lived servers call this between requests so ``dynunlock
        top`` and artifact uploads see live counter state; ``finalize``
        calls it one last time at teardown.
        """
        if self.metrics_dir is not None:
            (self.metrics_dir / "metrics.prom").write_text(self.metrics.render_prom())

    def finalize(self) -> None:
        """Write ``metrics.prom`` + ``BENCH_obs`` and close every sink.

        Idempotent: a long-lived server (or belt-and-braces teardown
        code) may call it any number of times; only the first call
        writes and closes anything.
        """
        with self._lock:
            if self._finalized:
                return
            self._finalized = True
        wall_s = time.perf_counter() - self._t0
        self.log(
            "run_finished",
            command=self.command,
            n_spans=len(self.spans),
            wall_s=round(wall_s, 3),
        )
        if self.metrics_dir is not None:
            self.write_metrics()
            from repro.runner.artifacts import write_artifact

            headers, rows = self.summary()
            write_artifact(
                self.metrics_dir,
                "obs",
                headers,
                rows,
                title=f"Observability summary — run {self.run_id}",
                meta={
                    "run_id": self.run_id,
                    "command": self.command,
                    "wall_s": round(wall_s, 3),
                    "n_spans": len(self.spans),
                    "metrics": self.metrics.as_dict(),
                },
            )
        with self._lock:
            if self._spans_fh is not None:
                self._spans_fh.close()
                self._spans_fh = None
        if self.logger is not None:
            self.logger.close()
            self.logger = None


def start_session(**kwargs) -> ObsSession:
    """Open the process-wide session; at most one may be active."""
    global _SESSION
    if _SESSION is not None:
        raise RuntimeError("an observability session is already active")
    _SESSION = ObsSession(**kwargs)
    return _SESSION


def install_session(session: ObsSession) -> bool:
    """Make ``session`` the process-wide session if the slot is free.

    Returns whether it was installed.  Unlike :func:`start_session`
    this never raises: a long-lived server constructs its session
    up front and opportunistically publishes it so module-global hooks
    (:func:`store_event`) flow into it, but tolerates another session
    already owning the slot (e.g. a test fixture's).
    """
    global _SESSION
    if _SESSION is not None:
        return False
    _SESSION = session
    return True


def end_session(session: ObsSession | None = None) -> None:
    """Finalize ``session`` (default: the current one) and clear the slot.

    Idempotent and re-entrant: calling it twice, calling it with no
    session active, or calling it with a session that was already
    replaced are all safe no-ops (finalize itself is idempotent).  The
    process-wide slot is only cleared when it still holds the session
    being ended -- so a server tearing down *its* session can never
    clobber a newer one, the global-clearing hazard class PR 7 fixed
    for nested CLI invocations.

    Finalize runs while the session is still current so the
    ``BENCH_obs`` artifact it writes stamps the session's own run id
    (``run_metadata`` resolves it via :func:`current_session`).
    """
    global _SESSION
    target = session if session is not None else _SESSION
    if target is None:
        return
    try:
        target.finalize()
    finally:
        if _SESSION is target:
            _SESSION = None


def aggregate_spans(spans: list[dict]) -> tuple[list[str], list[list[object]]]:
    """Fold span records into one row per experiment (phase-time columns)."""
    headers = ["Experiment", "Jobs", "Computed", "Cached", "Failed"]
    headers += [f"{p.capitalize()} (s)" for p in SUMMARY_PHASES]
    headers += ["Other (s)", "Total (s)"]
    by_exp: dict[str, dict] = {}
    for span in spans:
        agg = by_exp.setdefault(
            span.get("experiment", "?"),
            {"jobs": 0, "computed": 0, "cached": 0, "failed": 0, "phases": {}, "total": 0.0},
        )
        agg["jobs"] += 1
        status = span.get("status", "computed")
        agg[status if status in ("computed", "cached", "failed") else "computed"] += 1
        agg["total"] += float(span.get("duration_s", 0.0))
        phases = dict(span.get("phases") or {})
        phases["queue"] = phases.get("queue", 0.0) + float(span.get("queue_s", 0.0))
        for name, seconds in phases.items():
            agg["phases"][name] = agg["phases"].get(name, 0.0) + float(seconds)
    rows: list[list[object]] = []
    for exp in sorted(by_exp):
        agg = by_exp[exp]
        # "Other" = explicitly timed non-summary phases plus whatever part
        # of the job durations no phase accounted for.  Queue time is not
        # part of ``duration_s`` (it elapses before the worker starts), so
        # it is excluded from the unaccounted computation.
        known = sum(agg["phases"].get(p, 0.0) for p in SUMMARY_PHASES if p != "queue")
        other = sum(v for k, v in agg["phases"].items() if k not in SUMMARY_PHASES)
        other += max(0.0, agg["total"] - known - other)
        row: list[object] = [exp, agg["jobs"], agg["computed"], agg["cached"], agg["failed"]]
        row += [round(agg["phases"].get(p, 0.0), 3) for p in SUMMARY_PHASES]
        row += [round(other, 3), round(agg["total"], 3)]
        rows.append(row)
    return headers, rows


class RunObserver:
    """Scheduler-facing hooks: submit stamps, span folding, streaming."""

    #: Tells the scheduler to ask workers for span payloads.
    collect_spans = True

    def __init__(self, session: ObsSession) -> None:
        self.session = session
        self._submitted: dict[int, float] = {}

    def submitted(self, outcome) -> None:
        """A job left the scheduler for a worker (or the serial path)."""
        now = time.time()
        self._submitted[outcome.index] = now
        self.session.emit(
            {
                "kind": "submitted",
                "job_id": outcome.index,
                "experiment": outcome.spec.experiment,
                "label": outcome.spec.label,
                "t": round(now, 6),
            }
        )

    def finished(self, outcome) -> None:
        """A job landed: cached, computed, or failed."""
        span = getattr(outcome, "span", None) or {}
        now = time.time()
        status = (
            "failed" if not outcome.ok else ("cached" if outcome.cached else "computed")
        )
        started = float(span.get("started_unix", now))
        submit_t = self._submitted.get(outcome.index)
        queue_s = (
            max(0.0, started - submit_t) if (submit_t is not None and span) else 0.0
        )
        self._record(
            {
                "kind": "span",
                "job_id": outcome.index,
                "experiment": outcome.spec.experiment,
                "label": outcome.spec.label,
                "spec_hash": outcome.spec.spec_hash[:12],
                "status": status,
                "cached": outcome.cached,
                "attempts": outcome.attempts,
                "queue_s": round(queue_s, 6),
                "duration_s": outcome.duration_s,
                "started_unix": round(started, 6),
                "ended_unix": round(float(span.get("ended_unix", now)), 6),
                "phases": span.get("phases", {}),
                "counts": span.get("counts", {}),
                "attrs": span.get("attrs", {}),
                "error": outcome.error,
            }
        )

    def inline_span(self, span: dict, *, status: str = "computed", job_id: int = 0) -> None:
        """Record a span measured in-process (no scheduler involved)."""
        self._record(
            {
                "kind": "span",
                "job_id": job_id,
                "experiment": span.get("experiment", "?"),
                "label": span.get("label", "?"),
                "spec_hash": span.get("spec_hash", ""),
                "status": status,
                "cached": False,
                "attempts": 1,
                "queue_s": 0.0,
                "duration_s": span.get("duration_s", 0.0),
                "started_unix": span.get("started_unix", 0.0),
                "ended_unix": span.get("ended_unix", 0.0),
                "phases": span.get("phases", {}),
                "counts": span.get("counts", {}),
                "attrs": span.get("attrs", {}),
                "error": None,
            }
        )

    def _record(self, record: dict) -> None:
        metrics = self.session.metrics
        experiment = record["experiment"]
        metrics.counter(
            "repro_jobs_total", "Jobs finished by experiment and status"
        ).inc(experiment=experiment, status=record["status"])
        if record["status"] == "computed":
            metrics.histogram(
                "repro_job_duration_seconds", "Wall-clock of freshly computed jobs"
            ).observe(float(record["duration_s"]), experiment=experiment)
            metrics.histogram(
                "repro_job_queue_seconds", "Submit-to-start latency of computed jobs"
            ).observe(float(record["queue_s"]), experiment=experiment)
        for phase, seconds in (record.get("phases") or {}).items():
            metrics.counter(
                "repro_phase_seconds_total", "Seconds spent per instrumented phase"
            ).inc(float(seconds), experiment=experiment, phase=phase)
        if record["queue_s"]:
            metrics.counter(
                "repro_phase_seconds_total", "Seconds spent per instrumented phase"
            ).inc(float(record["queue_s"]), experiment=experiment, phase="queue")
        for name, count in (record.get("counts") or {}).items():
            metrics.counter(
                f"repro_{name}_total", f"Total {name} across instrumented jobs"
            ).inc(float(count), experiment=experiment)
        self.session.emit(record)
        self.session.log(
            "job_finished",
            job_id=record["job_id"],
            experiment=experiment,
            label=record["label"],
            status=record["status"],
            duration_s=round(float(record["duration_s"]), 6),
            queue_s=record["queue_s"],
            error=record["error"],
        )
