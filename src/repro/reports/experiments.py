"""Runners for every experiment in the paper's evaluation section.

Each ``run_*`` function mirrors one table/figure/claim and returns
structured rows; the benches and the CLI print them via
:mod:`repro.reports.tables`.  All randomness is derived from fixed
integer seeds, so two runs at the same profile produce identical rows
(modulo wall-clock columns).

Since PR 2 the runners no longer loop inline: they enumerate the
benchmark x config x seed grid as :class:`~repro.runner.spec.JobSpec`
cells (one per :mod:`repro.reports.cells` invocation) and push them
through :func:`repro.runner.scheduler.run_jobs`.  Every runner accepts

* ``jobs`` -- worker processes (1 = serial in-process, the default);
* ``store`` -- a :class:`~repro.runner.store.ResultStore` memoising
  finished cells, making re-runs resumable and incremental.

Parallel and serial runs aggregate identical cell results in identical
(spec) order, so the produced rows match cell-for-cell; with a store,
repeated runs are byte-identical including the timing columns.

The :data:`GRID` registry maps experiment names to (spec enumeration,
row aggregation) pairs so callers like ``dynunlock run`` can fuse
several experiments into one scheduler grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Callable, Sequence

from repro.bench_suite.registry import TABLE2_BENCHMARKS, TABLE3_BENCHMARKS
from repro.matrix.grid import MATRIX_HEADERS, matrix_rows, matrix_specs
from repro.netlist.netlist import Netlist
from repro.opt import resolve_level
from repro.reports.cells import _TABLE1_DEFENSES, table1_cell
from repro.reports.profiles import ExperimentProfile
from repro.runner.scheduler import JobOutcome, run_jobs
from repro.runner.spec import JobSpec
from repro.runner.store import ResultStore

ProgressFn = Callable[[str], None]


def _noop_progress(_: str) -> None:
    return None


_PROGRESS_KEYS = (
    "n_seed_candidates",
    "iterations",
    "time_s",
    "success",
    "exact_seed",
    "broken",
    "attack_success",
    "modeled_correctly",
)


def adapt_progress(progress: ProgressFn) -> Callable[[JobOutcome], None]:
    """Bridge the runner's outcome callbacks onto the string ProgressFn."""

    def callback(outcome: JobOutcome) -> None:
        if not outcome.ok:
            progress(f"{outcome.spec.label}: FAILED ({outcome.error})")
            return
        result = outcome.result or {}
        bits = []
        for key in _PROGRESS_KEYS:
            if key in result:
                value = result[key]
                text = f"{value:.1f}" if isinstance(value, float) else str(value)
                bits.append(f"{key}={text}")
        state = "cached" if outcome.cached else f"computed in {outcome.duration_s:.1f}s"
        progress(f"{outcome.spec.label}: {' '.join(bits)} [{state}]")

    return callback


def _run_grid(
    specs: Sequence[JobSpec],
    progress: ProgressFn,
    jobs: int,
    store: ResultStore | None,
) -> list[JobOutcome]:
    """Run one experiment's specs, failing loudly if any cell failed."""
    report = run_jobs(
        specs, jobs=jobs, store=store, progress=adapt_progress(progress)
    )
    report.raise_on_error()
    return report.outcomes


def run_grid_experiment(
    name: str,
    profile: ExperimentProfile,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
    observer=None,
    **spec_kwargs,
):
    """Run one :data:`GRID` experiment end to end: ``(rows, RunReport)``.

    The one-stop surface for callers (the CLI, scripts) that also want
    the scheduler accounting -- cached/computed counts, wall time --
    next to the aggregated paper-style rows.  ``observer`` (a
    :class:`~repro.observability.session.RunObserver`) turns on per-job
    span/metric collection; ``None`` keeps the run instrumentation-free.
    """
    experiment = GRID[name]
    specs = experiment.build_specs(profile, **spec_kwargs)
    report = run_jobs(
        specs,
        jobs=jobs,
        store=store,
        progress=adapt_progress(progress),
        observer=observer,
    )
    report.raise_on_error()
    return experiment.aggregate(report.outcomes), report


# ----------------------------------------------------------------------
# Table II: main attack results
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    """One row of the paper's Table II (averaged over LFSR seeds)."""

    benchmark: str
    n_scan_flops: int
    key_bits: int
    n_seed_candidates: float
    n_iterations: float
    time_s: float
    success_rate: float
    exact_seed_rate: float

    def as_cells(self) -> list[object]:
        return [
            self.benchmark,
            self.n_scan_flops,
            self.key_bits,
            self.n_seed_candidates,
            self.n_iterations,
            self.time_s,
            f"{self.success_rate:.0%}",
            f"{self.exact_seed_rate:.0%}",
        ]


TABLE2_HEADERS = [
    "Benchmark",
    "# Scan flops",
    "# Key bits",
    "# Seed candidates",
    "# Iterations",
    "Exec time (s)",
    "Success",
    "Exact seed",
]


def table2_specs(
    profile: ExperimentProfile,
    benchmarks: Sequence[str] | None = None,
    key_bits: int | None = None,
    experiment: str = "table2",
    opt_level: int | None = None,
) -> list[JobSpec]:
    """Enumerate the (benchmark x LFSR seed) grid for Table II.

    The *resolved* optimization level (explicit ``opt_level``, else
    ``REPRO_OPT_LEVEL``, else the default) always joins the cell params
    -- and hence the cache key -- so a level change in any form can
    never replay stale cached results.  Resolution happens here, in the
    driver process, not in the workers.
    """
    names = list(benchmarks) if benchmarks is not None else TABLE2_BENCHMARKS
    extra = {"opt_level": resolve_level(opt_level)}
    return [
        JobSpec.make(
            experiment,
            profile,
            benchmark=name,
            seed_index=seed_index,
            key_bits=key_bits,
            **extra,
        )
        for name in names
        for seed_index in range(profile.n_seeds)
    ]


def table2_rows(outcomes: Sequence[JobOutcome]) -> list[Table2Row]:
    """Average per-seed table2 cells into per-benchmark rows (spec order)."""
    grouped: dict[str, list[dict]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.spec.params["benchmark"], []).append(
            outcome.result
        )
    rows = []
    for name, cells in grouped.items():
        rows.append(
            Table2Row(
                benchmark=name,
                n_scan_flops=cells[0]["n_scan_flops"],
                key_bits=cells[0]["key_bits"],
                n_seed_candidates=mean(c["n_seed_candidates"] for c in cells),
                n_iterations=mean(c["iterations"] for c in cells),
                time_s=mean(c["time_s"] for c in cells),
                success_rate=mean(1.0 if c["success"] else 0.0 for c in cells),
                exact_seed_rate=mean(1.0 if c["exact_seed"] else 0.0 for c in cells),
            )
        )
    return rows


def run_table2_row(
    name: str,
    profile: ExperimentProfile,
    key_bits: int | None = None,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Table2Row:
    """Attack one benchmark for ``profile.n_seeds`` different LFSR seeds."""
    specs = table2_specs(profile, [name], key_bits=key_bits)
    outcomes = _run_grid(specs, progress, jobs, store)
    return table2_rows(outcomes)[0]


def run_table2(
    profile: ExperimentProfile,
    benchmarks: Sequence[str] | None = None,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[Table2Row]:
    """Run every Table II row at the given profile."""
    specs = table2_specs(profile, benchmarks)
    outcomes = _run_grid(specs, progress, jobs, store)
    return table2_rows(outcomes)


# ----------------------------------------------------------------------
# Table III: key-size scaling on the three largest circuits
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    """One cell of the paper's Table III (one circuit at one key size)."""

    benchmark: str
    key_bits: int
    n_seed_candidates: float
    n_iterations: float
    time_s: float
    success_rate: float

    def as_cells(self) -> list[object]:
        return [
            self.benchmark,
            self.key_bits,
            self.n_seed_candidates,
            self.n_iterations,
            self.time_s,
            f"{self.success_rate:.0%}",
        ]


TABLE3_HEADERS = [
    "Benchmark",
    "Key bits",
    "# Seed candidates",
    "# Iterations",
    "Exec time (s)",
    "Success",
]


def table3_specs(
    profile: ExperimentProfile,
    benchmarks: Sequence[str] | None = None,
    key_sizes: Sequence[int] | None = None,
    opt_level: int | None = None,
) -> list[JobSpec]:
    """Enumerate the (benchmark x key size x seed) grid for Table III."""
    names = list(benchmarks) if benchmarks is not None else TABLE3_BENCHMARKS
    sizes = (
        list(key_sizes) if key_sizes is not None else list(profile.table3_key_sizes)
    )
    specs: list[JobSpec] = []
    for name in names:
        for kb in sizes:
            specs.extend(
                table2_specs(
                    profile,
                    [name],
                    key_bits=kb,
                    experiment="table3",
                    opt_level=opt_level,
                )
            )
    return specs


def table3_rows(outcomes: Sequence[JobOutcome]) -> list[Table3Row]:
    """Average table3 cells into per-(benchmark, key size) rows."""
    grouped: dict[tuple[str, int], list[dict]] = {}
    for outcome in outcomes:
        key = (outcome.spec.params["benchmark"], outcome.spec.params["key_bits"])
        grouped.setdefault(key, []).append(outcome.result)
    rows = []
    for (name, _), cells in grouped.items():
        rows.append(
            Table3Row(
                benchmark=name,
                key_bits=cells[0]["key_bits"],
                n_seed_candidates=mean(c["n_seed_candidates"] for c in cells),
                n_iterations=mean(c["iterations"] for c in cells),
                time_s=mean(c["time_s"] for c in cells),
                success_rate=mean(1.0 if c["success"] else 0.0 for c in cells),
            )
        )
    return rows


def run_table3_cell(
    name: str,
    key_bits: int,
    profile: ExperimentProfile,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> Table3Row:
    """Attack one circuit at one key size (a single Table III cell)."""
    specs = table3_specs(profile, [name], [key_bits])
    outcomes = _run_grid(specs, progress, jobs, store)
    return table3_rows(outcomes)[0]


def run_table3(
    profile: ExperimentProfile,
    benchmarks: Sequence[str] | None = None,
    key_sizes: Sequence[int] | None = None,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[Table3Row]:
    """Run the full Table III sweep at the given profile."""
    specs = table3_specs(profile, benchmarks, key_sizes)
    outcomes = _run_grid(specs, progress, jobs, store)
    return table3_rows(outcomes)


# ----------------------------------------------------------------------
# Table I: the defense/attack evolution matrix
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One defense/attack pairing of the paper's Table I."""

    defense: str
    obfuscation_type: str
    attack: str
    broken: bool
    detail: str

    def as_cells(self) -> list[object]:
        return [
            self.defense,
            self.obfuscation_type,
            self.attack,
            "yes" if self.broken else "NO",
            self.detail,
        ]


TABLE1_HEADERS = ["Defense", "Obfuscation", "Attack", "Broken", "Detail"]


def table1_specs(
    profile: ExperimentProfile, opt_level: int | None = None
) -> list[JobSpec]:
    """Enumerate the four defense/attack pairings of Table I."""
    extra = {"opt_level": resolve_level(opt_level)}
    return [
        JobSpec.make("table1", profile, defense=defense, **extra)
        for defense in _TABLE1_DEFENSES
    ]


def table1_rows(outcomes: Sequence[JobOutcome]) -> list[Table1Row]:
    """Shape table1 cells into rows (one per defense, spec order)."""
    return [
        Table1Row(
            defense=o.result["defense"],
            obfuscation_type=o.result["obfuscation_type"],
            attack=o.result["attack"],
            broken=o.result["broken"],
            detail=o.result["detail"],
        )
        for o in outcomes
    ]


def run_table1(
    profile: ExperimentProfile,
    circuit: Netlist | None = None,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[Table1Row]:
    """Break each defense of Table I with its published attack.

    Runs on one mid-size circuit; key widths are kept small because the
    point is the four defense/attack pairings, not scaling.  Passing a
    custom ``circuit`` bypasses the scheduler and cache (a foreign
    netlist has no stable content identity to key on).
    """
    if circuit is not None:
        rows = []
        for defense in _TABLE1_DEFENSES:
            cell = table1_cell(profile, defense=defense, netlist=circuit)
            progress(f"table1 {cell['defense']}/{cell['attack']} "
                     f"broken={cell['broken']}")
            rows.append(
                Table1Row(
                    defense=cell["defense"],
                    obfuscation_type=cell["obfuscation_type"],
                    attack=cell["attack"],
                    broken=cell["broken"],
                    detail=cell["detail"],
                )
            )
        return rows
    outcomes = _run_grid(table1_specs(profile), progress, jobs, store)
    return table1_rows(outcomes)


# ----------------------------------------------------------------------
# Section IV scalability claim: candidates vs scan-flop count
# ----------------------------------------------------------------------
@dataclass
class ScalingRow:
    """One point of the Section IV flop-count scaling study."""

    n_flops: int
    key_bits: int
    n_seed_candidates: float
    n_iterations: float
    time_s: float

    def as_cells(self) -> list[object]:
        return [
            self.n_flops,
            self.key_bits,
            self.n_seed_candidates,
            self.n_iterations,
            self.time_s,
        ]


SCALING_HEADERS = [
    "# Scan flops",
    "Key bits",
    "# Seed candidates",
    "# Iterations",
    "Exec time (s)",
]


def scaling_specs(
    profile: ExperimentProfile,
    flop_counts: Sequence[int] = (12, 20, 36, 60),
    key_bits: int = 8,
    n_seeds: int | None = None,
    opt_level: int | None = None,
) -> list[JobSpec]:
    """Enumerate the (flop count x seed) grid of the scaling study."""
    seeds = n_seeds if n_seeds is not None else profile.n_seeds
    extra = {"opt_level": resolve_level(opt_level)}
    return [
        JobSpec.make(
            "scaling",
            profile,
            n_flops=n_flops,
            seed_index=seed_index,
            key_bits=key_bits,
            **extra,
        )
        for n_flops in flop_counts
        for seed_index in range(seeds)
    ]


def scaling_rows(outcomes: Sequence[JobOutcome]) -> list[ScalingRow]:
    """Average per-seed scaling cells into per-flop-count rows."""
    grouped: dict[int, list[dict]] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.spec.params["n_flops"], []).append(
            outcome.result
        )
    rows = []
    for n_flops, cells in grouped.items():
        rows.append(
            ScalingRow(
                n_flops=n_flops,
                key_bits=cells[0]["key_bits"],
                n_seed_candidates=mean(c["n_seed_candidates"] for c in cells),
                n_iterations=mean(c["iterations"] for c in cells),
                time_s=mean(c["time_s"] for c in cells),
            )
        )
    return rows


def run_flop_scaling(
    profile: ExperimentProfile,
    flop_counts: Sequence[int] = (12, 20, 36, 60),
    key_bits: int = 8,
    n_seeds: int | None = None,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[ScalingRow]:
    """Fixed key width, growing chains: candidates shrink, time grows."""
    specs = scaling_specs(profile, flop_counts, key_bits, n_seeds)
    outcomes = _run_grid(specs, progress, jobs, store)
    return scaling_rows(outcomes)


# ----------------------------------------------------------------------
# Section V: crypto/PUF-keyed defenses are out of scope (ablation)
# ----------------------------------------------------------------------
@dataclass
class AblationRow:
    """One PRNG variant of the Section V limitation study."""

    prng: str
    modeled_correctly: bool
    attack_success: bool
    exact_seed: bool

    def as_cells(self) -> list[object]:
        return [
            self.prng,
            "yes" if self.modeled_correctly else "NO",
            "yes" if self.attack_success else "NO",
            "yes" if self.exact_seed else "NO",
        ]


ABLATION_HEADERS = ["PRNG", "Linear model valid", "Attack success", "Exact seed"]


def ablation_specs(
    profile: ExperimentProfile,
    n_flops: int = 10,
    key_bits: int = 5,
    opt_level: int | None = None,
) -> list[JobSpec]:
    """Enumerate the LFSR-vs-nonlinear pair of the Section V ablation."""
    extra = {"opt_level": resolve_level(opt_level)}
    return [
        JobSpec.make(
            "ablation",
            profile,
            prng=prng,
            n_flops=n_flops,
            key_bits=key_bits,
            **extra,
        )
        for prng in ("lfsr", "nonlinear-filter")
    ]


def ablation_rows(outcomes: Sequence[JobOutcome]) -> list[AblationRow]:
    """Shape ablation cells into rows (one per PRNG variant)."""
    return [
        AblationRow(
            prng=o.result["prng"],
            modeled_correctly=o.result["modeled_correctly"],
            attack_success=o.result["attack_success"],
            exact_seed=o.result["exact_seed"],
        )
        for o in outcomes
    ]


def run_nonlinear_ablation(
    profile: ExperimentProfile,
    n_flops: int = 10,
    key_bits: int = 5,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store: ResultStore | None = None,
) -> list[AblationRow]:
    """LFSR vs nonlinear filter PRNG: the attack's stated limitation.

    With the LFSR, the linear seed model reproduces the oracle and the
    attack succeeds.  With the nonlinear PRNG swapped in (same interface,
    same taps public), the linear model mispredicts and the refinement
    step rejects every candidate -- reproducing Section V's discussion.
    """
    specs = ablation_specs(profile, n_flops, key_bits)
    outcomes = _run_grid(specs, progress, jobs, store)
    return ablation_rows(outcomes)


# ----------------------------------------------------------------------
# The grid registry: everything `dynunlock run` can fan out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridExperiment:
    """One named experiment: spec enumeration plus row aggregation."""

    name: str
    title: str
    headers: list[str]
    build_specs: Callable[..., list[JobSpec]]
    aggregate: Callable[[Sequence[JobOutcome]], list]


GRID: dict[str, GridExperiment] = {
    "table1": GridExperiment(
        "table1", "Table I", TABLE1_HEADERS, table1_specs, table1_rows
    ),
    "table2": GridExperiment(
        "table2", "Table II", TABLE2_HEADERS, table2_specs, table2_rows
    ),
    "table3": GridExperiment(
        "table3", "Table III", TABLE3_HEADERS, table3_specs, table3_rows
    ),
    "scaling": GridExperiment(
        "scaling", "Flop scaling", SCALING_HEADERS, scaling_specs, scaling_rows
    ),
    "ablation": GridExperiment(
        "ablation", "PRNG ablation", ABLATION_HEADERS, ablation_specs, ablation_rows
    ),
    "matrix": GridExperiment(
        "matrix",
        "Attack x defense resilience matrix",
        MATRIX_HEADERS,
        matrix_specs,
        matrix_rows,
    ),
}
