"""Runners for every experiment in the paper's evaluation section.

Each function mirrors one table/figure/claim and returns structured rows;
the benches and the CLI print them via :mod:`repro.reports.tables`.  All
randomness is derived from fixed integer seeds, so two runs at the same
profile produce identical rows (modulo wall-clock columns).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import Callable, Sequence

from repro.attack.scansat import scansat_attack_on_lock
from repro.attack.scansat_dyn import scansat_dyn_attack_on_lock
from repro.attack.shift_and_leak import shift_and_leak_on_lock
from repro.bench_suite.registry import (
    TABLE2_BENCHMARKS,
    TABLE3_BENCHMARKS,
    build_benchmark_netlist,
    get_benchmark,
)
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.dfs import lock_with_dfs
from repro.locking.dos import lock_with_dos
from repro.locking.eff import lock_with_eff
from repro.locking.effdyn import lock_with_effdyn
from repro.netlist.netlist import Netlist
from repro.reports.profiles import ExperimentProfile
from repro.util.rng import hash_label

ProgressFn = Callable[[str], None]


def _noop_progress(_: str) -> None:
    return None


# ----------------------------------------------------------------------
# Table II: main attack results
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    """One row of the paper's Table II (averaged over LFSR seeds)."""

    benchmark: str
    n_scan_flops: int
    key_bits: int
    n_seed_candidates: float
    n_iterations: float
    time_s: float
    success_rate: float
    exact_seed_rate: float

    def as_cells(self) -> list[object]:
        return [
            self.benchmark,
            self.n_scan_flops,
            self.key_bits,
            self.n_seed_candidates,
            self.n_iterations,
            self.time_s,
            f"{self.success_rate:.0%}",
            f"{self.exact_seed_rate:.0%}",
        ]


TABLE2_HEADERS = [
    "Benchmark",
    "# Scan flops",
    "# Key bits",
    "# Seed candidates",
    "# Iterations",
    "Exec time (s)",
    "Success",
    "Exact seed",
]


def run_table2_row(
    name: str,
    profile: ExperimentProfile,
    key_bits: int | None = None,
    progress: ProgressFn = _noop_progress,
) -> Table2Row:
    """Attack one benchmark for ``profile.n_seeds`` different LFSR seeds."""
    netlist = build_benchmark_netlist(name, scale=profile.scale)
    kb = profile.effective_key_bits(netlist.n_dffs, key_bits)

    candidates, iterations, times, successes, exacts = [], [], [], [], []
    for seed_index in range(profile.n_seeds):
        rng = random.Random(hash_label(seed_index, f"table2/{name}"))
        lock = lock_with_effdyn(netlist, key_bits=kb, rng=rng)
        result = dynunlock(
            netlist,
            lock.public_view(),
            lock.make_oracle(),
            DynUnlockConfig(
                timeout_s=profile.timeout_s,
                candidate_limit=profile.candidate_limit,
            ),
        )
        candidates.append(result.n_seed_candidates)
        iterations.append(result.iterations)
        times.append(result.runtime_s)
        successes.append(1.0 if result.success else 0.0)
        exacts.append(1.0 if result.recovered_seed == list(lock.seed) else 0.0)
        progress(
            f"table2 {name} seed {seed_index}: "
            f"cands={result.n_seed_candidates} iters={result.iterations} "
            f"t={result.runtime_s:.1f}s success={result.success}"
        )

    return Table2Row(
        benchmark=name,
        n_scan_flops=netlist.n_dffs,
        key_bits=kb,
        n_seed_candidates=mean(candidates),
        n_iterations=mean(iterations),
        time_s=mean(times),
        success_rate=mean(successes),
        exact_seed_rate=mean(exacts),
    )


def run_table2(
    profile: ExperimentProfile,
    benchmarks: Sequence[str] | None = None,
    progress: ProgressFn = _noop_progress,
) -> list[Table2Row]:
    """Run every Table II row at the given profile."""
    names = list(benchmarks) if benchmarks is not None else TABLE2_BENCHMARKS
    return [run_table2_row(name, profile, progress=progress) for name in names]


# ----------------------------------------------------------------------
# Table III: key-size scaling on the three largest circuits
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    """One cell of the paper's Table III (one circuit at one key size)."""
    benchmark: str
    key_bits: int
    n_seed_candidates: float
    n_iterations: float
    time_s: float
    success_rate: float

    def as_cells(self) -> list[object]:
        return [
            self.benchmark,
            self.key_bits,
            self.n_seed_candidates,
            self.n_iterations,
            self.time_s,
            f"{self.success_rate:.0%}",
        ]


TABLE3_HEADERS = [
    "Benchmark",
    "Key bits",
    "# Seed candidates",
    "# Iterations",
    "Exec time (s)",
    "Success",
]


def run_table3_cell(
    name: str,
    key_bits: int,
    profile: ExperimentProfile,
    progress: ProgressFn = _noop_progress,
) -> Table3Row:
    """Attack one circuit at one key size (a single Table III cell)."""
    row = run_table2_row(name, profile, key_bits=key_bits, progress=progress)
    return Table3Row(
        benchmark=name,
        key_bits=row.key_bits,
        n_seed_candidates=row.n_seed_candidates,
        n_iterations=row.n_iterations,
        time_s=row.time_s,
        success_rate=row.success_rate,
    )


def run_table3(
    profile: ExperimentProfile,
    benchmarks: Sequence[str] | None = None,
    key_sizes: Sequence[int] | None = None,
    progress: ProgressFn = _noop_progress,
) -> list[Table3Row]:
    """Run the full Table III sweep at the given profile."""
    names = list(benchmarks) if benchmarks is not None else TABLE3_BENCHMARKS
    sizes = list(key_sizes) if key_sizes is not None else list(
        profile.table3_key_sizes
    )
    return [
        run_table3_cell(name, kb, profile, progress=progress)
        for name in names
        for kb in sizes
    ]


# ----------------------------------------------------------------------
# Table I: the defense/attack evolution matrix
# ----------------------------------------------------------------------
@dataclass
class Table1Row:
    """One defense/attack pairing of the paper's Table I."""
    defense: str
    obfuscation_type: str
    attack: str
    broken: bool
    detail: str

    def as_cells(self) -> list[object]:
        return [
            self.defense,
            self.obfuscation_type,
            self.attack,
            "yes" if self.broken else "NO",
            self.detail,
        ]


TABLE1_HEADERS = ["Defense", "Obfuscation", "Attack", "Broken", "Detail"]


def run_table1(
    profile: ExperimentProfile,
    circuit: Netlist | None = None,
    progress: ProgressFn = _noop_progress,
) -> list[Table1Row]:
    """Break each defense of Table I with its published attack.

    Runs on one mid-size circuit; key widths are kept small because the
    point is the four defense/attack pairings, not scaling.
    """
    netlist = circuit if circuit is not None else build_benchmark_netlist(
        "s5378", scale=max(profile.scale, 8)
    )
    key_bits = profile.effective_key_bits(netlist.n_dffs, min(8, profile.key_bits))
    rows: list[Table1Row] = []

    rng = random.Random(hash_label(1, "table1/eff"))
    eff = lock_with_eff(netlist, key_bits=key_bits, rng=rng)
    result = scansat_attack_on_lock(eff, timeout_s=profile.timeout_s)
    rows.append(
        Table1Row(
            defense="EFF (2018)",
            obfuscation_type="Static",
            attack="ScanSAT",
            broken=result.success,
            detail=f"{result.iterations} iterations, {result.runtime_s:.1f}s",
        )
    )
    progress(f"table1 EFF/ScanSAT broken={result.success}")

    rng = random.Random(hash_label(2, "table1/dfs"))
    dfs = lock_with_dfs(netlist, key_bits=key_bits, rng=rng)
    sl_result = shift_and_leak_on_lock(dfs, timeout_s=profile.timeout_s)
    rows.append(
        Table1Row(
            defense="DFS (2018)",
            obfuscation_type="Static",
            attack="Shift-and-leak",
            broken=sl_result.success,
            detail=f"{sl_result.iterations} iterations, {sl_result.runtime_s:.1f}s",
        )
    )
    progress(f"table1 DFS/shift-and-leak broken={sl_result.success}")

    rng = random.Random(hash_label(3, "table1/dos"))
    dos = lock_with_dos(netlist, key_bits=key_bits, rng=rng, period_p=1)
    dyn_result = scansat_dyn_attack_on_lock(dos, timeout_s=profile.timeout_s)
    rows.append(
        Table1Row(
            defense="DOS (2017)",
            obfuscation_type="Dynamic (per pattern)",
            attack="ScanSAT-dyn",
            broken=dyn_result.success,
            detail=f"{dyn_result.iterations} iterations, {dyn_result.runtime_s:.1f}s",
        )
    )
    progress(f"table1 DOS/ScanSAT-dyn broken={dyn_result.success}")

    rng = random.Random(hash_label(4, "table1/effdyn"))
    effdyn = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
    du_result = dynunlock(
        netlist,
        effdyn.public_view(),
        effdyn.make_oracle(),
        DynUnlockConfig(timeout_s=profile.timeout_s),
    )
    rows.append(
        Table1Row(
            defense="EFF-Dyn (2019)",
            obfuscation_type="Dynamic (per cycle)",
            attack="DynUnlock (this work)",
            broken=du_result.success,
            detail=(
                f"{du_result.iterations} iterations, "
                f"{du_result.n_seed_candidates} candidates, "
                f"{du_result.runtime_s:.1f}s"
            ),
        )
    )
    progress(f"table1 EFF-Dyn/DynUnlock broken={du_result.success}")
    return rows


# ----------------------------------------------------------------------
# Section IV scalability claim: candidates vs scan-flop count
# ----------------------------------------------------------------------
@dataclass
class ScalingRow:
    """One point of the Section IV flop-count scaling study."""
    n_flops: int
    key_bits: int
    n_seed_candidates: float
    n_iterations: float
    time_s: float

    def as_cells(self) -> list[object]:
        return [
            self.n_flops,
            self.key_bits,
            self.n_seed_candidates,
            self.n_iterations,
            self.time_s,
        ]


SCALING_HEADERS = [
    "# Scan flops",
    "Key bits",
    "# Seed candidates",
    "# Iterations",
    "Exec time (s)",
]


def run_flop_scaling(
    profile: ExperimentProfile,
    flop_counts: Sequence[int] = (12, 20, 36, 60),
    key_bits: int = 8,
    n_seeds: int | None = None,
    progress: ProgressFn = _noop_progress,
) -> list[ScalingRow]:
    """Fixed key width, growing chains: candidates shrink, time grows."""
    from repro.bench_suite.generator import GeneratorConfig, generate_circuit

    seeds = n_seeds if n_seeds is not None else profile.n_seeds
    rows: list[ScalingRow] = []
    for n_flops in flop_counts:
        candidates, iterations, times = [], [], []
        for seed_index in range(seeds):
            rng = random.Random(hash_label(seed_index, f"scaling/{n_flops}"))
            config = GeneratorConfig(n_flops=n_flops, n_inputs=6, n_outputs=6)
            netlist = generate_circuit(config, rng, name=f"scale{n_flops}")
            lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
            result = dynunlock(
                netlist,
                lock.public_view(),
                lock.make_oracle(),
                DynUnlockConfig(timeout_s=profile.timeout_s),
            )
            candidates.append(result.n_seed_candidates)
            iterations.append(result.iterations)
            times.append(result.runtime_s)
            progress(
                f"scaling flops={n_flops} seed={seed_index}: "
                f"cands={result.n_seed_candidates} t={result.runtime_s:.1f}s"
            )
        rows.append(
            ScalingRow(
                n_flops=n_flops,
                key_bits=key_bits,
                n_seed_candidates=mean(candidates),
                n_iterations=mean(iterations),
                time_s=mean(times),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Section V: crypto/PUF-keyed defenses are out of scope (ablation)
# ----------------------------------------------------------------------
@dataclass
class AblationRow:
    """One PRNG variant of the Section V limitation study."""
    prng: str
    modeled_correctly: bool
    attack_success: bool
    exact_seed: bool

    def as_cells(self) -> list[object]:
        return [
            self.prng,
            "yes" if self.modeled_correctly else "NO",
            "yes" if self.attack_success else "NO",
            "yes" if self.exact_seed else "NO",
        ]


ABLATION_HEADERS = ["PRNG", "Linear model valid", "Attack success", "Exact seed"]


def run_nonlinear_ablation(
    profile: ExperimentProfile,
    n_flops: int = 10,
    key_bits: int = 5,
    progress: ProgressFn = _noop_progress,
) -> list[AblationRow]:
    """LFSR vs nonlinear filter PRNG: the attack's stated limitation.

    With the LFSR, the linear seed model reproduces the oracle and the
    attack succeeds.  With the nonlinear PRNG swapped in (same interface,
    same taps public), the linear model mispredicts and the refinement
    step rejects every candidate -- reproducing Section V's discussion.
    """
    from repro.bench_suite.generator import GeneratorConfig, generate_circuit
    from repro.core.modeling import build_combinational_model
    from repro.locking.effdyn import EffDynLock
    from repro.prng.nonlinear import NonlinearPrng
    from repro.scan.oracle import ScanOracle
    from repro.sim.logicsim import CombinationalSimulator
    from repro.util.bitvec import random_bits

    rng = random.Random(hash_label(0, "ablation/nonlinear"))
    config = GeneratorConfig(n_flops=n_flops, n_inputs=4, n_outputs=3)
    netlist = generate_circuit(config, rng, name="ablation")
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)

    rows: list[AblationRow] = []
    for prng_name in ("lfsr", "nonlinear-filter"):
        if prng_name == "lfsr":
            oracle = lock.make_oracle()
        else:
            oracle = ScanOracle(
                netlist,
                lock.spec,
                NonlinearPrng(
                    width=key_bits, seed_bits=list(lock.seed), taps=lock.lfsr_taps
                ),
            )
        # Model validity probe: does the linear model with the true seed
        # reproduce the oracle?
        model = build_combinational_model(
            netlist, lock.spec, lock.lfsr_taps, key_bits
        )
        sim = CombinationalSimulator(model.netlist)
        probe_rng = random.Random(1)
        model_valid = True
        for _ in range(6):
            pattern = random_bits(n_flops, probe_rng)
            pis = random_bits(len(netlist.inputs), probe_rng)
            response = oracle.query(pattern, pis)
            inputs = dict(zip(model.a_inputs, pattern))
            inputs.update(zip(model.pi_inputs, pis))
            inputs.update(zip(model.key_inputs, lock.seed))
            values = sim.run(inputs)
            if [values[n] for n in model.b_outputs] != response.scan_out:
                model_valid = False
                break

        result = dynunlock(
            netlist,
            lock.public_view(),
            oracle,
            DynUnlockConfig(timeout_s=profile.timeout_s),
        )
        rows.append(
            AblationRow(
                prng=prng_name,
                modeled_correctly=model_valid,
                attack_success=result.success,
                exact_seed=result.recovered_seed == list(lock.seed),
            )
        )
        progress(
            f"ablation {prng_name}: model_valid={model_valid} "
            f"success={result.success}"
        )
    return rows
