"""Single experiment cells: the unit of work the runner distributes.

Each function here computes exactly one grid cell of the paper's
evaluation -- one (benchmark, lock scheme, attack, profile, seed)
combination -- and returns a plain JSON-safe dict, so the result can be
pickled back from a worker process, memoised in the
:class:`~repro.runner.store.ResultStore`, and serialised into artifacts.

Determinism contract: every cell derives all randomness from
``hash_label`` streams keyed by its own parameters, and rebuilds its
netlist/lock from scratch.  That makes a cell's output independent of
which process runs it and of whatever ran before it in the same process
-- the property the parallel-equals-serial tests pin down.  The
aggregation back into paper-style rows lives in
:mod:`repro.reports.experiments`; keep averaging out of this module.

``CELL_RUNNERS`` is the name -> function registry the worker resolves
:class:`~repro.runner.spec.JobSpec.experiment` against.  Note Table III
reuses the ``table2`` cell *function* (same computation, wider keys) but
keeps its own experiment name, so the two tables' cache namespaces stay
distinct -- a table3 run never reads or clobbers table2 entries.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.fuzz.campaign import fuzz_cell
from repro.matrix.grid import matrix_cell
from repro.netlist.netlist import Netlist
from repro.reports.profiles import ExperimentProfile
from repro.util.rng import hash_label


def build_table2_lock(
    profile: ExperimentProfile,
    benchmark: str,
    seed_index: int = 0,
    key_bits: int | None = None,
):
    """The exact (netlist, lock, key_bits) a table2 cell attacks.

    Shared by :func:`table2_cell`, the ``dynunlock opt-bench`` gate,
    and the opt benches, so the RNG-label convention
    (``hash_label(seed_index, "table2/<benchmark>")``) and the key-width
    derivation live in one place.
    """
    from repro.bench_suite.registry import build_benchmark_netlist
    from repro.locking.effdyn import lock_with_effdyn

    netlist = build_benchmark_netlist(benchmark, scale=profile.scale)
    kb = profile.effective_key_bits(netlist.n_dffs, key_bits)
    rng = random.Random(hash_label(seed_index, f"table2/{benchmark}"))
    lock = lock_with_effdyn(netlist, key_bits=kb, rng=rng)
    return netlist, lock, kb


def table2_cell(
    profile: ExperimentProfile,
    *,
    benchmark: str,
    seed_index: int,
    key_bits: int | None = None,
    opt_level: int | None = None,
) -> dict[str, Any]:
    """Attack one Table II benchmark under one LFSR seed.

    ``opt_level`` pins the :mod:`repro.opt` preprocessing level; the
    spec builders always bake the resolved level into the params, so it
    participates in the cache key (None = resolve the active default
    here, for direct callers).
    """
    netlist, lock, kb = build_table2_lock(
        profile, benchmark, seed_index, key_bits
    )
    result = dynunlock(
        netlist,
        lock.public_view(),
        lock.make_oracle(),
        DynUnlockConfig(
            timeout_s=profile.timeout_s,
            candidate_limit=profile.candidate_limit,
            opt_level=opt_level,
        ),
    )
    return {
        "benchmark": benchmark,
        "seed_index": seed_index,
        "n_scan_flops": netlist.n_dffs,
        "key_bits": kb,
        "n_seed_candidates": result.n_seed_candidates,
        "iterations": result.iterations,
        "time_s": result.runtime_s,
        "success": bool(result.success),
        "exact_seed": result.recovered_seed == list(lock.seed),
    }


_TABLE1_DEFENSES = ("eff", "dfs", "dos", "effdyn")

# Historical RNG stream indices -- the original hand-written wiring
# numbered the defenses in this order, and the labels participate in
# the cache key, so they are preserved across the registry refactor.
_TABLE1_RNG_INDEX = {name: i + 1 for i, name in enumerate(_TABLE1_DEFENSES)}


def table1_cell(
    profile: ExperimentProfile,
    *,
    defense: str,
    netlist: Netlist | None = None,
    opt_level: int | None = None,
) -> dict[str, Any]:
    """Break one Table I defense with its published attack.

    Both sides resolve through the :mod:`repro.matrix.registry` plugin
    registry: the defense names its ``paper_attack`` and the adapter
    normalises the attack's result, so this cell carries no per-scheme
    wiring of its own.  ``netlist`` is only for callers holding a custom
    circuit (those runs bypass the cache); grid runs rebuild the
    deterministic default.
    """
    from repro.bench_suite.registry import build_benchmark_netlist
    from repro.matrix.registry import call_attack, get_attack, get_defense

    if defense not in _TABLE1_DEFENSES:
        raise ValueError(
            f"unknown table1 defense {defense!r}; known: {_TABLE1_DEFENSES}"
        )
    defense_spec = get_defense(defense)
    attack_spec = get_attack(defense_spec.paper_attack)
    if netlist is None:
        netlist = build_benchmark_netlist("s5378", scale=max(profile.scale, 8))
    key_bits = profile.effective_key_bits(netlist.n_dffs, min(8, profile.key_bits))

    rng = random.Random(
        hash_label(_TABLE1_RNG_INDEX[defense], f"table1/{defense}")
    )
    lock = defense_spec.build(netlist, key_bits, rng)
    outcome = call_attack(
        attack_spec,
        lock,
        profile=profile,
        timeout_s=profile.timeout_s,
        opt_level=opt_level,
    )
    return {
        "defense": defense_spec.display,
        "obfuscation_type": defense_spec.obfuscation,
        "attack": attack_spec.display,
        "broken": bool(outcome.success),
        "detail": outcome.detail,
        "time_s": outcome.runtime_s,
    }


def scaling_cell(
    profile: ExperimentProfile,
    *,
    n_flops: int,
    seed_index: int,
    key_bits: int,
    n_inputs: int = 6,
    n_outputs: int = 6,
    opt_level: int | None = None,
) -> dict[str, Any]:
    """One point of the Section IV flop-scaling study, one seed."""
    from repro.bench_suite.generator import GeneratorConfig, generate_circuit
    from repro.locking.effdyn import lock_with_effdyn

    rng = random.Random(hash_label(seed_index, f"scaling/{n_flops}"))
    config = GeneratorConfig(n_flops=n_flops, n_inputs=n_inputs, n_outputs=n_outputs)
    netlist = generate_circuit(config, rng, name=f"scale{n_flops}")
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)
    result = dynunlock(
        netlist,
        lock.public_view(),
        lock.make_oracle(),
        DynUnlockConfig(timeout_s=profile.timeout_s, opt_level=opt_level),
    )
    return {
        "n_flops": n_flops,
        "seed_index": seed_index,
        "key_bits": key_bits,
        "n_seed_candidates": result.n_seed_candidates,
        "iterations": result.iterations,
        "time_s": result.runtime_s,
    }


def ablation_cell(
    profile: ExperimentProfile,
    *,
    prng: str,
    n_flops: int,
    key_bits: int,
    opt_level: int | None = None,
) -> dict[str, Any]:
    """One PRNG variant of the Section V limitation study."""
    from repro.bench_suite.generator import GeneratorConfig, generate_circuit
    from repro.core.modeling import build_combinational_model
    from repro.locking.effdyn import lock_with_effdyn
    from repro.prng.nonlinear import NonlinearPrng
    from repro.scan.oracle import ScanOracle
    from repro.sim.logicsim import CombinationalSimulator
    from repro.util.bitvec import random_bits

    rng = random.Random(hash_label(0, "ablation/nonlinear"))
    config = GeneratorConfig(n_flops=n_flops, n_inputs=4, n_outputs=3)
    netlist = generate_circuit(config, rng, name="ablation")
    lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)

    if prng == "lfsr":
        oracle = lock.make_oracle()
    elif prng == "nonlinear-filter":
        oracle = ScanOracle(
            netlist,
            lock.spec,
            NonlinearPrng(
                width=key_bits, seed_bits=list(lock.seed), taps=lock.lfsr_taps
            ),
        )
    else:
        raise ValueError(f"unknown ablation prng {prng!r}")

    # Model validity probe: does the linear model with the true seed
    # reproduce the oracle?
    model = build_combinational_model(netlist, lock.spec, lock.lfsr_taps, key_bits)
    sim = CombinationalSimulator(model.netlist)
    probe_rng = random.Random(1)
    model_valid = True
    for _ in range(6):
        pattern = random_bits(n_flops, probe_rng)
        pis = random_bits(len(netlist.inputs), probe_rng)
        response = oracle.query(pattern, pis)
        inputs = dict(zip(model.a_inputs, pattern))
        inputs.update(zip(model.pi_inputs, pis))
        inputs.update(zip(model.key_inputs, lock.seed))
        values = sim.run(inputs)
        if [values[n] for n in model.b_outputs] != response.scan_out:
            model_valid = False
            break

    result = dynunlock(
        netlist,
        lock.public_view(),
        oracle,
        DynUnlockConfig(timeout_s=profile.timeout_s, opt_level=opt_level),
    )
    return {
        "prng": prng,
        "modeled_correctly": model_valid,
        "attack_success": bool(result.success),
        "exact_seed": result.recovered_seed == list(lock.seed),
        "time_s": result.runtime_s,
    }


def selfcheck_cell(
    profile: ExperimentProfile,
    *,
    duration_s: float = 0.0,
    fail_marker: str | None = None,
    payload: Any = None,
) -> dict[str, Any]:
    """Trivial cell for exercising the scheduler itself (tests, CI smoke).

    Sleeps ``duration_s`` (timeout tests), echoes ``payload``, and --
    when ``fail_marker`` names a path that does not exist yet -- creates
    it and raises once, so retry logic can be observed across processes.
    """
    if duration_s:
        time.sleep(duration_s)
    if fail_marker is not None:
        marker = Path(fail_marker)
        if not marker.exists():
            marker.write_text("failed once\n")
            raise RuntimeError("selfcheck: injected one-shot failure")
    return {"payload": payload, "slept_s": duration_s}


CellFn = Callable[..., dict]

CELL_RUNNERS: dict[str, CellFn] = {
    "table1": table1_cell,
    "table2": table2_cell,
    # Table III is the same computation at explicit key widths; it shares
    # the cell function but not the cache namespace (distinct experiment).
    "table3": table2_cell,
    "scaling": scaling_cell,
    "ablation": ablation_cell,
    "matrix": matrix_cell,
    "fuzz": fuzz_cell,
    "selfcheck": selfcheck_cell,
}


def run_cell(spec) -> dict[str, Any]:
    """Resolve and execute ``spec`` (a :class:`JobSpec`) in this process."""
    from repro.reports.profiles import profile_from_dict

    try:
        fn = CELL_RUNNERS[spec.experiment]
    except KeyError:
        raise KeyError(
            f"unknown experiment {spec.experiment!r}; known: {sorted(CELL_RUNNERS)}"
        ) from None
    profile = profile_from_dict(spec.profile)
    return fn(profile, **spec.params)
