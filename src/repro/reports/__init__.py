"""Experiment harness and paper-style table rendering.

:mod:`repro.reports.experiments` runs the paper's experiments (Tables
I-III plus the scalability and ablation studies) at a chosen profile;
:mod:`repro.reports.cells` holds the single-cell computations the
:mod:`repro.runner` scheduler fans out across cores;
:mod:`repro.reports.tables` renders the resulting rows in the same shape
the paper prints.  The pytest benches and the CLI are thin wrappers over
these functions, so `EXPERIMENTS.md` numbers are regenerable either way.
"""

from repro.reports.experiments import (
    GRID,
    GridExperiment,
    Table1Row,
    Table2Row,
    Table3Row,
    run_flop_scaling,
    run_grid_experiment,
    run_nonlinear_ablation,
    run_table1,
    run_table2,
    run_table2_row,
    run_table3,
    run_table3_cell,
)
from repro.reports.profiles import PROFILES, ExperimentProfile, active_profile
from repro.reports.tables import (
    render_artifact,
    render_markdown_table,
    render_table,
)

__all__ = [
    "ExperimentProfile",
    "GRID",
    "GridExperiment",
    "PROFILES",
    "active_profile",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "run_table1",
    "run_table2",
    "run_table2_row",
    "run_table3",
    "run_table3_cell",
    "run_flop_scaling",
    "run_grid_experiment",
    "run_nonlinear_ablation",
    "render_artifact",
    "render_table",
    "render_markdown_table",
]
