"""Experiment harness and paper-style table rendering.

:mod:`repro.reports.experiments` runs the paper's experiments (Tables
I-III plus the scalability and ablation studies) at a chosen profile;
:mod:`repro.reports.tables` renders the resulting rows in the same shape
the paper prints.  The pytest benches and the CLI are thin wrappers over
these functions, so `EXPERIMENTS.md` numbers are regenerable either way.
"""

from repro.reports.profiles import ExperimentProfile, PROFILES, active_profile
from repro.reports.experiments import (
    Table1Row,
    Table2Row,
    Table3Row,
    run_table1,
    run_table2,
    run_table2_row,
    run_table3,
    run_table3_cell,
    run_flop_scaling,
    run_nonlinear_ablation,
)
from repro.reports.tables import render_table, render_markdown_table

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "active_profile",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "run_table1",
    "run_table2",
    "run_table2_row",
    "run_table3",
    "run_table3_cell",
    "run_flop_scaling",
    "run_nonlinear_ablation",
    "render_table",
    "render_markdown_table",
]
