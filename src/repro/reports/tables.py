"""Plain-text and markdown table rendering for experiment results."""

from __future__ import annotations

from typing import Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width aligned table, paper style."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
