"""Plain-text and markdown table rendering for experiment results.

Tables render either from live row objects (the ``run_*`` functions in
:mod:`repro.reports.experiments`) or from a JSON artifact previously
emitted by :mod:`repro.runner.artifacts` -- see :func:`render_artifact`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width aligned table, paper style."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_artifact(
    artifact: str | Path | Mapping[str, Any], *, markdown: bool = False
) -> str:
    """Render a stored run artifact (path or loaded dict) as a table.

    Accepts either the path to a ``BENCH_*.json`` file written by
    :func:`repro.runner.artifacts.write_artifact` or its already-loaded
    payload, so CI logs and notebooks can re-render archived results
    without re-running anything.
    """
    from repro.runner.artifacts import load_artifact

    data = artifact if isinstance(artifact, Mapping) else load_artifact(artifact)
    if markdown:
        return render_markdown_table(data["headers"], data["rows"])
    return render_table(data["headers"], data["rows"], title=data.get("title"))


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
