"""Experiment size profiles.

The paper ran a 24-core Xeon with the lingeling C solver; this repo runs
a pure-Python CDCL.  Profiles keep the experiment *structure* identical
while shrinking instance sizes so the whole table regenerates on a
laptop:

* ``quick`` (default): circuits at 1/16 of the paper's scan-flop counts,
  16-bit keys, one LFSR seed per circuit.  Minutes for all of Table II.
* ``full``: 1/8 scale, 16-bit keys, two seeds.  Under an hour.
* ``paper``: the paper's sizes (128-bit keys, full flop counts, ten
  seeds).  Provided for completeness; expect *days* with a Python solver
  -- the substitution is documented in DESIGN.md/EXPERIMENTS.md.

Select with the ``REPRO_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class ExperimentProfile:
    """One named experiment size (scale, key width, seeds, budgets)."""
    name: str
    scale: int  # divides the paper's scan-flop counts
    key_bits: int  # Table II key size
    n_seeds: int  # LFSR seeds averaged per circuit (paper: 10)
    timeout_s: float  # per-attack wall-clock budget
    table3_key_sizes: tuple[int, ...]  # Table III sweep
    candidate_limit: int = 256

    def effective_key_bits(self, n_flops: int, requested: int | None = None) -> int:
        """Clamp the key width to the available key-gate slots."""
        want = requested if requested is not None else self.key_bits
        return min(want, n_flops - 1)


PROFILES: dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick",
        scale=16,
        key_bits=16,
        n_seeds=1,
        timeout_s=240.0,
        table3_key_sizes=(18, 20, 22),
    ),
    "full": ExperimentProfile(
        name="full",
        scale=8,
        key_bits=16,
        n_seeds=2,
        timeout_s=1200.0,
        table3_key_sizes=(18, 22, 26, 30),
    ),
    "paper": ExperimentProfile(
        name="paper",
        scale=1,
        key_bits=128,
        n_seeds=10,
        timeout_s=86_400.0,
        table3_key_sizes=tuple(range(144, 369, 16)),
    ),
}


def profile_to_dict(profile: ExperimentProfile) -> dict:
    """JSON-safe encoding of a profile (tuples become lists).

    This is what gets embedded in a :class:`repro.runner.spec.JobSpec`,
    so *every* field participates in the cache key -- changing a
    timeout, seed count, or scale invalidates affected cells.
    """
    data = asdict(profile)
    data["table3_key_sizes"] = list(profile.table3_key_sizes)
    return data


def profile_from_dict(data: dict) -> ExperimentProfile:
    """Inverse of :func:`profile_to_dict` (used inside worker processes)."""
    fields = dict(data)
    fields["table3_key_sizes"] = tuple(fields["table3_key_sizes"])
    return ExperimentProfile(**fields)


def active_profile() -> ExperimentProfile:
    """Profile selected by ``REPRO_PROFILE`` (default: quick)."""
    name = os.environ.get("REPRO_PROFILE", "quick").strip().lower()
    if name not in PROFILES:
        raise KeyError(
            f"unknown REPRO_PROFILE {name!r}; choose from {sorted(PROFILES)}"
        )
    return PROFILES[name]
