"""Terminal-friendly ASCII charts for experiment results.

No plotting dependency exists in this environment, so scaling trends
(Table III curves, the flop-count study) are rendered as ASCII charts in
bench output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def ascii_bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title or ""
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = 0 if peak == 0 else round(width * value / peak)
        bar = "#" * bar_len
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def ascii_line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 10,
    width: int = 50,
    title: str | None = None,
) -> str:
    """Scatter/line plot on a character grid (marks points with '*')."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return title or ""
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [title] if title else []
    lines.append(f"{y_max:>10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:>10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{x_min:<10.6g}{' ' * max(0, width - 20)}{x_max:>10.6g}")
    return "\n".join(lines)
