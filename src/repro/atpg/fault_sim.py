"""Fault simulation: does a pattern detect a stuck-at fault?

Implementation is evaluation with a net override: the faulty copy forces
the fault site to its stuck value and everything downstream recomputes.
Works on combinational netlists (use
:func:`repro.netlist.transform.extract_combinational_core` first for
sequential designs, which is exactly what scan-based testing does).

Two speeds:

* the scalar methods (:meth:`FaultSimulator.detects` and friends) keep
  the reference one-pattern-at-a-time semantics;
* :meth:`FaultSimulator.detection_lanes` and :func:`fault_coverage` run
  bit-parallel — patterns are packed 64 to a word, the good machine is
  simulated once per chunk, and each fault costs one more packed pass.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.atpg.faults import StuckAtFault
from repro.netlist.gates import evaluate_gate
from repro.netlist.netlist import Netlist, NetlistError
from repro.sim.logicsim import BitParallelSimulator, CombinationalSimulator
from repro.util.bitvec import PACK_WORD_BITS, lane_mask, pack_lanes


class FaultSimulator:
    """Evaluates a combinational netlist under injected stuck-at faults."""

    def __init__(self, netlist: Netlist):
        if netlist.dffs:
            raise NetlistError(
                "fault simulation operates on the combinational core"
            )
        self.netlist = netlist
        self._good_sim = CombinationalSimulator(netlist)
        self._packed_sim = BitParallelSimulator(netlist)
        self._order = netlist.topological_gates()

    def good_outputs(self, inputs: Mapping[str, int]) -> list[int]:
        """Fault-free output bits for one pattern."""
        values = self._good_sim.run(inputs)
        return [values[net] for net in self.netlist.outputs]

    def faulty_outputs(
        self, inputs: Mapping[str, int], fault: StuckAtFault
    ) -> list[int]:
        """Outputs with the fault injected."""
        values: dict[str, int] = {}
        for net in self.netlist.inputs:
            values[net] = inputs[net]
        if fault.net in values:
            values[fault.net] = fault.stuck_value
        for gate in self._order:
            result = evaluate_gate(gate.gtype, [values[n] for n in gate.inputs])
            if gate.output == fault.net:
                result = fault.stuck_value
            values[gate.output] = result
        return [values[net] for net in self.netlist.outputs]

    def detects(self, inputs: Mapping[str, int], fault: StuckAtFault) -> bool:
        """True when the pattern produces a fault-free/faulty mismatch."""
        return self.good_outputs(inputs) != self.faulty_outputs(inputs, fault)

    # ------------------------------------------------------------------
    # bit-parallel batch path
    # ------------------------------------------------------------------
    def pack_patterns(
        self, patterns: Sequence[Mapping[str, int]]
    ) -> list[tuple[dict[str, int], int, list[int]]]:
        """Column-pack patterns into 64-lane chunks for the batch methods.

        Each chunk is ``(packed inputs, lane count, fault-free output
        words)`` — the good machine is simulated once per chunk here, so
        a fault sweep over the same pattern set never recomputes it.
        """
        chunks: list[tuple[dict[str, int], int, list[int]]] = []
        inputs = self.netlist.inputs
        for start in range(0, len(patterns), PACK_WORD_BITS):
            chunk = patterns[start : start + PACK_WORD_BITS]
            rows = [[pattern[net] for net in inputs] for pattern in chunk]
            packed = dict(zip(inputs, pack_lanes(rows)))
            n_lanes = len(chunk)
            good = self._packed_sim.run_packed_outputs(packed, n_lanes)
            chunks.append((packed, n_lanes, good))
        return chunks

    def detection_lanes(
        self,
        packed_chunks: Sequence[tuple[Mapping[str, int], int, list[int]]],
        fault: StuckAtFault,
    ) -> bool:
        """Whether *any* packed pattern lane detects ``fault``.

        ``packed_chunks`` comes from :meth:`pack_patterns`; each chunk
        costs one packed pass with the stuck value forced at the fault
        site, compared word-wise against the precomputed good responses.
        """
        sim = self._packed_sim
        for packed, n_lanes, good in packed_chunks:
            stuck_word = lane_mask(n_lanes) if fault.stuck_value else 0
            faulty = sim.run_packed_outputs(
                packed, n_lanes, force={fault.net: stuck_word}
            )
            for g, f in zip(good, faulty):
                if g ^ f:
                    return True
        return False


def fault_coverage(
    netlist: Netlist,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
) -> float:
    """Fraction of ``faults`` detected by at least one pattern.

    Bit-parallel: the pattern set is packed once, the fault-free machine
    simulated once per 64-lane chunk, and each fault adds a single packed
    pass with the stuck value forced at the fault site.
    """
    if not faults:
        return 1.0
    sim = FaultSimulator(netlist)
    chunks = sim.pack_patterns(patterns)
    detected = 0
    for fault in faults:
        if sim.detection_lanes(chunks, fault):
            detected += 1
    return detected / len(faults)
