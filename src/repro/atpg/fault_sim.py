"""Fault simulation: does a pattern detect a stuck-at fault?

Implementation is evaluation with a net override: the faulty copy forces
the fault site to its stuck value and everything downstream recomputes.
Works on combinational netlists (use
:func:`repro.netlist.transform.extract_combinational_core` first for
sequential designs, which is exactly what scan-based testing does).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.atpg.faults import StuckAtFault
from repro.netlist.gates import evaluate_gate
from repro.netlist.netlist import Netlist, NetlistError
from repro.sim.logicsim import CombinationalSimulator


class FaultSimulator:
    """Evaluates a combinational netlist under injected stuck-at faults."""

    def __init__(self, netlist: Netlist):
        if netlist.dffs:
            raise NetlistError(
                "fault simulation operates on the combinational core"
            )
        self.netlist = netlist
        self._good_sim = CombinationalSimulator(netlist)
        self._order = netlist.topological_gates()

    def good_outputs(self, inputs: Mapping[str, int]) -> list[int]:
        values = self._good_sim.run(inputs)
        return [values[net] for net in self.netlist.outputs]

    def faulty_outputs(
        self, inputs: Mapping[str, int], fault: StuckAtFault
    ) -> list[int]:
        """Outputs with the fault injected."""
        values: dict[str, int] = {}
        for net in self.netlist.inputs:
            values[net] = inputs[net]
        if fault.net in values:
            values[fault.net] = fault.stuck_value
        for gate in self._order:
            result = evaluate_gate(gate.gtype, [values[n] for n in gate.inputs])
            if gate.output == fault.net:
                result = fault.stuck_value
            values[gate.output] = result
        return [values[net] for net in self.netlist.outputs]

    def detects(self, inputs: Mapping[str, int], fault: StuckAtFault) -> bool:
        return self.good_outputs(inputs) != self.faulty_outputs(inputs, fault)


def fault_coverage(
    netlist: Netlist,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
) -> float:
    """Fraction of ``faults`` detected by at least one pattern."""
    if not faults:
        return 1.0
    sim = FaultSimulator(netlist)
    detected = 0
    for fault in faults:
        if any(sim.detects(pattern, fault) for pattern in patterns):
            detected += 1
    return detected / len(faults)
