"""SAT-based automatic test pattern generation.

For a stuck-at fault, build the standard ATPG miter -- a good copy and a
faulty copy sharing primary inputs, constrained to differ on at least one
output -- and hand it to the project's CDCL solver.  SAT model = test
pattern; UNSAT = fault untestable (redundant logic).

This reuses the exact machinery the attacks use (Tseitin encoder +
solver), which is fitting: the SAT attack literature grew out of ATPG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atpg.faults import StuckAtFault
from repro.atpg.fault_sim import FaultSimulator
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.transform import rename_nets
from repro.sat.solver import CdclSolver
from repro.sat.tseitin import CircuitEncoder


def _faulty_copy(netlist: Netlist, fault: StuckAtFault, prefix: str) -> Netlist:
    """Copy of the netlist with the fault site replaced by a constant.

    The faulted net keeps its name but is driven by CONST; its original
    driver (if a gate) is re-emitted under an alias so side outputs are
    unaffected (single-output gates: the alias is simply unused).
    """
    def mapper(net: str) -> str:
        return prefix + net

    copy = rename_nets(netlist, mapper)
    target = prefix + fault.net
    const = GateType.CONST1 if fault.stuck_value else GateType.CONST0
    if target in copy.gates:
        gate = copy.remove_gate(target)  # releases the driver claim
        copy.add_gate(f"{target}__prefault", gate.gtype, gate.inputs)
        copy.add_gate(target, const, [])
    elif target in [prefix + n for n in netlist.inputs]:
        copy.remove_input(target)
        copy.add_gate(target, const, [])
    else:
        raise NetlistError(f"fault site {fault.net!r} not found")
    return copy


@dataclass
class AtpgResult:
    """Outcome of test generation over a fault list."""

    patterns: list[dict[str, int]]
    detected: list[StuckAtFault]
    untestable: list[StuckAtFault]
    aborted: list[StuckAtFault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.untestable) + len(self.aborted)
        if total == 0:
            return 1.0
        return len(self.detected) / total


def generate_test(
    netlist: Netlist,
    fault: StuckAtFault,
    max_conflicts: int | None = 100_000,
) -> dict[str, int] | None:
    """One test pattern detecting ``fault``, or None if untestable.

    Raises TimeoutError when the conflict budget runs out (rare at this
    project's circuit sizes).
    """
    if netlist.dffs:
        raise NetlistError("ATPG operates on the combinational core")
    encoder = CircuitEncoder()
    # Shared primary inputs.  A fault on an input must NOT be aliased:
    # in the faulty copy that net is a constant, while the good copy (and
    # the generated pattern) still drive the real value.
    for net in netlist.inputs:
        var = encoder.var_for(f"X::{net}")
        encoder.alias(f"G::{net}", var)
        if net != fault.net:
            encoder.alias(f"F::{net}", var)
    good = encoder.encode_netlist(netlist, prefix="G::")
    faulty_netlist = _faulty_copy(netlist, fault, prefix="F::")
    # The faulty copy is pre-prefixed; encode without additional prefix.
    faulty = encoder.encode_netlist(faulty_netlist, prefix="")

    cnf = encoder.cnf
    diff_lits = []
    for net in netlist.outputs:
        yg, yf = good[net], faulty[f"F::{net}"]
        d = cnf.new_var()
        cnf.add_clause([-d, yg, yf])
        cnf.add_clause([-d, -yg, -yf])
        cnf.add_clause([d, yg, -yf])
        cnf.add_clause([d, -yg, yf])
        diff_lits.append(d)
    cnf.add_clause(diff_lits)

    solver = CdclSolver(cnf)
    result = solver.solve(max_conflicts=max_conflicts)
    if result.satisfiable is None:
        raise TimeoutError(f"ATPG budget exhausted for {fault}")
    if result.satisfiable is False:
        return None
    assert result.model is not None
    return {
        net: result.model[encoder.var_for(f"X::{net}")] for net in netlist.inputs
    }


def generate_test_set(
    netlist: Netlist,
    faults: list[StuckAtFault],
    fault_sim_pruning: bool = True,
) -> AtpgResult:
    """Generate patterns covering a fault list.

    With ``fault_sim_pruning`` each new pattern is fault-simulated against
    the remaining faults so already-covered faults are skipped -- the
    standard ATPG flow.
    """
    sim = FaultSimulator(netlist)
    remaining = list(faults)
    patterns: list[dict[str, int]] = []
    detected: list[StuckAtFault] = []
    untestable: list[StuckAtFault] = []
    aborted: list[StuckAtFault] = []

    while remaining:
        fault = remaining.pop(0)
        try:
            pattern = generate_test(netlist, fault)
        except TimeoutError:
            aborted.append(fault)
            continue
        if pattern is None:
            untestable.append(fault)
            continue
        patterns.append(pattern)
        detected.append(fault)
        if fault_sim_pruning and remaining:
            still_remaining = []
            for other in remaining:
                if sim.detects(pattern, other):
                    detected.append(other)
                else:
                    still_remaining.append(other)
            remaining = still_remaining
    return AtpgResult(
        patterns=patterns,
        detected=detected,
        untestable=untestable,
        aborted=aborted,
    )
