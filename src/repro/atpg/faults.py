"""The single stuck-at fault model.

A fault pins one net to a constant; the classic industrial abstraction
for manufacturing defects and the one scan testing is built around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class StuckAtFault:
    """Net ``net`` permanently reads as ``stuck_value``."""

    net: str
    stuck_value: int

    def __post_init__(self) -> None:
        if self.stuck_value not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")

    def __str__(self) -> str:
        return f"{self.net}/SA{self.stuck_value}"


def enumerate_faults(
    netlist: Netlist, include_inputs: bool = True
) -> Iterator[StuckAtFault]:
    """Yield the full single-stuck-at fault list (both polarities).

    Fault sites are primary inputs (optional), gate outputs and flop Q
    nets -- i.e. every driven net.  Fanout-branch faults are not modelled
    separately (fanout-free equivalence collapsing is out of scope).
    """
    sites: list[str] = []
    if include_inputs:
        sites.extend(netlist.inputs)
    sites.extend(netlist.dffs)
    sites.extend(netlist.gates)
    for net in sites:
        yield StuckAtFault(net, 0)
        yield StuckAtFault(net, 1)
