"""Stuck-at fault testing substrate (extension).

Scan chains exist so testers can apply and observe test patterns; scan
*locking* protects that access.  This package supplies the missing third
leg for end-to-end demonstrations: a stuck-at fault model, a SAT-based
ATPG (reusing the project's Tseitin encoder and CDCL solver), and a fault
simulator.  The ATPG bench shows the security story concretely: fault
coverage collapses for an unauthenticated tester on a locked chip, and is
fully restored once DynUnlock recovers the seed.
"""

from repro.atpg.faults import StuckAtFault, enumerate_faults
from repro.atpg.fault_sim import FaultSimulator, fault_coverage
from repro.atpg.atpg import generate_test, generate_test_set, AtpgResult

__all__ = [
    "StuckAtFault",
    "enumerate_faults",
    "FaultSimulator",
    "fault_coverage",
    "generate_test",
    "generate_test_set",
    "AtpgResult",
]
