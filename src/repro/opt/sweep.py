"""Dead-logic elimination by cone-of-influence analysis.

Roots are the nets the outside world can observe: primary outputs,
flip-flop D pins (scan cells capture them), and any caller-pinned nets.
Every gate outside the transitive fan-in of a root is unobservable and
is dropped; inputs, outputs and flip-flops are never touched.

The pass also *reports* (never removes) the primary inputs that drive
nothing after the sweep -- on a locked attack model those are exactly
the unused key gates: key inputs whose overlay cancelled out or whose
cone was constant-folded away, which the SAT attack would otherwise
still branch on.
"""

from __future__ import annotations

from repro.ir import enabled as _ir_enabled, ir_for
from repro.netlist.netlist import Netlist


def cone_of_influence(
    netlist: Netlist, pinned: frozenset[str] = frozenset()
) -> set[str]:
    """Gate-output nets reachable backwards from any observable root."""
    if _ir_enabled():
        # Same reachability over the flat IR arrays (driver/fanin ids)
        # instead of per-net dict probes; returns the identical name set.
        return ir_for(netlist).cone_keep(pinned)
    roots = list(netlist.outputs)
    roots.extend(dff.d for dff in netlist.dffs.values())
    roots.extend(pinned)
    gates = netlist.gates
    keep: set[str] = set()
    stack = [net for net in roots if net in gates]
    while stack:
        net = stack.pop()
        if net in keep:
            continue
        keep.add(net)
        for operand in gates[net].inputs:
            if operand in gates and operand not in keep:
                stack.append(operand)
    return keep


def sweep(
    netlist: Netlist, pinned: frozenset[str] = frozenset()
) -> tuple[Netlist, dict]:
    """Drop every gate outside the cone of influence of the roots.

    Returns ``(swept, stats)`` where stats reports the removed gate
    count and the now-unused primary inputs (``unused_inputs``).  The
    input netlist is never mutated; interface names and order are
    preserved exactly.
    """
    keep = cone_of_influence(netlist, pinned)
    out = Netlist(name=netlist.name)
    for net in netlist.inputs:
        out.add_input(net)
    for dff in netlist.dffs.values():
        out.add_dff(q=dff.q, d=dff.d)
    for gate in netlist.gates.values():
        if gate.output in keep:
            out.add_gate(gate.output, gate.gtype, gate.inputs)
    for net in netlist.outputs:
        out.add_output(net)

    read: set[str] = set(out.outputs)
    read.update(dff.d for dff in out.dffs.values())
    for gate in out.gates.values():
        read.update(gate.inputs)
    unused = [net for net in out.inputs if net not in read]
    return out, {
        "removed_gates": len(netlist.gates) - len(out.gates),
        "unused_inputs": unused,
    }
