"""ABC-style netlist optimization: the shared front end of every hot path.

Every attack model, replay oracle and fuzz trial in this repo
re-encodes and re-simulates a netlist; :func:`repro.opt.optimize`
shrinks that netlist first while provably preserving its interface
semantics.  Three passes compose into a pipeline:

* :mod:`repro.opt.structhash` -- structural hashing into a canonical
  DAG: constant folding, commutative-input sorting, double-negation and
  XOR-involution rewrites, and common-subexpression merging;
* :mod:`repro.opt.sweep` -- cone-of-influence dead-logic elimination
  (plus unused-input reporting, the "unused key gate" detector);
* :mod:`repro.opt.satsweep` -- simulation-guided equivalence classing
  (packed random lanes through the bit-parallel simulator) confirmed or
  refuted by the incremental SAT solver's assumption API, then merged.

The contract optimization never breaks: primary inputs, primary
outputs, and flip-flop Q/D nets keep their names, order and semantics,
so key inputs and oracle-interface nets of an attack model map back to
the original netlist unchanged -- a key recovered on the optimized
circuit *is* the key of the original.
"""

from repro.opt.pipeline import (
    DEFAULT_LEVEL,
    MAX_LEVEL,
    OptResult,
    OptStats,
    PassStats,
    optimize,
    resolve_level,
)

__all__ = [
    "DEFAULT_LEVEL",
    "MAX_LEVEL",
    "OptResult",
    "OptStats",
    "PassStats",
    "optimize",
    "resolve_level",
]
