"""The composable optimization pipeline: ``optimize(netlist, level=...)``.

Levels (cumulative):

* ``0`` -- no-op: the input netlist is returned untouched.
* ``1`` (default) -- structural hashing + cone-of-influence sweep,
  iterated to a structural fixpoint.  Pure graph rewriting, linear in
  the netlist; this is the level every attack encodes through unless
  told otherwise.
* ``2`` -- level 1 plus SAT sweeping: simulation-proposed equivalences
  confirmed through the incremental solver's assumption API and merged,
  re-running the level-1 fixpoint after each merge round.

The pipeline pins the whole netlist interface automatically: primary
inputs (hence key inputs), primary outputs, and flip-flop Q/D nets are
never renamed, reordered or removed, so recovered keys and oracle
wirings map back to the original netlist unchanged.  Extra nets can be
pinned with ``pin=``.

``REPRO_OPT_LEVEL`` overrides the default level process-wide; explicit
``level=`` arguments always win.  Every pass reports an
:class:`OptStats` entry (gates before/after, wall time) so callers --
the ``dynunlock opt`` CLI, the opt bench -- can show where the
reduction came from.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.netlist.netlist import Netlist
from repro.observability import spans as obs
from repro.opt.satsweep import sat_sweep
from repro.opt.structhash import structural_hash
from repro.opt.sweep import sweep

#: The level attacks preprocess with when nothing is specified.
DEFAULT_LEVEL = 1
MAX_LEVEL = 2

#: Safety bound on fixpoint iteration (reached only by pathological
#: oscillation, which the rewrites are not expected to exhibit).
_MAX_FIXPOINT_ROUNDS = 8
_MAX_SATSWEEP_ROUNDS = 4


def resolve_level(level: int | None) -> int:
    """Normalise an optimization level request.

    ``None`` means "the active default": the ``REPRO_OPT_LEVEL``
    environment variable when set, else :data:`DEFAULT_LEVEL`.
    """
    if level is None:
        env = os.environ.get("REPRO_OPT_LEVEL", "").strip()
        level = int(env) if env else DEFAULT_LEVEL
    level = int(level)
    if not 0 <= level <= MAX_LEVEL:
        raise ValueError(
            f"optimization level must be in 0..{MAX_LEVEL}, got {level}"
        )
    return level


@dataclass(frozen=True)
class PassStats:
    """One pass's contribution: gate delta and wall time."""

    name: str
    gates_before: int
    gates_after: int
    time_s: float
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "time_s": self.time_s,
            "detail": dict(self.detail),
        }


@dataclass
class OptStats:
    """Whole-pipeline accounting (JSON-safe via :meth:`as_dict`)."""

    level: int
    gates_before: int
    gates_after: int
    time_s: float
    passes: list[PassStats] = field(default_factory=list)
    unused_inputs: list[str] = field(default_factory=list)

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def reduction(self) -> float:
        """Fraction of gates removed (0.0 on an empty netlist)."""
        if self.gates_before == 0:
            return 0.0
        return self.gates_removed / self.gates_before

    def as_dict(self) -> dict:
        return {
            "level": self.level,
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "gates_removed": self.gates_removed,
            "reduction": self.reduction,
            "time_s": self.time_s,
            "unused_inputs": list(self.unused_inputs),
            "passes": [p.as_dict() for p in self.passes],
        }


@dataclass
class OptResult:
    """The optimized netlist plus the stats that produced it."""

    netlist: Netlist
    stats: OptStats


def _interface_pins(netlist: Netlist, extra: frozenset[str]) -> frozenset[str]:
    pins = set(extra)
    pins.update(netlist.outputs)
    for dff in netlist.dffs.values():
        pins.add(dff.d)
        pins.add(dff.q)
    return frozenset(pins)


def optimize(
    netlist: Netlist,
    level: int | None = None,
    *,
    pin: tuple[str, ...] = (),
    sat_seed: int = 0xA115,
    sat_max_checks: int = 256,
) -> OptResult:
    """Optimize ``netlist`` at ``level``; see the module docstring.

    The input netlist is never mutated; at level 0 it is returned as-is
    (same object) with empty stats.
    """
    level = resolve_level(level)
    started = time.perf_counter()
    gates_before = netlist.n_gates
    stats = OptStats(
        level=level,
        gates_before=gates_before,
        gates_after=gates_before,
        time_s=0.0,
    )
    if level == 0:
        return OptResult(netlist=netlist, stats=stats)

    pinned = _interface_pins(netlist, frozenset(pin))
    current = _level1_fixpoint(netlist, pinned, stats)

    if level >= 2:
        for _ in range(_MAX_SATSWEEP_ROUNDS):
            before = current.n_gates
            t0 = time.perf_counter()
            substitutions, detail = sat_sweep(
                current,
                pinned,
                seed=sat_seed,
                max_checks=sat_max_checks,
            )
            stats.passes.append(
                PassStats(
                    "satsweep",
                    before,
                    before,  # merges apply in the rebuild below
                    time.perf_counter() - t0,
                    detail,
                )
            )
            if not substitutions:
                break
            t0 = time.perf_counter()
            merged, detail = structural_hash(
                current, pinned, substitutions=substitutions
            )
            stats.passes.append(
                PassStats(
                    "satsweep-merge",
                    before,
                    merged.n_gates,
                    time.perf_counter() - t0,
                    detail,
                )
            )
            current = _level1_fixpoint(merged, pinned, stats)

    stats.gates_after = current.n_gates
    stats.time_s = time.perf_counter() - started
    for record in reversed(stats.passes):
        if record.name == "sweep":
            stats.unused_inputs = list(record.detail.get("unused_inputs", ()))
            break
    if obs.active():
        # One span update per pipeline run; nothing on the per-pass path.
        obs.add_phase("opt", stats.time_s)
        obs.incr("opt_gates_removed", stats.gates_removed)
    return OptResult(netlist=current, stats=stats)


def _level1_fixpoint(
    netlist: Netlist, pinned: frozenset[str], stats: OptStats
) -> Netlist:
    """Iterate structhash + sweep until the gate set stops changing."""
    current = netlist
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        t0 = time.perf_counter()
        hashed, detail = structural_hash(current, pinned)
        stats.passes.append(
            PassStats(
                "structhash",
                current.n_gates,
                hashed.n_gates,
                time.perf_counter() - t0,
                detail,
            )
        )
        t0 = time.perf_counter()
        swept, detail = sweep(hashed, pinned)
        stats.passes.append(
            PassStats(
                "sweep",
                hashed.n_gates,
                swept.n_gates,
                time.perf_counter() - t0,
                detail,
            )
        )
        if swept.gates == current.gates:
            return swept
        current = swept
    return current
