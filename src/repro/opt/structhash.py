"""Structural hashing: rewrite a netlist into a canonical DAG.

One linear pass over the topological gate order rewrites every gate to a
canonical form and merges structurally identical logic:

* **constant folding** -- CONST0/CONST1 operands are absorbed per gate
  semantics (``AND(x, 0) = 0``, ``XOR(x, 1) = NOT x``, ``MUX`` with a
  constant select collapses to one branch, ...);
* **commutative-input sorting** -- AND/NAND/OR/NOR/XOR/XNOR operands are
  sorted by net name, so input-order variants hash identically;
* **idempotence / involution rewrites** -- duplicate AND/OR operands
  drop, XOR operand pairs cancel (fanout-1 XOR/XNOR chains are flattened
  first, which is what cancels the double key-overlay XORs the locked
  models emit), ``NOT(NOT(x))`` and complementary AND/OR operand pairs
  collapse;
* **common-subexpression elimination** -- two gates with the same
  canonical ``(type, operands)`` share one output net.

Nets listed in ``pinned`` (primary outputs, flip-flop D pins, caller
extras) always stay present and driven under their own name: when a
pinned gate output simplifies away, a BUF (or constant gate) alias is
materialised so the interface contract of :mod:`repro.opt` holds.  The
pass never renames or reorders primary inputs, outputs or flip-flops.

``substitutions`` seeds the rewrite with externally proven equivalences
(net -> replacement net or constant); this is how the SAT sweep's merges
are applied -- :mod:`repro.opt.satsweep` proves, this pass rebuilds.
"""

from __future__ import annotations

from typing import Mapping

from repro.netlist.gates import GateType
from repro.netlist.netlist import Gate, Netlist, NetNamer

#: A rewrite value: a driving net name, or a constant bit (int 0/1).
Value = "str | int"

_COMMUTATIVE = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
    }
)

#: Gate types the fanout-1 flattening step may absorb into a parent
#: XOR/XNOR (XNOR absorption flips the parent's output parity).
_XOR_CLASS = frozenset({GateType.XOR, GateType.XNOR})


class _Rewriter:
    """One structural-hashing run over a source netlist."""

    def __init__(
        self,
        src: Netlist,
        pinned: frozenset[str],
        substitutions: Mapping[str, Value] | None,
    ):
        self.src = src
        self.pinned = pinned
        self.out = Netlist(name=src.name)
        # net -> canonical Value; seeded with externally proven merges.
        self.value: dict[str, Value] = dict(substitutions or {})
        # canonical (gtype, operands) -> output net of the emitted gate.
        self.cse: dict[tuple, str] = {}
        # emitted gate output -> its canonical (gtype, operands) form.
        self.driver: dict[str, tuple[GateType, tuple[str, ...]]] = {}
        self.namer = NetNamer(src, "opt_")
        self.reads = _read_counts(src)
        self.stats = {
            "folded_const": 0,
            "aliased": 0,
            "cse_merged": 0,
            "flattened": 0,
            "pinned_aliases": 0,
        }

    # ------------------------------------------------------------------
    def run(self) -> Netlist:
        out = self.out
        for net in self.src.inputs:
            out.add_input(net)
        for dff in self.src.dffs.values():
            out.add_dff(q=dff.q, d=dff.d)
        for gate in self.src.topological_gates():
            self._rewrite(gate)
        for net in self.src.outputs:
            out.add_output(net)
        return out

    # ------------------------------------------------------------------
    def resolve(self, net: str) -> Value:
        """Follow the alias chain of ``net`` to its canonical value."""
        seen: list[str] = []
        current: Value = net
        while isinstance(current, str) and current in self.value:
            seen.append(current)
            current = self.value[current]
        for name in seen:  # path compression
            self.value[name] = current
        return current

    def _rewrite(self, gate: Gate) -> None:
        out_net = gate.output
        if out_net in self.value:
            # Substituted away by a caller-proven equivalence.
            if out_net in self.pinned:
                self._materialize(out_net, self.resolve(out_net))
            return
        val = self._simplify(gate)
        if val is None:
            return  # emitted under its own name
        self.value[out_net] = val
        if out_net in self.pinned:
            self._materialize(out_net, val)

    def _materialize(self, name: str, val: Value) -> None:
        """Drive a pinned net whose logic simplified away.

        Deliberately bypasses CSE: every pinned net needs its own driver
        even when several pins share one representative.
        """
        self.stats["pinned_aliases"] += 1
        if isinstance(val, int):
            self.out.add_gate(
                name, GateType.CONST1 if val else GateType.CONST0, []
            )
        else:
            self.out.add_gate(name, GateType.BUF, [val])

    def _emit(self, out_net: str, gtype: GateType, ins: tuple[str, ...]) -> Value | None:
        """CSE-aware gate emission; returns a Value on a merge hit."""
        key = (gtype, ins)
        hit = self.cse.get(key)
        if hit is not None:
            self.stats["cse_merged"] += 1
            return hit
        self.out.add_gate(out_net, gtype, list(ins))
        self.driver[out_net] = key
        self.cse[key] = out_net
        return None

    def _not_net(self, net: str) -> str:
        """A net carrying ``NOT(net)``, reusing existing inverters."""
        form = self.driver.get(net)
        if form is not None and form[0] is GateType.NOT:
            return form[1][0]
        key = (GateType.NOT, (net,))
        hit = self.cse.get(key)
        if hit is not None:
            return hit
        fresh = self.namer.fresh("not")
        self.out.add_gate(fresh, GateType.NOT, [net])
        self.driver[fresh] = key
        self.cse[key] = fresh
        return fresh

    # ------------------------------------------------------------------
    # per-type simplification
    # ------------------------------------------------------------------
    def _simplify(self, gate: Gate) -> Value | None:
        """Canonicalise one gate; Value = folded away, None = emitted."""
        gtype = gate.gtype
        ins = [self.resolve(n) for n in gate.inputs]

        if gtype is GateType.CONST0:
            self.stats["folded_const"] += 1
            return 0
        if gtype is GateType.CONST1:
            self.stats["folded_const"] += 1
            return 1
        if gtype is GateType.BUF:
            self.stats["aliased"] += 1
            return ins[0]
        if gtype is GateType.NOT:
            return self._simplify_not(gate.output, ins[0])
        if gtype in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            return self._simplify_and_or(gate.output, gtype, ins)
        if gtype in (GateType.XOR, GateType.XNOR):
            return self._simplify_xor(gate.output, gtype, ins)
        if gtype is GateType.MUX:
            return self._simplify_mux(gate.output, ins)
        raise ValueError(f"unknown gate type {gtype!r}")  # pragma: no cover

    def _simplify_not(self, out_net: str, operand: Value) -> Value | None:
        if isinstance(operand, int):
            self.stats["folded_const"] += 1
            return 1 - operand
        form = self.driver.get(operand)
        if form is not None and form[0] is GateType.NOT:
            self.stats["aliased"] += 1
            return form[1][0]  # NOT(NOT(x)) = x
        return self._emit(out_net, GateType.NOT, (operand,))

    def _simplify_and_or(
        self, out_net: str, gtype: GateType, ins: list[Value]
    ) -> Value | None:
        is_and = gtype in (GateType.AND, GateType.NAND)
        inverted = gtype in (GateType.NAND, GateType.NOR)
        dominant = 0 if is_and else 1  # absorbing constant
        operands: list[str] = []
        for operand in ins:
            if isinstance(operand, int):
                if operand == dominant:
                    self.stats["folded_const"] += 1
                    return dominant ^ 1 if inverted else dominant
                continue  # identity constant drops out
            operands.append(operand)
        operands = sorted(set(operands))
        # Complementary pair: AND(x, NOT x) = 0, OR(x, NOT x) = 1.
        operand_set = set(operands)
        for operand in operands:
            form = self.driver.get(operand)
            if (
                form is not None
                and form[0] is GateType.NOT
                and form[1][0] in operand_set
            ):
                self.stats["folded_const"] += 1
                return dominant ^ 1 if inverted else dominant
        if not operands:
            identity = 1 if is_and else 0
            self.stats["folded_const"] += 1
            return identity ^ 1 if inverted else identity
        if len(operands) == 1:
            if inverted:
                return self._simplify_not(out_net, operands[0])
            self.stats["aliased"] += 1
            return operands[0]
        base = GateType.AND if is_and else GateType.OR
        if inverted:
            base = GateType.NAND if is_and else GateType.NOR
        return self._emit(out_net, base, tuple(operands))

    def _simplify_xor(
        self, out_net: str, gtype: GateType, ins: list[Value]
    ) -> Value | None:
        parity = 1 if gtype is GateType.XNOR else 0
        counts: dict[str, int] = {}

        def add(operand: Value) -> None:
            nonlocal parity
            if isinstance(operand, int):
                parity ^= operand
            else:
                counts[operand] = counts.get(operand, 0) ^ 1

        for operand in ins:
            add(operand)

        # Involution rewrite: inline a fanout-1 XOR/XNOR operand *only*
        # when it shares a term with the rest of the operand set, i.e.
        # when inlining provably cancels something (XOR(XOR(x, k), k) ->
        # x).  Unconditional flattening would merely widen the XOR and
        # measurably hurt the SAT search on the overlay models.
        for _ in range(32):  # safety bound; each step cancels >= 1 term
            inlined = False
            for net, live in list(counts.items()):
                if not live:
                    continue
                form = self.driver.get(net)
                if (
                    form is None
                    or form[0] not in _XOR_CLASS
                    or net in self.pinned
                    or self.reads.get(net, 0) > 1
                ):
                    continue
                if not any(counts.get(term, 0) for term in form[1]):
                    continue  # nothing to cancel; keep the shared node
                self.stats["flattened"] += 1
                counts[net] = 0
                if form[0] is GateType.XNOR:
                    parity ^= 1
                for term in form[1]:
                    add(term)
                inlined = True
                break
            if not inlined:
                break
        operands = sorted(net for net, live in counts.items() if live)
        if not operands:
            self.stats["folded_const"] += 1
            return parity
        if len(operands) == 1:
            if parity:
                return self._simplify_not(out_net, operands[0])
            self.stats["aliased"] += 1
            return operands[0]
        base = GateType.XNOR if parity else GateType.XOR
        return self._emit(out_net, base, tuple(operands))

    def _simplify_mux(self, out_net: str, ins: list[Value]) -> Value | None:
        sel, d0, d1 = ins
        if isinstance(sel, int):
            chosen = d1 if sel else d0
            key = "folded_const" if isinstance(chosen, int) else "aliased"
            self.stats[key] += 1
            return chosen
        if d0 == d1:
            self.stats["aliased"] += 1
            return d0
        if d0 == 0 and d1 == 1:
            self.stats["aliased"] += 1
            return sel
        if d0 == 1 and d1 == 0:
            return self._simplify_not(out_net, sel)
        if d1 == 0:  # sel ? 0 : d0  ==  NOT(sel) AND d0
            return self._simplify_and_or(
                out_net, GateType.AND, [self._not_net(sel), d0]
            )
        if d1 == 1:  # sel ? 1 : d0  ==  sel OR d0
            return self._simplify_and_or(out_net, GateType.OR, [sel, d0])
        if d0 == 0:  # sel ? d1 : 0  ==  sel AND d1
            return self._simplify_and_or(out_net, GateType.AND, [sel, d1])
        if d0 == 1:  # sel ? d1 : 1  ==  NOT(sel) OR d1
            return self._simplify_and_or(
                out_net, GateType.OR, [self._not_net(sel), d1]
            )
        return self._emit(out_net, GateType.MUX, (sel, d0, d1))


def _read_counts(netlist: Netlist) -> dict[str, int]:
    """How many sinks read each net.

    Gate-input fanout comes from the netlist's cached
    :meth:`~repro.netlist.netlist.Netlist.fanout_map`; DFF D pins and
    primary outputs are additional sinks the fanout map excludes.
    """
    from repro.ir import enabled as _ir_enabled, ir_for

    if _ir_enabled():
        # One counting pass over the flat fanin/dff_d/po id arrays;
        # same multiplicities as the dict-of-lists walk below.
        return ir_for(netlist).read_counts()
    reads = {net: len(gates) for net, gates in netlist.fanout_map().items()}
    for dff in netlist.dffs.values():
        reads[dff.d] = reads.get(dff.d, 0) + 1
    for net in netlist.outputs:
        reads[net] = reads.get(net, 0) + 1
    return reads


def structural_hash(
    netlist: Netlist,
    pinned: frozenset[str] = frozenset(),
    substitutions: Mapping[str, Value] | None = None,
) -> tuple[Netlist, dict[str, int]]:
    """Rewrite ``netlist`` into canonical form; see the module docstring.

    Returns ``(rewritten, stats)``.  The input netlist is never mutated;
    the result preserves input/output/DFF names and order, and every net
    in ``pinned`` remains present and driven.
    """
    rewriter = _Rewriter(netlist, pinned, substitutions)
    return rewriter.run(), rewriter.stats
