"""SAT sweeping: prove and merge functionally equivalent nets.

The classic ABC-style loop, built from parts this repo already trusts:

1. **Propose** -- drive the netlist with rounds of 64 random packed
   lanes through :class:`~repro.sim.logicsim.BitParallelSimulator`;
   nets with identical simulation signatures are *candidate* equivalent
   (and all-zero / all-one signatures propose candidate constants).
2. **Confirm** -- encode the combinational semantics once (flip-flop Q
   nets as free variables, exactly the replay semantics every
   equivalence check in this repo uses) into one
   :class:`~repro.sat.incremental.IncrementalSolver` session.  Each
   candidate pair gets a selector literal asserting "the two nets
   differ"; an UNSAT answer under that assumption is a proof of
   equivalence, a model is a counterexample that is fed back into the
   signatures to split every class it distinguishes (the CEGAR-ish
   refinement that keeps later checks cheap).
3. **Merge** -- proven equivalences come back as a substitution map;
   :func:`repro.opt.structhash.structural_hash` rebuilds the netlist
   with reads redirected to each class representative and
   :mod:`repro.opt.sweep` reclaims the dead cones.

Determinism: patterns derive from ``hash_label`` streams, solver runs
are conflict-bounded (never wall-clock-bounded), and classes are walked
in topological order -- the same netlist always sweeps to the same
result, which the runner cache and the fuzz campaign rely on.
"""

from __future__ import annotations

import random

from repro.netlist.netlist import Netlist
from repro.sat.cnf import Cnf
from repro.sat.incremental import IncrementalSolver
from repro.sat.tseitin import encode_gate_clauses
from repro.sim.logicsim import BitParallelSimulator
from repro.util.bitvec import PACK_WORD_BITS, lane_mask
from repro.util.rng import hash_label

#: Substitution value: a representative net name, or a constant bit.
Value = "str | int"

DEFAULT_SEED = 0xA115
DEFAULT_ROUNDS = 2
DEFAULT_MAX_CHECKS = 256
DEFAULT_MAX_CONFLICTS = 5_000


def simulation_signatures(
    netlist: Netlist,
    rng: random.Random,
    n_rounds: int = DEFAULT_ROUNDS,
) -> dict[str, list[int]]:
    """Random-lane signatures of every net (``n_rounds`` x 64 patterns)."""
    sim = BitParallelSimulator(netlist)
    free = list(netlist.inputs) + netlist.dff_q_nets()
    signatures: dict[str, list[int]] = {net: [] for net in sim.net_index}
    for _ in range(n_rounds):
        packed = {net: rng.getrandbits(PACK_WORD_BITS) for net in free}
        words = sim.run_packed(packed, PACK_WORD_BITS)
        for net, word in words.items():
            signatures[net].append(word)
    return signatures


def sat_sweep(
    netlist: Netlist,
    pinned: frozenset[str] = frozenset(),
    *,
    seed: int = DEFAULT_SEED,
    n_rounds: int = DEFAULT_ROUNDS,
    max_checks: int = DEFAULT_MAX_CHECKS,
    max_conflicts: int = DEFAULT_MAX_CONFLICTS,
) -> tuple[dict[str, Value], dict]:
    """Propose-and-prove equivalent nets; returns ``(substitutions, stats)``.

    ``substitutions`` maps each proven-redundant gate output to its
    class representative (a topologically earlier net) or to a constant
    bit; apply it with :func:`~repro.opt.structhash.structural_hash`.
    ``pinned`` does not exempt a net from being merged -- the rebuild
    materialises aliases for pinned nets -- it only never *removes* one.
    """
    stats = {
        "candidate_classes": 0,
        "checks": 0,
        "proven_pairs": 0,
        "proven_consts": 0,
        "refuted": 0,
        "unknown": 0,
    }
    if not netlist.gates:
        return {}, stats

    rng = random.Random(hash_label(seed, f"opt/satsweep/{netlist.name}"))
    signatures = simulation_signatures(netlist, rng, n_rounds)
    mask = lane_mask(PACK_WORD_BITS)

    # Topological rank: free nets first (they are always preferred
    # representatives), then gate outputs in dependency order -- merging
    # a net into an earlier-ranked one can never create a cycle.
    free = list(netlist.inputs) + netlist.dff_q_nets()
    rank: dict[str, int] = {net: i for i, net in enumerate(free)}
    for gate in netlist.topological_gates():
        rank[gate.output] = len(rank)

    solver, var_of = _encode(netlist)
    sim = BitParallelSimulator(netlist)

    def refine(pattern: dict[str, int]) -> None:
        """Fold one counterexample pattern into every signature.

        The single bit is broadcast across the full lane width so the
        appended word compares consistently with the random-round words
        -- in particular the all-ones constant test (``w == mask``)
        keeps working after a refinement.
        """
        words = sim.run_packed(pattern, 1)
        for net, word in words.items():
            signatures[net].append(mask if word & 1 else 0)

    def proved_unequal_to(net: str, value: int) -> bool | None:
        """Is ``net`` proven constant ``value``?  None = budget exhausted."""
        var = var_of[net]
        assumption = -var if value else var  # assert net != value
        result = solver.solve(
            assumptions=[assumption], max_conflicts=max_conflicts
        )
        if result.satisfiable is False:
            return True
        if result.satisfiable is None:
            return None
        refine({n: solver.value(var_of[n]) for n in free})
        return False

    def proved_equal(a: str, b: str) -> bool | None:
        """Is ``a == b`` for all inputs?  None = budget exhausted."""
        va, vb = var_of[a], var_of[b]
        sel = solver.new_group()
        solver.add_clause([va, vb], group=sel)
        solver.add_clause([-va, -vb], group=sel)
        result = solver.solve(assumptions=[sel], max_conflicts=max_conflicts)
        solver.release_group(sel)
        if result.satisfiable is False:
            return True
        if result.satisfiable is None:
            return None
        refine({n: solver.value(var_of[n]) for n in free})
        return False

    substitutions: dict[str, Value] = {}
    budget = max_checks

    # Constant candidates first: a proven constant beats any pair merge.
    for gate in netlist.topological_gates():
        if budget <= 0:
            break
        net = gate.output
        sig = signatures[net]
        for value, matches in ((0, lambda w: w == 0), (1, lambda w: w == mask)):
            if all(matches(w) for w in sig):
                budget -= 1
                stats["checks"] += 1
                proven = proved_unequal_to(net, value)
                if proven:
                    substitutions[net] = value
                    stats["proven_consts"] += 1
                elif proven is None:
                    stats["unknown"] += 1
                else:
                    stats["refuted"] += 1
                break

    # Equal-signature classes, representatives by topological rank.
    classes: dict[tuple[int, ...], list[str]] = {}
    for net in rank:
        if net in substitutions:
            continue
        classes.setdefault(tuple(signatures[net]), []).append(net)
    for members in classes.values():
        if len(members) < 2:
            continue
        stats["candidate_classes"] += 1
        members.sort(key=rank.__getitem__)
        rep = members[0]
        for net in members[1:]:
            if budget <= 0:
                break
            if net not in netlist.gates:
                continue  # two free nets can never merge
            # A counterexample from an earlier check may have split the
            # class; re-compare the (refined) signatures first.
            if signatures[net] != signatures[rep]:
                continue
            budget -= 1
            stats["checks"] += 1
            proven = proved_equal(rep, net)
            if proven:
                substitutions[net] = rep
                stats["proven_pairs"] += 1
            elif proven is None:
                stats["unknown"] += 1
            else:
                stats["refuted"] += 1

    return substitutions, stats


def _encode(netlist: Netlist) -> tuple[IncrementalSolver, dict[str, int]]:
    """One-shot CNF of the combinational semantics (Q nets free)."""
    cnf = Cnf()
    var_of: dict[str, int] = {}

    def var_for(net: str) -> int:
        var = var_of.get(net)
        if var is None:
            var = cnf.new_var()
            var_of[net] = var
        return var

    for net in list(netlist.inputs) + netlist.dff_q_nets():
        var_for(net)
    for gate in netlist.topological_gates():
        out = var_for(gate.output)
        ins = [var_for(n) for n in gate.inputs]
        encode_gate_clauses(cnf, gate, out, ins)
    solver = IncrementalSolver()
    solver.absorb(cnf)
    return solver, var_of
