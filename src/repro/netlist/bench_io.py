"""ISCAS-89 ``.bench`` format reader/writer.

The format, as used by the ISCAS-89 and ITC-99 suites the paper evaluates:

.. code-block:: text

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G7 = DFF(G10)
    G10 = NAND(G0, G7)
    G17 = NOT(G10)

Gate names are case-insensitive keywords; nets are arbitrary identifiers.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.gates import BENCH_NAMES, bench_name
from repro.netlist.netlist import Netlist, NetlistError

_LINE_RE = re.compile(
    r"^\s*(?P<out>[\w.\[\]$/\\-]+)\s*=\s*(?P<op>\w+)\s*\(\s*(?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<net>[\w.\[\]$/\\-]+)\s*\)\s*$", re.I)


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`.

    Every structural violation -- duplicate drivers, duplicate INPUT or
    OUTPUT declarations, bad gate arity, unknown operators, malformed
    lines -- raises :class:`NetlistError` carrying the 1-based source
    line number.  Blank lines, ``\\r\\n`` endings and ``#`` comments
    (full-line or trailing) are tolerated everywhere.
    """
    netlist = Netlist(name=name)
    deferred_outputs: list[str] = []
    seen_outputs: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            io_match = _IO_RE.match(line)
            if io_match:
                net = io_match.group("net")
                if io_match.group("kind").upper() == "INPUT":
                    netlist.add_input(net)
                else:
                    if net in seen_outputs:
                        raise NetlistError(
                            f"net {net!r} is already a primary output"
                        )
                    seen_outputs.add(net)
                    deferred_outputs.append(net)
                continue
            gate_match = _LINE_RE.match(line)
            if not gate_match:
                raise NetlistError(f"cannot parse {raw!r}")
            out = gate_match.group("out")
            op = gate_match.group("op").upper()
            args = [
                a.strip() for a in gate_match.group("args").split(",") if a.strip()
            ]
            if op == "DFF":
                if len(args) != 1:
                    raise NetlistError(f"DFF takes one input, got {args}")
                netlist.add_dff(q=out, d=args[0])
            elif op in BENCH_NAMES:
                # ValueError covers arity violations from Gate.__post_init__.
                netlist.add_gate(out, BENCH_NAMES[op], args)
            else:
                raise NetlistError(f"unknown gate type {op!r}")
        except (NetlistError, ValueError) as err:
            raise NetlistError(f"line {lineno}: {err}") from err
    # OUTPUT() may name a net declared later, so markers apply at the end;
    # duplicates were already rejected above, with their line number.
    for net in deferred_outputs:
        netlist.add_output(net)
    return netlist


def write_bench(netlist: Netlist) -> str:
    """Serialise a netlist to ``.bench`` text (stable ordering)."""
    lines = [f"# {netlist.name}"]
    lines += [f"INPUT({net})" for net in netlist.inputs]
    lines += [f"OUTPUT({net})" for net in netlist.outputs]
    lines += [f"{dff.q} = DFF({dff.d})" for dff in netlist.dffs.values()]
    for gate in netlist.gates.values():
        lines.append(f"{gate.output} = {bench_name(gate.gtype)}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def load_bench_file(path: str | Path) -> Netlist:
    """Parse a ``.bench`` file from disk into a :class:`Netlist`."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def save_bench_file(netlist: Netlist, path: str | Path) -> None:
    """Write a netlist to disk in ``.bench`` format."""
    Path(path).write_text(write_bench(netlist))
