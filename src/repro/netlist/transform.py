"""Structural netlist transforms.

These are the building blocks for both the defenses (inserting key gates
into a scan path) and the attacks (duplicating the locked circuit to build
a miter, turning flip-flops into pseudo-I/O for combinational modeling).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetlistError


def rename_nets(netlist: Netlist, mapper: Callable[[str], str]) -> Netlist:
    """Return a new netlist with every net name passed through ``mapper``."""
    renamed = Netlist(name=netlist.name)
    for net in netlist.inputs:
        renamed.add_input(mapper(net))
    for dff in netlist.dffs.values():
        renamed.add_dff(q=mapper(dff.q), d=mapper(dff.d))
    for gate in netlist.gates.values():
        renamed.add_gate(
            mapper(gate.output), gate.gtype, [mapper(n) for n in gate.inputs]
        )
    for net in netlist.outputs:
        renamed.add_output(mapper(net))
    return renamed


def copy_with_prefix(netlist: Netlist, prefix: str) -> Netlist:
    """Deep-copy a netlist, prefixing every net name (for miter copies)."""
    return rename_nets(netlist, lambda n: f"{prefix}{n}")


def copy_netlist(netlist: Netlist) -> Netlist:
    """Plain deep copy."""
    return rename_nets(netlist, lambda n: n)


def merge_netlists(base: Netlist, other: Netlist, name: str | None = None) -> Netlist:
    """Union of two netlists over a shared net namespace.

    Nets with equal names are the same net; both sides may *read* a shared
    net but only one may drive it.  Primary inputs present in both are kept
    once.  Outputs are concatenated (duplicates removed).
    """
    merged = Netlist(name=name or f"{base.name}+{other.name}")
    for net in base.inputs:
        merged.add_input(net)
    for net in other.inputs:
        if net not in merged.inputs:
            if net in merged.gates or net in merged.dffs:
                raise NetlistError(f"input {net!r} collides with a driven net")
            merged.add_input(net)
    for source in (base, other):
        for dff in source.dffs.values():
            merged.add_dff(q=dff.q, d=dff.d)
        for gate in source.gates.values():
            merged.add_gate(gate.output, gate.gtype, gate.inputs)
    seen: set[str] = set()
    for net in list(base.outputs) + list(other.outputs):
        if net not in seen:
            merged.add_output(net)
            seen.add(net)
    return merged


def extract_combinational_core(
    netlist: Netlist,
    state_input_prefix: str = "ppi_",
    state_output_prefix: str = "ppo_",
) -> tuple[Netlist, list[str], list[str]]:
    """Cut all flip-flops, exposing them as pseudo-primary I/O.

    This is the classic full-scan transformation: each DFF Q net becomes a
    pseudo-primary input (``ppi_<i>``) and each DFF D net is observed as a
    pseudo-primary output (``ppo_<i>``), in the netlist's canonical flop
    order.  Returns ``(core, ppi_nets, ppo_nets)``.

    The original Q net names are preserved as BUF aliases of the new PPI
    nets so that internal gate connectivity is untouched.
    """
    core = Netlist(name=f"{netlist.name}_comb")
    for net in netlist.inputs:
        core.add_input(net)

    ppi_nets: list[str] = []
    ppo_nets: list[str] = []
    for index, q_net in enumerate(netlist.dff_q_nets()):
        ppi = f"{state_input_prefix}{index}"
        core.add_input(ppi)
        # Alias the old Q name so downstream gates keep their connections.
        core.add_gate(q_net, GateType.BUF, [ppi])
        ppi_nets.append(ppi)

    for gate in netlist.gates.values():
        core.add_gate(gate.output, gate.gtype, gate.inputs)

    for index, q_net in enumerate(netlist.dff_q_nets()):
        d_net = netlist.dffs[q_net].d
        ppo = f"{state_output_prefix}{index}"
        core.add_gate(ppo, GateType.BUF, [d_net])
        core.add_output(ppo)
        ppo_nets.append(ppo)

    for net in netlist.outputs:
        core.add_output(net)
    return core, ppi_nets, ppo_nets


def strip_outputs(netlist: Netlist, keep: Iterable[str]) -> Netlist:
    """Copy of ``netlist`` keeping only the listed primary outputs."""
    keep_set = set(keep)
    missing = keep_set - set(netlist.outputs)
    if missing:
        raise NetlistError(f"cannot keep non-outputs: {sorted(missing)}")
    clone = copy_netlist(netlist)
    # set_outputs (not direct assignment) so derived caches invalidate.
    clone.set_outputs([net for net in clone.outputs if net in keep_set])
    return clone


def count_transitive_fanin(netlist: Netlist, net: str) -> int:
    """Number of gates in the transitive fan-in cone of ``net``."""
    seen: set[str] = set()
    stack = [net]
    count = 0
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        gate = netlist.gates.get(current)
        if gate is not None:
            count += 1
            stack.extend(gate.inputs)
    return count
