"""Gate-level netlist substrate.

The netlist IR is deliberately small: named nets, single-output gates from
a fixed primitive library, D flip-flops, primary inputs and outputs.  It is
rich enough to represent the ISCAS-89 / ITC-99 style benchmarks the paper
evaluates, the key-gate-locked variants the defenses produce, and the
unrolled combinational attack models DynUnlock constructs.
"""

from repro.netlist.gates import GateType, evaluate_gate, GATE_ARITY
from repro.netlist.netlist import Gate, Netlist, NetlistError
from repro.netlist.bench_io import parse_bench, write_bench, load_bench_file
from repro.netlist.verilog_io import parse_verilog, write_verilog
from repro.netlist.transform import (
    copy_with_prefix,
    merge_netlists,
    extract_combinational_core,
)
from repro.netlist.validate import validate_netlist

__all__ = [
    "GateType",
    "evaluate_gate",
    "GATE_ARITY",
    "Gate",
    "Netlist",
    "NetlistError",
    "parse_bench",
    "write_bench",
    "load_bench_file",
    "parse_verilog",
    "write_verilog",
    "copy_with_prefix",
    "merge_netlists",
    "extract_combinational_core",
    "validate_netlist",
]
