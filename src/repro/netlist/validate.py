"""Whole-netlist consistency checks.

Run after construction or transformation; raises
:class:`repro.netlist.NetlistError` with an explanation on the first
violation found, or returns a small report dict when everything is sound.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist, NetlistError


def validate_netlist(netlist: Netlist, allow_dangling: bool = False) -> dict[str, int]:
    """Check structural invariants.

    * every gate/DFF input and every primary output is driven;
    * the combinational part is acyclic (delegated to topological_gates);
    * no net is simultaneously a primary input and driven by logic
      (guaranteed by construction, re-checked here for transformed nets).
    """
    driven: set[str] = set(netlist.inputs) | set(netlist.gates) | set(netlist.dffs)

    undriven: list[str] = []
    for gate in netlist.gates.values():
        for net in gate.inputs:
            if net not in driven:
                undriven.append(net)
    for dff in netlist.dffs.values():
        if dff.d not in driven:
            undriven.append(dff.d)
    for net in netlist.outputs:
        if net not in driven:
            undriven.append(net)
    if undriven and not allow_dangling:
        sample = sorted(set(undriven))[:10]
        raise NetlistError(f"undriven nets: {sample}")

    # Acyclicity check (raises on cycles).
    order = netlist.topological_gates()

    overlap = set(netlist.inputs) & (set(netlist.gates) | set(netlist.dffs))
    if overlap:
        raise NetlistError(f"nets are both primary inputs and driven: {sorted(overlap)[:10]}")

    return {
        "nets": len(netlist.all_nets()),
        "gates": len(order),
        "dffs": netlist.n_dffs,
        "undriven": len(set(undriven)),
    }
