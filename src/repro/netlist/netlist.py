"""The netlist IR.

A :class:`Netlist` is a set of named nets connected by single-output gates
and D flip-flops.  Invariants maintained by the mutator methods:

* every net has at most one driver (gate output, DFF Q, or primary input);
* gate inputs may reference nets that are declared later (construction is
  order-independent); :func:`repro.netlist.validate.validate_netlist`
  checks that everything is driven and acyclic at the end;
* primary outputs are just markers on existing nets.

DFFs are modelled as (D net -> Q net) pairs.  Clocking, scan stitching and
reset are handled by the simulators / scan package, keeping the structural
IR purely about connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.netlist.gates import GateType, check_arity


class NetlistError(Exception):
    """Raised for structural violations (duplicate drivers, bad arity...)."""


@dataclass(frozen=True)
class Gate:
    """A combinational gate: ``output = gtype(*inputs)``."""

    output: str
    gtype: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        check_arity(self.gtype, len(self.inputs))


@dataclass(frozen=True)
class Dff:
    """A D flip-flop: net ``q`` takes the value of net ``d`` at each clock."""

    q: str
    d: str


class Netlist:
    """Mutable gate-level netlist."""

    def __init__(self, name: str = "top"):
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.gates: dict[str, Gate] = {}  # keyed by output net
        self.dffs: dict[str, Dff] = {}  # keyed by Q net
        self._drivers: set[str] = set()
        self._version = 0
        self._topo_cache: list[Gate] | None = None
        self._fanout_cache: dict[str, list[Gate]] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        self._claim_driver(net, "primary input")
        self.inputs.append(net)
        self._invalidate_caches()
        return net

    def add_output(self, net: str) -> str:
        if net in self.outputs:
            raise NetlistError(f"net {net!r} is already a primary output")
        self.outputs.append(net)
        self._invalidate_caches()
        return net

    def set_outputs(self, nets: Sequence[str]) -> None:
        """Replace the primary-output list (order-sensitive, no duplicates).

        The supported way to retarget outputs in place -- assigning
        ``netlist.outputs`` directly bypasses cache/version invalidation
        and can serve stale derived structures (fanout, array IR) to
        later callers.
        """
        nets = list(nets)
        if len(set(nets)) != len(nets):
            raise NetlistError(f"duplicate primary outputs in {nets!r}")
        self.outputs = nets
        self._invalidate_caches()

    def remove_gate(self, output: str) -> Gate:
        """Remove (and return) the gate driving ``output``.

        Releases the driver claim so the net can be re-driven -- the
        fault-injection transform in :mod:`repro.atpg` rebuilds faulted
        nets this way.  All derived caches are invalidated.
        """
        gate = self.gates.pop(output, None)
        if gate is None:
            raise NetlistError(f"no gate drives net {output!r}")
        self._drivers.discard(output)
        self._invalidate_caches()
        return gate

    def remove_input(self, net: str) -> str:
        """Remove a primary input, releasing its driver claim."""
        if net not in self.inputs:
            raise NetlistError(f"net {net!r} is not a primary input")
        self.inputs.remove(net)
        self._drivers.discard(net)
        self._invalidate_caches()
        return net

    def add_gate(self, output: str, gtype: GateType, inputs: Sequence[str]) -> Gate:
        self._claim_driver(output, "gate output")
        gate = Gate(output=output, gtype=gtype, inputs=tuple(inputs))
        self.gates[output] = gate
        self._invalidate_caches()
        return gate

    def add_dff(self, q: str, d: str) -> Dff:
        self._claim_driver(q, "flip-flop output")
        dff = Dff(q=q, d=d)
        self.dffs[q] = dff
        self._invalidate_caches()
        return dff

    def _invalidate_caches(self) -> None:
        self._version += 1
        self._topo_cache = None
        self._fanout_cache = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Bumped by *every* mutator (``add_input``/``add_output``/
        ``add_gate``/``add_dff``/``set_outputs``/``remove_*``), so
        derived caches -- the array IR, compiled simulators -- can pair
        a cached structure with the netlist state it was built from and
        never serve a stale view after an interface-only mutation.
        """
        return self._version

    def _claim_driver(self, net: str, kind: str) -> None:
        if net in self._drivers:
            raise NetlistError(f"net {net!r} already has a driver (adding {kind})")
        self._drivers.add(net)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_dffs(self) -> int:
        return len(self.dffs)

    def dff_q_nets(self) -> list[str]:
        """Q nets in insertion order (the canonical flop ordering)."""
        return list(self.dffs.keys())

    def dff_d_nets(self) -> list[str]:
        return [self.dffs[q].d for q in self.dffs]

    def has_net(self, net: str) -> bool:
        return net in self._drivers or any(
            net in g.inputs for g in self.gates.values()
        )

    def driver_of(self, net: str) -> Gate | Dff | str | None:
        """The object driving ``net``: a Gate, a Dff, the string 'input',
        or None when the net is undriven (dangling)."""
        if net in self.gates:
            return self.gates[net]
        if net in self.dffs:
            return self.dffs[net]
        if net in self.inputs:
            return "input"
        return None

    def all_nets(self) -> set[str]:
        nets: set[str] = set(self.inputs) | set(self.outputs)
        for gate in self.gates.values():
            nets.add(gate.output)
            nets.update(gate.inputs)
        for dff in self.dffs.values():
            nets.add(dff.q)
            nets.add(dff.d)
        return nets

    def fanout_map(self) -> dict[str, list[Gate]]:
        """Map net -> gates reading it (DFF D pins excluded).

        Cached between mutations (``add_gate``/``add_dff`` invalidate),
        since hot loops -- the optimizer's rewrite passes, structural
        analyses -- call this repeatedly on a settled netlist.  Treat
        the returned mapping as read-only.
        """
        if self._fanout_cache is not None:
            return self._fanout_cache
        fanout: dict[str, list[Gate]] = {}
        for gate in self.gates.values():
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)
        self._fanout_cache = fanout
        return fanout

    # ------------------------------------------------------------------
    # topological ordering of the combinational part
    # ------------------------------------------------------------------
    def topological_gates(self) -> list[Gate]:
        """Gates in dependency order.

        Sources are primary inputs, DFF Q nets and constants; a gate is
        emitted once all of its inputs are resolved.  Raises NetlistError
        on a combinational cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache

        # The array IR computes the identical order over flat int
        # arrays (lazy import: repro.ir sits above this module).
        from repro.ir import enabled as _ir_enabled

        if _ir_enabled():
            from repro.ir import ir_for

            order = ir_for(self).topological_gate_objects()
            self._topo_cache = order
            return order

        resolved: set[str] = set(self.inputs) | set(self.dffs)
        pending: dict[str, int] = {}
        consumers: dict[str, list[Gate]] = {}
        ready: list[Gate] = []
        for gate in self.gates.values():
            unresolved = 0
            for net in gate.inputs:
                if net not in resolved and net in self.gates:
                    unresolved += 1
                    consumers.setdefault(net, []).append(gate)
            if unresolved == 0:
                ready.append(gate)
            else:
                pending[gate.output] = unresolved

        order: list[Gate] = []
        cursor = 0
        while cursor < len(ready):
            gate = ready[cursor]
            cursor += 1
            order.append(gate)
            for consumer in consumers.get(gate.output, ()):  # newly resolvable
                pending[consumer.output] -= 1
                if pending[consumer.output] == 0:
                    ready.append(consumer)

        if len(order) != len(self.gates):
            stuck = sorted(set(self.gates) - {g.output for g in order})
            raise NetlistError(
                f"combinational cycle involving nets {stuck[:10]}"
                + ("..." if len(stuck) > 10 else "")
            )
        self._topo_cache = order
        return order

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Size summary used by reports and the CLI."""
        by_type: dict[str, int] = {}
        for gate in self.gates.values():
            by_type[gate.gtype.value] = by_type.get(gate.gtype.value, 0) + 1
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
            "dffs": len(self.dffs),
            **{f"gate_{k}": v for k, v in sorted(by_type.items())},
        }

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={len(self.gates)}, "
            f"dffs={len(self.dffs)})"
        )


class NetNamer:
    """Generates fresh net names with a shared prefix.

    Used by transforms (locking insertion, model construction) that add
    logic to an existing netlist and must avoid colliding with its nets.
    """

    def __init__(self, netlist: Netlist, prefix: str):
        self._prefix = prefix
        self._counter = 0
        self._taken = netlist.all_nets()

    def fresh(self, hint: str = "") -> str:
        while True:
            name = f"{self._prefix}{hint}{self._counter}"
            self._counter += 1
            if name not in self._taken:
                self._taken.add(name)
                return name


def iter_gate_nets(gates: Iterable[Gate]) -> Iterator[str]:
    """Iterate every net name touched by a gate collection."""
    for gate in gates:
        yield gate.output
        yield from gate.inputs
