"""Primitive gate library.

The set matches what the ISCAS-89 ``.bench`` format uses (AND, NAND, OR,
NOR, XOR, XNOR, NOT, BUFF) plus a 2:1 MUX (select, in0, in1) used by
MUX-based locking schemes, and constants.  DFFs are represented at the
netlist level, not as a gate type, because they have state.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Sequence

try:  # numpy accelerates the vector path; the scalar path is stdlib-only
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np  # noqa: F811


class GateType(Enum):
    """The primitive gate vocabulary shared by every subsystem."""
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    MUX = "MUX"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Required input count per gate type; None means "two or more".
GATE_ARITY: dict[GateType, int | None] = {
    GateType.AND: None,
    GateType.NAND: None,
    GateType.OR: None,
    GateType.NOR: None,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.MUX: 3,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}


def check_arity(gtype: GateType, n_inputs: int) -> None:
    """Raise ValueError when an input count is illegal for the gate type."""
    required = GATE_ARITY[gtype]
    if required is None:
        if n_inputs < 2:
            raise ValueError(f"{gtype} requires at least 2 inputs, got {n_inputs}")
    elif n_inputs != required:
        raise ValueError(f"{gtype} requires {required} inputs, got {n_inputs}")


def evaluate_gate(gtype: GateType, inputs: Sequence[int]) -> int:
    """Evaluate one gate on scalar bit inputs."""
    check_arity(gtype, len(inputs))
    if gtype is GateType.AND:
        return int(all(inputs))
    if gtype is GateType.NAND:
        return int(not all(inputs))
    if gtype is GateType.OR:
        return int(any(inputs))
    if gtype is GateType.NOR:
        return int(not any(inputs))
    if gtype is GateType.XOR:
        acc = 0
        for bit in inputs:
            acc ^= bit
        return acc
    if gtype is GateType.XNOR:
        acc = 1
        for bit in inputs:
            acc ^= bit
        return acc
    if gtype is GateType.NOT:
        return 1 - inputs[0]
    if gtype is GateType.BUF:
        return int(inputs[0])
    if gtype is GateType.MUX:
        sel, in0, in1 = inputs
        return int(in1 if sel else in0)
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    raise ValueError(f"unknown gate type {gtype!r}")  # pragma: no cover


def evaluate_gate_vec(gtype: GateType, inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Evaluate one gate on numpy bit arrays (vectorised over patterns)."""
    if np is None:  # pragma: no cover - numpy-less CI leg
        raise RuntimeError("evaluate_gate_vec requires numpy")
    check_arity(gtype, len(inputs))
    if gtype is GateType.AND or gtype is GateType.NAND:
        acc = inputs[0].copy()
        for arr in inputs[1:]:
            acc &= arr
        return acc if gtype is GateType.AND else acc ^ 1
    if gtype is GateType.OR or gtype is GateType.NOR:
        acc = inputs[0].copy()
        for arr in inputs[1:]:
            acc |= arr
        return acc if gtype is GateType.OR else acc ^ 1
    if gtype is GateType.XOR or gtype is GateType.XNOR:
        acc = inputs[0].copy()
        for arr in inputs[1:]:
            acc ^= arr
        return acc if gtype is GateType.XOR else acc ^ 1
    if gtype is GateType.NOT:
        return inputs[0] ^ 1
    if gtype is GateType.BUF:
        return inputs[0].copy()
    if gtype is GateType.MUX:
        sel, in0, in1 = inputs
        return (in0 & (sel ^ 1)) | (in1 & sel)
    raise ValueError(f"vector evaluation unsupported for {gtype!r}")


# .bench name -> GateType (both directions; BUFF is the ISCAS spelling).
BENCH_NAMES: dict[str, GateType] = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MUX": GateType.MUX,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def bench_name(gtype: GateType) -> str:
    """Canonical ``.bench`` spelling of a gate type."""
    if gtype is GateType.BUF:
        return "BUFF"
    return gtype.value
