"""Metamorphic invariants the fuzzer checks on every trial.

Three per-trial invariants live here; all are *differential*: each
compares two independent computation paths that must agree, so a
violation localises a soundness bug rather than a tuning regression.

``key-equivalence``
    The locked design operated with its correct key is functionally
    identical to the original netlist.  The reference side is a
    bit-parallel replay (:class:`~repro.sim.logicsim.BitParallelSimulator`
    over packed pattern lanes) of the *unlocked* netlist; the measured
    side is whatever "authorized user" surface the lock family exposes
    (authenticated oracle, obfuscation bypass, correct-key netlist).

``attack-replay``
    Any key/seed an attack reports as recovered must reproduce the live
    oracle's responses when replayed through an independently
    constructed oracle -- and a successful outcome must carry the
    verified bit.  This is deliberately *not* the attack adapter's own
    verification: the replay oracle here is rebuilt from the recovered
    secret by this module, so an adapter that rubber-stamps its own
    answer still gets caught.

``opt-equivalence``
    The :mod:`repro.opt` optimizer applied to the trial's sampled
    netlist must preserve the interface exactly and the replay
    behaviour bit-for-bit at every level -- the adversarial test bed
    for the pass pipeline that every attack now encodes through.

Both checkers dispatch on the concrete lock class (every family needs a
different notion of "operate with the correct key"), draw all patterns
from the caller's rng, and return plain violation records so results
stay JSON-safe for the runner cache and the crash corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.dfs import DfsLock
from repro.locking.dos import DosLock, PerPatternKeystream
from repro.locking.eff import ConstantKeystream, EffStaticLock
from repro.locking.effdyn import EffDynLock
from repro.locking.iolock import IoLock
from repro.locking.scramble import ScrambleLock, swap_index_map
from repro.netlist.netlist import Netlist
from repro.prng.lfsr import FibonacciLfsr, Keystream
from repro.scan.oracle import ScanOracle
from repro.sim.logicsim import BitParallelSimulator
from repro.util.bitvec import pack_lanes, random_bits

#: Invariant names (= crash-corpus subdirectories).
KEY_EQUIVALENCE = "key-equivalence"
ATTACK_REPLAY = "attack-replay"
OPT_EQUIVALENCE = "opt-equivalence"
EXEC_STABILITY = "exec-stability"
CACHE_STABILITY = "cache-stability"
CRASH = "crash"  # the trial cell raised instead of returning a result

#: The invariants a corpus entry can deterministically re-demonstrate in
#: a single process (the stability pair needs a pool/store to diverge).
REPLAYABLE_INVARIANTS = (KEY_EQUIVALENCE, ATTACK_REPLAY, OPT_EQUIVALENCE, CRASH)

#: Scan-protocol queries per differential check.  Protocol simulation is
#: the slow side, so this stays small; the bit-parallel reference side is
#: effectively free at any width.
N_SCAN_PATTERNS = 6
#: Packed lanes per combinational check (one bitwise pass evaluates all).
N_COMB_PATTERNS = 32


@dataclass(frozen=True)
class InvariantViolation:
    """One observed invariant failure (JSON-safe)."""

    invariant: str
    detail: str

    def as_dict(self) -> dict:
        return {"invariant": self.invariant, "detail": self.detail}


# ----------------------------------------------------------------------
# bit-parallel reference predictions
# ----------------------------------------------------------------------
def predict_capture(
    netlist: Netlist,
    states: Sequence[Sequence[int]],
    pis: Sequence[Sequence[int]],
) -> tuple[list[list[int]], list[list[int]]]:
    """Ground-truth single-capture scan responses, one packed pass.

    For each lane: load ``states[j]`` (chain position ``l`` = flop ``l``
    in the netlist's canonical order), apply ``pis[j]``, one functional
    edge.  Returns ``(scan_out_rows, po_rows)`` -- the captured
    next-state per flop and the primary outputs sampled before the edge,
    exactly the protocol semantics of an unobfuscated
    :meth:`~repro.scan.oracle.ScanOracle.query`.
    """
    n_lanes = len(states)
    sim = BitParallelSimulator(netlist)
    packed = dict(zip(netlist.inputs, pack_lanes([list(p) for p in pis])))
    packed.update(
        zip(netlist.dff_q_nets(), pack_lanes([list(s) for s in states]))
    )
    words = sim.run_packed(packed, n_lanes)
    scan_rows = [
        [(words[d] >> lane) & 1 for d in netlist.dff_d_nets()]
        for lane in range(n_lanes)
    ]
    po_rows = [
        [(words[o] >> lane) & 1 for o in netlist.outputs]
        for lane in range(n_lanes)
    ]
    return scan_rows, po_rows


def _comb_outputs_packed(
    netlist: Netlist,
    free_values: dict[str, list[list[int]]],
) -> list[list[int]]:
    """Output rows of a flop-free netlist for per-net pattern columns."""
    n_lanes = len(next(iter(free_values.values())))
    sim = BitParallelSimulator(netlist)
    packed = {
        net: sum((bit & 1) << lane for lane, bit in enumerate(column))
        for net, column in free_values.items()
    }
    out_words = sim.run_packed_outputs(packed, n_lanes)
    return [
        [(word >> lane) & 1 for word in out_words] for lane in range(n_lanes)
    ]


# ----------------------------------------------------------------------
# key-equivalence
# ----------------------------------------------------------------------
def check_key_equivalence(
    lock, rng: random.Random, n_patterns: int | None = None
) -> list[InvariantViolation]:
    """Correct-key behaviour == original netlist, per lock family."""
    if isinstance(lock, (EffStaticLock, DosLock, EffDynLock)):
        return _check_scan_overlay(lock, rng, n_patterns or N_SCAN_PATTERNS)
    if isinstance(lock, ScrambleLock):
        return _check_scramble(lock, rng, n_patterns or N_SCAN_PATTERNS)
    if isinstance(lock, DfsLock):
        return _check_dfs(lock, rng, n_patterns or N_COMB_PATTERNS)
    if isinstance(lock, IoLock):
        return _check_iolock(lock, rng, n_patterns or N_COMB_PATTERNS)
    return [
        InvariantViolation(
            KEY_EQUIVALENCE,
            f"no equivalence checker for lock type {type(lock).__name__}",
        )
    ]


def _check_scan_overlay(lock, rng, n_patterns) -> list[InvariantViolation]:
    """EFF / DOS / EFF-Dyn: bypassed obfuscation == bit-parallel replay."""
    netlist = lock.netlist
    states = [random_bits(netlist.n_dffs, rng) for _ in range(n_patterns)]
    pis = [random_bits(len(netlist.inputs), rng) for _ in range(n_patterns)]
    want_scan, want_po = predict_capture(netlist, states, pis)

    violations: list[InvariantViolation] = []
    oracle = lock.make_oracle()
    for j in range(n_patterns):
        response = oracle.unlocked_query(states[j], pis[j])
        if response.scan_out != want_scan[j] or (
            response.primary_outputs != want_po[j]
        ):
            violations.append(
                InvariantViolation(
                    KEY_EQUIVALENCE,
                    f"unlocked_query diverges from bit-parallel replay on "
                    f"pattern {j}",
                )
            )
            break

    # EFF-Dyn additionally exposes the authenticated-tester path: the
    # correct TPM key must make the oracle fully transparent.
    if isinstance(lock, EffDynLock) and not violations:
        auth = lock.make_oracle(test_key=list(lock.secret_key))
        for j in range(n_patterns):
            response = auth.query(states[j], pis[j])
            if response.scan_out != want_scan[j] or (
                response.primary_outputs != want_po[j]
            ):
                violations.append(
                    InvariantViolation(
                        KEY_EQUIVALENCE,
                        f"authenticated oracle is not transparent on "
                        f"pattern {j}",
                    )
                )
                break
    return violations


def _check_scramble(lock, rng, n_patterns) -> list[InvariantViolation]:
    """A tester holding the key sees the documented chain order."""
    netlist = lock.netlist
    mapping = swap_index_map(lock.chains, lock.swap_pairs, lock.secret_key)
    states = [random_bits(netlist.n_dffs, rng) for _ in range(n_patterns)]
    pis = [random_bits(len(netlist.inputs), rng) for _ in range(n_patterns)]
    want_scan, want_po = predict_capture(netlist, states, pis)
    oracle = lock.make_oracle()
    for j in range(n_patterns):
        # Pre-permute the pattern and post-permute the response with the
        # correct key (the map is an involution); the result must be the
        # clean multi-chain behaviour = the bit-parallel prediction.
        routed_in = [states[j][mapping[g]] for g in range(len(mapping))]
        response = oracle.query(routed_in, pis[j])
        descrambled = [
            response.scan_out[mapping[g]] for g in range(len(mapping))
        ]
        if descrambled != want_scan[j] or (
            response.primary_outputs != want_po[j]
        ):
            return [
                InvariantViolation(
                    KEY_EQUIVALENCE,
                    f"descrambled response diverges from bit-parallel "
                    f"replay on pattern {j}",
                )
            ]
    return []


def _check_dfs(lock: DfsLock, rng, n_patterns) -> list[InvariantViolation]:
    """DFS: the PO-only oracle == the original (pre-lock) netlist's POs."""
    original = lock.rll.original
    oracle = lock.make_oracle()
    functional = oracle.functional_inputs
    for j in range(n_patterns):
        state = random_bits(original.n_dffs, rng)
        pi = random_bits(len(functional), rng)
        observed = oracle.load_and_observe(state, pi)
        _, want_po = predict_capture(original, [state], [pi])
        if observed != want_po[0]:
            return [
                InvariantViolation(
                    KEY_EQUIVALENCE,
                    f"load_and_observe diverges from the original netlist "
                    f"on pattern {j}",
                )
            ]
    return []


def _check_iolock(lock: IoLock, rng, n_patterns) -> list[InvariantViolation]:
    """Comb-IO locks: locked core + secret key == original core, packed."""
    mismatch = _io_key_mismatch(lock, list(lock.secret_key), rng, n_patterns)
    if mismatch is not None:
        return [
            InvariantViolation(
                KEY_EQUIVALENCE,
                f"locked core with the secret key diverges from the "
                f"original on pattern {mismatch}",
            )
        ]
    return []


def _io_key_mismatch(
    lock: IoLock, key: Sequence[int], rng, n_patterns
) -> int | None:
    """First pattern index where locked(key) != original, else None."""
    key_set = set(lock.key_inputs)
    x_nets = [net for net in lock.locked.inputs if net not in key_set]
    if set(lock.original.inputs) != set(x_nets):
        # A plugin whose locked core renames or drops oracle inputs has
        # no by-name alignment; surface that as a loud plugin bug (the
        # campaign records the raised error as a crash violation).
        raise ValueError(
            "locked core's non-key inputs do not match the original's: "
            f"{sorted(x_nets)} vs {sorted(lock.original.inputs)}"
        )
    x_rows = [random_bits(len(x_nets), rng) for _ in range(n_patterns)]
    # Columns are keyed by net NAME on both sides, so an IoLock that
    # interleaves or reorders key inputs still compares like with like.
    x_columns = {
        net: [row[i] for row in x_rows] for i, net in enumerate(x_nets)
    }
    free = dict(x_columns)
    free.update(
        {
            net: [int(bit)] * n_patterns
            for net, bit in zip(lock.key_inputs, key)
        }
    )
    locked_rows = _comb_outputs_packed(lock.locked, free)
    original_rows = _comb_outputs_packed(lock.original, x_columns)
    # Align output orders by name: the locked core re-declares the same
    # output nets, but defensively map instead of assuming identical order.
    locked_index = {net: k for k, net in enumerate(lock.locked.outputs)}
    order = [locked_index[net] for net in lock.original.outputs]
    for j in range(n_patterns):
        if [locked_rows[j][k] for k in order] != original_rows[j]:
            return j
    return None


# ----------------------------------------------------------------------
# opt-equivalence
# ----------------------------------------------------------------------
def check_opt_equivalence(
    netlist: Netlist,
    rng: random.Random,
    levels: Sequence[int] = (1, 2),
    n_patterns: int | None = None,
) -> list[InvariantViolation]:
    """``optimize(netlist) == netlist`` under bit-parallel replay.

    For every requested level: the optimizer must keep the interface
    (input/output/flop names and order) byte-identical and the observed
    behaviour -- captured next-state per flop plus primary outputs, the
    exact :func:`predict_capture` semantics -- equal on random packed
    pattern lanes.  This is how the optimizer is adversarially tested by
    the campaign machinery: every sampled circuit shape exercises it,
    failures shrink and land in the crash corpus like any other bug.
    """
    from repro.opt import optimize

    n = n_patterns or N_COMB_PATTERNS
    states = [random_bits(netlist.n_dffs, rng) for _ in range(n)]
    pis = [random_bits(len(netlist.inputs), rng) for _ in range(n)]
    want = predict_capture(netlist, states, pis)

    violations: list[InvariantViolation] = []
    for level in levels:
        if level < 1:
            continue  # level 0 is the identity by definition
        optimized = optimize(netlist, level=level).netlist
        if (
            optimized.inputs != netlist.inputs
            or optimized.outputs != netlist.outputs
            or list(optimized.dffs) != list(netlist.dffs)
            or [d.d for d in optimized.dffs.values()]
            != [d.d for d in netlist.dffs.values()]
        ):
            violations.append(
                InvariantViolation(
                    OPT_EQUIVALENCE,
                    f"level {level} optimization altered the netlist "
                    "interface (pinned nets must survive unchanged)",
                )
            )
            continue
        if predict_capture(optimized, states, pis) != want:
            violations.append(
                InvariantViolation(
                    OPT_EQUIVALENCE,
                    f"level {level} optimization diverges from the "
                    "original netlist under bit-parallel replay",
                )
            )
    return violations


# ----------------------------------------------------------------------
# attack-replay
# ----------------------------------------------------------------------
def check_attack_replay(
    lock, outcome, rng: random.Random, n_patterns: int | None = None
) -> list[InvariantViolation]:
    """A claimed success must survive independent oracle replay.

    ``outcome`` is the normalised
    :class:`~repro.matrix.registry.AttackOutcome`.  Failed attacks are
    fine (the defense may genuinely resist at this size); *successful*
    ones must (a) carry the verified bit and (b) hold a key/seed that
    reproduces the real oracle's responses through a replay oracle built
    here, from scratch, out of the recovered secret.
    """
    if not outcome.success:
        return []
    violations: list[InvariantViolation] = []
    if not outcome.verified:
        violations.append(
            InvariantViolation(
                ATTACK_REPLAY, "successful outcome without the verified bit"
            )
        )
    if outcome.recovered_key is None:
        violations.append(
            InvariantViolation(
                ATTACK_REPLAY, "successful outcome without a recovered key"
            )
        )
        return violations
    key = [int(b) for b in outcome.recovered_key]
    try:
        detail = _replay_mismatch(
            lock, key, rng, n_patterns or N_SCAN_PATTERNS
        )
    except Exception as exc:  # degenerate key (e.g. all-zero LFSR seed)
        detail = f"replay oracle rejected the recovered key: {exc}"
    if detail is not None:
        violations.append(InvariantViolation(ATTACK_REPLAY, detail))
    return violations


def _replay_mismatch(
    lock, key: list[int], rng, n_patterns
) -> str | None:
    """None when the recovered key replays cleanly, else a description."""
    if isinstance(lock, EffStaticLock):
        replay = ScanOracle(lock.netlist, lock.spec, ConstantKeystream(key))
        return _compare_scan_oracles(lock, replay, rng, n_patterns)
    if isinstance(lock, EffDynLock):
        replay = ScanOracle(
            lock.netlist,
            lock.spec,
            Keystream(
                FibonacciLfsr(
                    width=len(key), seed_bits=key, taps=lock.lfsr_taps
                )
            ),
        )
        return _compare_scan_oracles(lock, replay, rng, n_patterns)
    if isinstance(lock, DosLock):
        lfsr = FibonacciLfsr(
            width=len(key), seed_bits=key, taps=lock.lfsr_taps
        )
        replay = ScanOracle(
            lock.netlist,
            lock.spec,
            PerPatternKeystream(
                lfsr, 2 * lock.spec.n_flops, lock.period_p
            ),
        )
        return _compare_scan_oracles(lock, replay, rng, n_patterns)
    if isinstance(lock, ScrambleLock):
        recovered_map = swap_index_map(lock.chains, lock.swap_pairs, key)
        true_map = swap_index_map(
            lock.chains, lock.swap_pairs, lock.secret_key
        )
        if recovered_map == true_map:
            return None
        # Distinct permutations can still be observationally correct
        # when the circuit is symmetric under the swapped flops (the
        # fuzzer found exactly this on 1x1x1 chains), so fall back to a
        # behavioural comparison instead of flagging the key shape.
        from repro.locking.scramble import ScrambleScanOracle

        replay = ScrambleScanOracle(
            lock.netlist, lock.chains, lock.swap_pairs, key
        )
        return _compare_scan_oracles(lock, replay, rng, n_patterns)
    if isinstance(lock, DfsLock):
        return _replay_dfs(lock, key, rng, n_patterns)
    if isinstance(lock, IoLock):
        mismatch = _io_key_mismatch(lock, key, rng, N_COMB_PATTERNS)
        if mismatch is not None:
            return (
                f"recovered key diverges from the oracle on pattern "
                f"{mismatch}"
            )
        return None
    return f"no replay model for lock type {type(lock).__name__}"


def _compare_scan_oracles(lock, replay, rng, n_patterns) -> str | None:
    """Replay oracle must reproduce the live oracle query-for-query."""
    live = lock.make_oracle()
    n = lock.netlist.n_dffs
    for j in range(n_patterns):
        pattern = random_bits(n, rng)
        pis = random_bits(len(lock.netlist.inputs), rng)
        a = live.query(pattern, pis)
        b = replay.query(pattern, pis)
        if a.scan_out != b.scan_out or a.primary_outputs != b.primary_outputs:
            return f"recovered key diverges from the oracle on query {j}"
    return None


def _replay_dfs(lock: DfsLock, key, rng, n_patterns) -> str | None:
    """Recovered RLL key must predict the PO-only oracle's answers."""
    oracle = lock.make_oracle()
    locked = lock.rll.locked
    functional = oracle.functional_inputs
    from repro.sim.logicsim import CombinationalSimulator

    sim = CombinationalSimulator(locked)
    for j in range(n_patterns):
        state = random_bits(locked.n_dffs, rng)
        pi = random_bits(len(functional), rng)
        observed = oracle.load_and_observe(state, pi)
        inputs = dict(zip(functional, pi))
        inputs.update(zip(lock.rll.key_inputs, key))
        values = sim.run(inputs, dict(zip(locked.dff_q_nets(), state)))
        if [values[net] for net in locked.outputs] != observed:
            return f"recovered key diverges from the oracle on query {j}"
    return None
