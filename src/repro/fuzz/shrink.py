"""Greedy minimization of failing fuzz trials.

A failing trial arrives as the flat JSON param dict of its
:func:`~repro.fuzz.campaign.fuzz_cell` spec.  The shrinker repeatedly
proposes smaller variants -- fewer flops, narrower keys, sparser logic,
fewer I/Os -- and keeps a variant whenever the *same* invariant still
fails on it, so the corpus ends up holding the smallest circuit shape
that demonstrates each bug rather than whatever the sampler happened to
draw.  Everything is deterministic: candidates are generated in a fixed
order and evaluated by re-running the trial cell in-process, so a
shrink of the same failure always lands on the same minimum.
"""

from __future__ import annotations

from typing import Iterator

from repro.fuzz.invariants import CRASH

#: Hard lower bounds per shrinkable parameter (generator/lock validity).
PARAM_FLOORS = {
    "n_flops": 3,
    "key_bits": 1,
    "n_inputs": 1,
    "n_outputs": 1,
    "max_fanin": 2,
    "locality": 4,
}

#: Shrink priority: structural size first (largest payoff per accepted
#: step), then widths, then fan-in/locality detail.
_SHRINK_ORDER = (
    "n_flops",
    "key_bits",
    "gates_per_flop",
    "n_inputs",
    "n_outputs",
    "max_fanin",
    "locality",
)


def _reduced_values(name: str, value) -> list:
    """Candidate smaller values for one parameter, biggest jump first."""
    if name == "gates_per_flop":
        if value <= 1.0:
            return []
        halved = max(1.0, round(1.0 + (value - 1.0) / 2, 2))
        return [v for v in (1.0, halved) if v < value]
    floor = PARAM_FLOORS[name]
    if value <= floor:
        return []
    halved = max(floor, value // 2)
    candidates = [halved, value - 1]
    # Deduplicate while keeping the big jump first.
    return [v for i, v in enumerate(candidates) if v not in candidates[:i]]


def candidate_reductions(params: dict) -> Iterator[dict]:
    """Yield smaller trial variants in deterministic priority order."""
    for name in _SHRINK_ORDER:
        if name not in params:
            continue
        for value in _reduced_values(name, params[name]):
            candidate = dict(params)
            candidate[name] = value
            yield candidate


def trial_fails(params: dict, invariant: str, profile) -> bool:
    """Does the trial still fail ``invariant``?  (Runs the cell in-process.)"""
    from repro.fuzz.campaign import fuzz_cell

    try:
        result = fuzz_cell(profile, **params)
    except Exception:
        return invariant == CRASH
    if invariant == CRASH:
        return False
    return any(
        v.get("invariant") == invariant
        for v in result.get("violations", [])
    )


def shrink_trial(
    params: dict,
    invariant: str,
    profile,
    *,
    max_evals: int = 48,
) -> tuple[dict, int]:
    """Greedily minimize ``params`` while ``invariant`` keeps failing.

    Returns ``(shrunk_params, evaluations_spent)``.  Each round walks
    the candidate list and restarts from the first accepted reduction;
    the loop ends when no candidate still fails or the evaluation budget
    runs out.  The input params are returned unchanged when nothing
    smaller reproduces the failure.
    """
    current = dict(params)
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in candidate_reductions(current):
            if evals >= max_evals:
                break
            evals += 1
            if trial_fails(candidate, invariant, profile):
                current = candidate
                improved = True
                break
    return current, evals
