"""Differential fuzzing of the attack x defense landscape.

The rest of the repo tests hand-enumerated scenarios (fixed ISCAS
registry benchmarks, the matrix grid); this package samples the space
those scenarios live in -- circuit shapes x key sizes x applicable
(attack, defense) pairs -- under one seeded RNG stream and checks
metamorphic invariants on every trial:

* ``key-equivalence``  -- the lock with its correct key behaves exactly
  like the original netlist (bit-parallel replay);
* ``attack-replay``    -- a key an attack claims to have recovered must
  reproduce the live oracle's responses under independent replay;
* ``exec-stability``   -- a trial's result is identical whether it ran
  in a pool worker or serially in-process;
* ``cache-stability``  -- a result store round-trip returns the fresh
  result byte-for-byte.

Failing trials are minimized by a greedy shrinker
(:mod:`repro.fuzz.shrink`) and persisted to a reproducible crash corpus
(:mod:`repro.fuzz.corpus`); campaigns run as ``JobSpec``s through the
cached parallel scheduler (:mod:`repro.fuzz.campaign`), surfaced as
``dynunlock fuzz`` / ``dynunlock fuzz-replay`` and gated in CI by the
``fuzz-smoke`` job.
"""

from repro.fuzz.campaign import (
    CampaignReport,
    FUZZ_HEADERS,
    campaign_rows,
    fuzz_cell,
    fuzz_trial_specs,
    run_campaign,
    sample_trial_params,
)
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    CrashEntry,
    load_corpus,
    replay_entry,
    write_entry,
)
from repro.fuzz.invariants import (
    InvariantViolation,
    check_attack_replay,
    check_key_equivalence,
)
from repro.fuzz.shrink import shrink_trial

__all__ = [
    "CampaignReport",
    "CrashEntry",
    "DEFAULT_CORPUS_DIR",
    "FUZZ_HEADERS",
    "InvariantViolation",
    "campaign_rows",
    "check_attack_replay",
    "check_key_equivalence",
    "fuzz_cell",
    "fuzz_trial_specs",
    "load_corpus",
    "replay_entry",
    "run_campaign",
    "sample_trial_params",
    "shrink_trial",
    "write_entry",
]
