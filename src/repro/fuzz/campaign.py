"""The seeded differential-fuzzing campaign driver.

One campaign = ``trials`` independent trials drawn from a single seeded
RNG stream: trial ``i``'s circuit shape, key width and (attack, defense)
pair are all derived from ``hash_label(seed, "fuzz/trial/i")``, so a
campaign is fully described by ``(profile, trials, seed)`` -- rerunning
it reproduces every trial, every violation, and every corpus entry
byte-for-byte, regardless of ``--jobs``.

Trials execute as ``"fuzz"`` :class:`~repro.runner.spec.JobSpec`s
through the cached parallel scheduler, which makes campaigns parallel,
resumable and memoised like every other experiment grid.  Trial results
deliberately contain *no wall-clock fields*: determinism is the product
being tested, so the cell's output must be a pure function of its spec.

On top of the per-trial invariants (checked inside the cell), the driver
itself runs two meta-invariants on a deterministic subsample of trials:

* ``exec-stability``  -- the scheduler-returned result must equal an
  in-process re-execution of the same spec (covers serial vs ``--jobs
  N`` and, for cache hits, cache-replay vs fresh);
* ``cache-stability`` -- a result-store round-trip must hand back the
  fresh result byte-for-byte.

Failing trials are shrunk (:mod:`repro.fuzz.shrink`) and persisted to
the crash corpus (:mod:`repro.fuzz.corpus`).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bench_suite.generator import (
    config_from_dict,
    config_to_dict,
    generate_circuit,
    sample_config,
)
from repro.fuzz.corpus import CrashEntry, write_entry
from repro.fuzz.invariants import (
    CACHE_STABILITY,
    CRASH,
    EXEC_STABILITY,
    REPLAYABLE_INVARIANTS,
    check_attack_replay,
    check_key_equivalence,
    check_opt_equivalence,
)
from repro.fuzz.shrink import shrink_trial
from repro.matrix.registry import (
    get_attack,
    get_defense,
    sample_applicable_pair,
)
from repro.runner.scheduler import JobOutcome, run_jobs
from repro.runner.spec import JobSpec
from repro.util.rng import hash_label

#: Widest key the fuzzer samples.  Keys beyond this blow up the
#: exhaustive attacks (brute force, point-function SAT) without adding
#: shape diversity, which is what the fuzzer is for.
FUZZ_MAX_KEY_BITS = 6

#: Every how many trials the driver runs the stability meta-checks.
STABILITY_EVERY = 8


def sample_trial_params(
    campaign_seed: int, index: int, opt_level: int | None = None
) -> dict[str, Any]:
    """Derive trial ``index``'s full parameter dict from the campaign seed.

    All randomness flows through one ``hash_label`` stream keyed by the
    campaign seed and the trial index; the resulting dict is flat and
    JSON-safe so it can live in a :class:`JobSpec` and a corpus entry.

    The *active* netlist-optimization level is captured into the params
    (not sampled): it participates in the spec hash and is persisted in
    every crash-corpus entry, so ``fuzz-replay`` re-runs a shrunk trial
    through the same optimization pipeline that was live when the
    failure was recorded -- replays stay reproducible even after the
    process-wide default changes.
    """
    from repro.opt import resolve_level

    rng = random.Random(hash_label(campaign_seed, f"fuzz/trial/{index}"))
    config = sample_config(rng)
    attack, defense = sample_applicable_pair(rng)
    cap = get_defense(defense).default_key_bits or FUZZ_MAX_KEY_BITS
    cap = max(1, min(cap, FUZZ_MAX_KEY_BITS, config.n_flops - 1))
    key_bits = rng.randint(1, cap)
    return {
        "attack": attack,
        "defense": defense,
        "key_bits": key_bits,
        "opt_level": resolve_level(opt_level),
        "trial_seed": hash_label(campaign_seed, f"fuzz/circuit/{index}"),
        # Via the serialization hook, not hand-enumeration: a field
        # added to GeneratorConfig automatically joins the spec hash,
        # the cache key, and the crash corpus.
        **config_to_dict(config),
    }


def fuzz_trial_specs(
    profile, trials: int, seed: int, opt_level: int | None = None
) -> list[JobSpec]:
    """Enumerate a whole campaign as scheduler specs."""
    return [
        JobSpec.make("fuzz", profile, **sample_trial_params(seed, i, opt_level))
        for i in range(trials)
    ]


def fuzz_cell(
    profile,
    *,
    attack: str,
    defense: str,
    key_bits: int,
    trial_seed: int,
    n_flops: int,
    n_inputs: int,
    n_outputs: int,
    gates_per_flop: float,
    max_fanin: int,
    locality: int,
    opt_level: int | None = None,
) -> dict[str, Any]:
    """Run one fuzz trial: build, check equivalence, attack, check replay.

    Returns a JSON-safe dict with **no wall-clock fields** -- the result
    must be a pure function of the spec (that purity is itself one of
    the invariants under test).  A lock that cannot be built at this
    shape (e.g. scramble with no equal-length chain pair) is an honest
    structural skip, not a violation.

    ``opt_level`` is the optimization level the trial's attack runs at
    (recorded by :func:`sample_trial_params`, persisted in corpus
    entries); the opt-equivalence invariant always checks every live
    level on the sampled circuit, so the SAT sweep is fuzzed even when
    attacks preprocess at the cheaper default.
    """
    from repro.matrix.registry import call_attack
    from repro.opt import MAX_LEVEL, resolve_level

    config = config_from_dict(
        {
            "n_flops": n_flops,
            "n_inputs": n_inputs,
            "n_outputs": n_outputs,
            "gates_per_flop": gates_per_flop,
            "max_fanin": max_fanin,
            "locality": locality,
        }
    )
    attack_spec = get_attack(attack)
    defense_spec = get_defense(defense)
    level = resolve_level(opt_level)
    rng = random.Random(hash_label(trial_seed, f"fuzz/{defense}/{attack}"))
    netlist = generate_circuit(config, rng, name=f"fuzz{trial_seed % 0xFFFF:04x}")
    kb = max(1, min(key_bits, netlist.n_dffs - 1))
    base = {
        "attack": attack,
        "defense": defense,
        "n_flops": netlist.n_dffs,
        "built": False,
        "key_bits": kb,
        "opt_level": level,
        "success": False,
        "verified": False,
        "iterations": 0,
        "queries": 0,
        "violations": [],
    }
    violations = [
        v.as_dict()
        for v in check_opt_equivalence(
            netlist, rng, levels=range(1, MAX_LEVEL + 1)
        )
    ]
    try:
        lock = defense_spec.build(netlist, kb, rng)
    except ValueError as exc:
        base["skip_reason"] = str(exc)
        base["violations"] = violations
        return base
    base["built"] = True
    base["key_bits"] = int(getattr(lock, "key_bits", kb))

    violations += [v.as_dict() for v in check_key_equivalence(lock, rng)]
    outcome = call_attack(
        attack_spec,
        lock,
        profile=profile,
        timeout_s=profile.timeout_s,
        opt_level=level,
    )
    violations += [v.as_dict() for v in check_attack_replay(lock, outcome, rng)]
    base.update(
        success=bool(outcome.success),
        verified=bool(outcome.verified),
        iterations=int(outcome.iterations),
        queries=int(outcome.queries),
        violations=violations,
    )
    return base


def _canonical(result: dict | None) -> str:
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


@dataclass
class CampaignReport:
    """Everything one campaign produced, in trial order."""

    seed: int
    n_trials: int
    outcomes: list[JobOutcome] = field(default_factory=list)
    violations: list[dict] = field(default_factory=list)
    n_not_run: int = 0  # trials skipped by the time budget
    n_cached: int = 0
    n_computed: int = 0
    wall_s: float = 0.0
    corpus_paths: list[str] = field(default_factory=list)

    @property
    def n_skipped_builds(self) -> int:
        """Trials whose lock was structurally impossible at that shape."""
        return sum(
            1
            for o in self.outcomes
            if o.ok and not o.result.get("built", False)
        )

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        # outcomes holds only dispatched trials; n_not_run is the rest.
        ran = len(self.outcomes)
        parts = [
            f"{ran}/{self.n_trials} trial(s) run "
            f"({self.n_computed} computed, {self.n_cached} cached, "
            f"{self.n_skipped_builds} unbuildable)",
            f"{len(self.violations)} violation(s)",
            f"{self.wall_s:.2f}s wall",
        ]
        if self.n_not_run:
            parts.insert(1, f"{self.n_not_run} not run (time budget)")
        return "; ".join(parts)


FUZZ_HEADERS = [
    "Defense",
    "Attack",
    "Trials",
    "Unbuildable",
    "Broken",
    "Violations",
]


def campaign_rows(report: CampaignReport) -> list[list]:
    """Aggregate trial outcomes per (defense, attack) pair, sampled order."""
    grouped: dict[tuple[str, str], dict[str, int]] = {}
    for outcome in report.outcomes:
        if not outcome.ok or outcome.result is None:
            continue
        key = (
            outcome.spec.params["defense"],
            outcome.spec.params["attack"],
        )
        stats = grouped.setdefault(
            key, {"trials": 0, "unbuildable": 0, "broken": 0, "violations": 0}
        )
        stats["trials"] += 1
        if not outcome.result.get("built", False):
            stats["unbuildable"] += 1
        if outcome.result.get("success") and outcome.result.get("verified"):
            stats["broken"] += 1
        stats["violations"] += len(outcome.result.get("violations", []))
    for violation in report.violations:
        # Cell-level violations were already counted out of the result
        # dicts above; driver-level ones (stability pair, crashes) are
        # added here.  A pair whose every trial crashed has no ok
        # outcome, so the group may not exist yet -- create it rather
        # than silently dropping the row from the table and artifact.
        if violation["invariant"] not in (
            EXEC_STABILITY,
            CACHE_STABILITY,
            CRASH,
        ):
            continue
        trial = violation.get("trial", {})
        key = (trial.get("defense", "?"), trial.get("attack", "?"))
        stats = grouped.setdefault(
            key, {"trials": 0, "unbuildable": 0, "broken": 0, "violations": 0}
        )
        stats["violations"] += 1
        if violation["invariant"] == CRASH:
            # A crashed trial produced no ok outcome, so the first loop
            # never counted it; keep the Trials column honest.
            stats["trials"] += 1
    return [
        [defense, attack, s["trials"], s["unbuildable"], s["broken"], s["violations"]]
        for (defense, attack), s in sorted(grouped.items())
    ]


ProgressFn = Callable[[str], None]


def run_campaign(
    profile,
    *,
    trials: int,
    seed: int,
    jobs: int = 1,
    store=None,
    time_budget_s: float | None = None,
    corpus_dir: str | None = None,
    progress: ProgressFn | None = None,
    stability_every: int = STABILITY_EVERY,
    shrink_limit: int = 8,
    shrink_evals: int = 48,
    opt_level: int | None = None,
    observer=None,
) -> CampaignReport:
    """Run one seeded campaign end to end; see the module docstring.

    ``time_budget_s`` bounds *scheduling*: the driver dispatches trials
    in chunks and stops starting new ones once the budget is spent
    (already-dispatched chunks finish).  Violations are shrunk (up to
    ``shrink_limit`` of them) and written to ``corpus_dir`` when given.
    ``opt_level`` overrides the optimization level recorded into every
    trial (None = the active default).  ``observer`` (a
    :class:`~repro.observability.session.RunObserver`) instruments the
    trial scheduling; the invariant checks and shrinking run in-process
    and are reported only through campaign-level metrics.
    """
    started = time.perf_counter()
    say = progress if progress is not None else (lambda _msg: None)
    specs = fuzz_trial_specs(profile, trials, seed, opt_level)
    report = CampaignReport(seed=seed, n_trials=trials)

    from repro.reports.experiments import adapt_progress

    # Without a budget there is no reason to pay per-chunk pool spin-up.
    chunk_size = max(1, jobs) * 4 if time_budget_s is not None else len(specs)
    cursor = 0
    while cursor < len(specs):
        if (
            time_budget_s is not None
            and cursor > 0
            and time.perf_counter() - started > time_budget_s
        ):
            break
        chunk = specs[cursor : cursor + chunk_size]
        chunk_report = run_jobs(
            chunk,
            jobs=jobs,
            store=store,
            progress=adapt_progress(say),
            observer=observer,
        )
        for outcome in chunk_report.outcomes:
            outcome.index += cursor  # chunk-local -> campaign-global
        report.outcomes.extend(chunk_report.outcomes)
        report.n_cached += chunk_report.n_cached
        report.n_computed += chunk_report.n_computed
        cursor += len(chunk)
    report.n_not_run = len(specs) - len(report.outcomes)

    collect_violations(report, stability_every, say)
    shrink_and_persist(
        report, profile, corpus_dir, shrink_limit, shrink_evals, say
    )
    report.wall_s = time.perf_counter() - started
    return report


def collect_violations(
    report: CampaignReport,
    stability_every: int,
    say: ProgressFn,
) -> None:
    """Gather cell-level violations, crashes, and stability mismatches.

    The cache-stability probe deliberately uses an isolated throwaway
    store (not the campaign's own): resume state must not be able to
    mask a JSON-encoding instability.
    """
    from repro.reports.cells import run_cell
    from repro.runner.stores import open_store

    for outcome in report.outcomes:
        trial = dict(outcome.spec.params)
        if not outcome.ok:
            report.violations.append(
                {
                    "invariant": CRASH,
                    "detail": outcome.error or "trial raised",
                    "index": outcome.index,
                    "trial": trial,
                }
            )
            continue
        for violation in outcome.result.get("violations", []):
            report.violations.append(
                {
                    "invariant": violation["invariant"],
                    "detail": violation["detail"],
                    "index": outcome.index,
                    "trial": trial,
                }
            )

        if stability_every and outcome.index % stability_every == 0:
            try:
                fresh = run_cell(outcome.spec)
            except Exception as exc:
                # The pool run succeeded but the in-process rerun
                # raised: a nondeterministic crash is itself a finding,
                # not a reason to abort the campaign.
                report.violations.append(
                    {
                        "invariant": EXEC_STABILITY,
                        "detail": (
                            "in-process re-execution raised although the "
                            f"scheduler run succeeded: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        "index": outcome.index,
                        "trial": trial,
                    }
                )
                say(f"stability rerun crashed on trial {outcome.index}")
                continue
            if _canonical(fresh) != _canonical(outcome.result):
                invariant = (
                    CACHE_STABILITY if outcome.cached else EXEC_STABILITY
                )
                report.violations.append(
                    {
                        "invariant": invariant,
                        "detail": (
                            "cached result differs from fresh re-execution"
                            if outcome.cached
                            else "scheduler result differs from in-process "
                            "re-execution"
                        ),
                        "index": outcome.index,
                        "trial": trial,
                    }
                )
                say(f"stability mismatch on trial {outcome.index}")
                continue
            # Store round-trip: byte-stability of the JSON encoding,
            # checked against an isolated throwaway store so the
            # campaign's own resume state cannot mask a mismatch.  The
            # probe honours REPRO_CACHE_BACKEND, so a campaign run on
            # the sqlite backend also fuzzes the sqlite round-trip.
            import tempfile

            with tempfile.TemporaryDirectory() as scratch:
                with open_store(scratch, version="fuzzprobe") as probe:
                    probe.put(outcome.spec, fresh)
                    replayed = probe.get(outcome.spec)
            if _canonical(replayed) != _canonical(fresh):
                report.violations.append(
                    {
                        "invariant": CACHE_STABILITY,
                        "detail": "store round-trip altered the result",
                        "index": outcome.index,
                        "trial": trial,
                    }
                )
                say(f"cache mismatch on trial {outcome.index}")


def shrink_and_persist(
    report: CampaignReport,
    profile,
    corpus_dir: str | None,
    shrink_limit: int,
    shrink_evals: int,
    say: ProgressFn,
    sink: Callable[[CrashEntry], str | None] | None = None,
) -> None:
    """Minimize violations and persist them.

    The default destination is the flat crash corpus under
    ``corpus_dir`` (:func:`repro.fuzz.corpus.write_entry`); callers
    with their own store -- the farm's deduplicating
    :class:`~repro.farm.corpus.FarmCorpus` -- pass ``sink``, a
    callable from entry to the path written (or ``None`` when the
    entry was dropped, e.g. as a duplicate).
    """
    from repro.reports.profiles import profile_to_dict

    if sink is None and corpus_dir is not None:
        directory = corpus_dir

        def sink(entry: CrashEntry) -> str | None:
            return str(write_entry(directory, entry))

    # One trial can violate the same invariant in several ways (e.g. a
    # missing verified bit AND a diverging key); those share a corpus
    # file and one shrink, so group before spending any budget.
    grouped: dict[tuple[int, str], list[dict]] = {}
    for violation in report.violations:
        violation["shrunk_trial"] = dict(violation["trial"])
        violation["shrink_evals"] = 0
        key = (violation["index"], violation["invariant"])
        grouped.setdefault(key, []).append(violation)

    shrunk_budget = shrink_limit
    for (index, invariant), group in grouped.items():
        trial = group[0]["trial"]
        shrunk, evals = dict(trial), 0
        if invariant in REPLAYABLE_INVARIANTS and shrunk_budget > 0:
            shrunk_budget -= 1
            say(f"shrinking trial {index} ({invariant})")
            shrunk, evals = shrink_trial(
                trial, invariant, profile, max_evals=shrink_evals
            )
        for violation in group:
            violation["shrunk_trial"] = shrunk
            violation["shrink_evals"] = evals
        if sink is not None:
            entry = CrashEntry(
                invariant=invariant,
                detail="; ".join(v["detail"] for v in group),
                trial=shrunk,
                original_trial=trial,
                profile=profile_to_dict(profile),
                shrink_evals=evals,
                meta={"campaign_seed": report.seed, "index": index},
            )
            path = sink(entry)
            if path is None:
                continue
            for violation in group:
                violation["corpus_path"] = str(path)
            report.corpus_paths.append(str(path))
