"""The reproducible crash corpus.

Layout: ``<root>/<invariant>/<trial-seed>.json``, one file per
(invariant, trial) pair, written atomically (temp file + rename, the
same idiom as :mod:`repro.runner.store`) so an interrupted campaign
never leaves a torn entry.  Every entry carries the *shrunk* trial
params (what ``replay`` runs), the original sampled params (for
forensics), the profile the failure was observed under, and the
invariant + detail -- enough to re-demonstrate the failure on a clean
checkout with no campaign state.

Entries are deterministic byte-for-byte: trial params, shrink results
and violation details contain no wall-clock or per-process values, so
rerunning the same seeded campaign rewrites identical files.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.fuzz.invariants import REPLAYABLE_INVARIANTS

DEFAULT_CORPUS_DIR = ".fuzz_corpus"


class CorpusError(ValueError):
    """Raised on malformed corpus entries or directories."""


@dataclass
class CrashEntry:
    """One minimized invariant failure, ready to replay."""

    invariant: str
    detail: str
    trial: dict  # shrunk params -- what replay_entry() executes
    original_trial: dict  # as sampled, pre-shrink
    profile: dict
    shrink_evals: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def replayable(self) -> bool:
        """Whether one in-process run can re-demonstrate the failure."""
        return self.invariant in REPLAYABLE_INVARIANTS

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CrashEntry":
        try:
            return cls(
                invariant=str(data["invariant"]),
                detail=str(data["detail"]),
                trial=dict(data["trial"]),
                original_trial=dict(data["original_trial"]),
                profile=dict(data["profile"]),
                shrink_evals=int(data.get("shrink_evals", 0)),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusError(f"malformed corpus entry: {exc}") from exc


def entry_path(root: str | Path, entry: CrashEntry) -> Path:
    """Deterministic file for ``entry``: keyed by invariant + trial seed."""
    seed = int(entry.original_trial.get("trial_seed", 0))
    return Path(root) / entry.invariant / f"{seed:016x}.json"


def write_entry(root: str | Path, entry: CrashEntry) -> Path:
    """Atomically persist ``entry``; returns the file written."""
    path = entry_path(root, entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(entry.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_corpus(root: str | Path) -> list[tuple[Path, CrashEntry]]:
    """Every entry under ``root``, sorted by path (missing root = empty)."""
    root = Path(root)
    if not root.is_dir():
        return []
    entries: list[tuple[Path, CrashEntry]] = []
    for path in sorted(root.rglob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CorpusError(f"unreadable corpus entry {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise CorpusError(f"corpus entry {path} is not a JSON object")
        entries.append((path, CrashEntry.from_dict(data)))
    return entries


def replay_entry(entry: CrashEntry, profile=None) -> bool | None:
    """Re-run one entry's shrunk trial; did the failure reproduce?

    Returns ``True``/``False`` for replayable invariants, ``None`` for
    the stability pair (their failure mode needs a worker pool or a
    store round-trip, which a single-process replay cannot exercise).
    ``profile`` defaults to the profile recorded in the entry.
    """
    from repro.fuzz.shrink import trial_fails
    from repro.reports.profiles import profile_from_dict

    if not entry.replayable:
        return None
    if profile is None:
        profile = profile_from_dict(entry.profile)
    return trial_fails(entry.trial, entry.invariant, profile)
