"""Attack-as-a-service: the repro toolkit behind an HTTP job API.

The ROADMAP's service milestone: many clients, one solver farm.  A
:class:`~repro.service.server.ReproService` accepts grid/attack/fuzz
cells as content-hashed :class:`~repro.runner.spec.JobSpec` objects
over a small versioned JSON protocol (:mod:`repro.service.schema`),
deduplicates them against both the in-flight window and the shared
result store (:mod:`repro.service.jobs` -- a million identical
submissions cost one solve), executes through the same
:mod:`repro.api` facade the CLI uses (service results are
byte-identical to in-process results), and exposes job status, span
streams, and Prometheus metrics from one server-lifetime
observability session.

Clients live in :mod:`repro.service.client`: a synchronous
:class:`~repro.service.client.ServiceClient` (retry with jittered
backoff, compressed bodies) and a background-thread
:class:`~repro.service.client.BatchingClient` for high-volume
submitters.  ``dynunlock serve`` / ``dynunlock submit`` are the CLI
front ends; ``docs/service.md`` documents the protocol.
"""

from repro.service.client import BatchingClient, ServiceClient, ServiceError
from repro.service.jobs import JobRecord, JobRegistry
from repro.service.schema import (
    JOB_STATES,
    MAX_BATCH_SPECS,
    WIRE_SCHEMA_VERSION,
    WireError,
    envelope,
)
from repro.service.server import ReproService, ServiceHandler

__all__ = [
    "BatchingClient",
    "JOB_STATES",
    "JobRecord",
    "JobRegistry",
    "MAX_BATCH_SPECS",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "ServiceHandler",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "envelope",
]
