"""The attack-as-a-service HTTP server (stdlib only, no frameworks).

:class:`ReproService` owns everything one long-lived server process
needs: an :class:`~repro.observability.session.ObsSession` spanning
the server's lifetime, a shared result store, the
:class:`~repro.service.jobs.JobRegistry`, and a
:class:`~http.server.ThreadingHTTPServer` speaking the
:mod:`repro.service.schema` wire protocol:

========  ======================  =========================================
method    path                    meaning
========  ======================  =========================================
POST      ``/v1/jobs``            submit a batch of specs (dedupes; 202)
GET       ``/v1/jobs``            list every job record
GET       ``/v1/jobs/<id>``       one job's status view
GET       ``/v1/jobs/<id>/result``  the result payload (409 until done)
GET       ``/v1/spans``           the session's span records as NDJSON
GET       ``/metrics``            Prometheus text exposition
GET       ``/healthz``            liveness + per-status job counts
========  ======================  =========================================

Handler threads only ever touch the registry through its lock and the
session through its thread-safe sinks; all solving happens on the
registry's single worker thread (scheduler processes underneath), so a
slow solve never blocks a status poll.

The session is published process-wide via
:func:`~repro.observability.session.install_session` when the slot is
free, so store hit/miss counters flow into the server's metrics; at
:meth:`ReproService.close` the session is ended with the targeted form
of :func:`~repro.observability.session.end_session`, which can never
clobber a newer session installed after ours.

``inject_failures`` is the chaos hook: it makes the next N requests
answer 503 so client retry paths can be exercised against a real
server instead of a mock transport.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.observability import ObsSession, end_session, install_session
from repro.runner.stores import StoreBackend
from repro.service.jobs import JobRegistry
from repro.service.schema import WireError, envelope, decode_body, parse_submission


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: socketserver's default listen backlog is 5; a submission
    #: stampede (the dedupe acceptance test sends 100 concurrent
    #: POSTs) gets connection resets instead of queueing.
    request_queue_size = 128
    #: Set by :class:`ReproService` right after construction.
    service: "ReproService"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``self.server.service``."""

    server_version = "dynunlock-service"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "ReproService":
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        # Default stderr chatter off; structured access log when the
        # session has a JSON logger.
        self.service.session.log(
            "http_access", client=self.address_string(), line=format % args
        )

    def _respond(
        self, status: int, body: bytes, content_type: str, route: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.service.count_request(self.command, route, status)

    def _send_json(self, status: int, obj: dict, *, route: str) -> None:
        body = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        self._respond(status, body, "application/json", route)

    def _send_error_envelope(
        self, status: int, message: str, *, route: str
    ) -> None:
        self._send_json(
            status, envelope("error", status=status, error=message), route=route
        )

    def _dispatch(self, router) -> None:
        injected = self.service.take_injected_failure()
        if injected is not None:
            self._send_error_envelope(
                injected, "injected failure (chaos hook)", route="injected"
            )
            return
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            router(path)
        except WireError as exc:
            self._send_error_envelope(exc.status, str(exc), route=path)
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:
            self.service.session.log(
                "http_internal_error", level="error", path=path, error=repr(exc)
            )
            self._send_error_envelope(
                500, f"internal error: {type(exc).__name__}", route=path
            )

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch(self._route_post)

    def _route_get(self, path: str) -> None:
        service = self.service
        if path == "/healthz":
            counts = service.registry.counts()
            self._send_json(
                200,
                envelope(
                    "health",
                    status="ok",
                    run_id=service.session.run_id,
                    uptime_s=round(time.time() - service.started_unix, 3),
                    jobs=counts,
                ),
                route="/healthz",
            )
            return
        if path == "/metrics":
            self._respond(
                200,
                service.session.metrics.render_prom().encode("utf-8"),
                "text/plain; version=0.0.4",
                "/metrics",
            )
            return
        if path == "/v1/spans":
            lines = [
                json.dumps(span, sort_keys=True)
                for span in list(service.session.spans)
            ]
            body = ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")
            self._respond(200, body, "application/x-ndjson", "/v1/spans")
            return
        if path == "/v1/jobs":
            records = service.registry.list()
            self._send_json(
                200,
                envelope("jobs", jobs=[r.describe() for r in records]),
                route="/v1/jobs",
            )
            return
        parts = path.split("/")
        if len(parts) in (4, 5) and parts[1] == "v1" and parts[2] == "jobs":
            record = service.registry.get(parts[3])
            if record is None:
                raise WireError(f"unknown job {parts[3]!r}", status=404)
            if len(parts) == 4:
                self._send_json(
                    200,
                    envelope("job", job=record.describe()),
                    route="/v1/jobs/{id}",
                )
                return
            if parts[4] == "result":
                if record.status != "done":
                    raise WireError(
                        f"job {record.job_id} is {record.status}, not done",
                        status=409,
                    )
                self._send_json(
                    200,
                    envelope(
                        "result", job=record.describe(), result=record.result
                    ),
                    route="/v1/jobs/{id}/result",
                )
                return
        raise WireError(f"no such endpoint: GET {path}", status=404)

    def _route_post(self, path: str) -> None:
        if path != "/v1/jobs":
            raise WireError(f"no such endpoint: POST {path}", status=404)
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise WireError("bad Content-Length") from None
        data = decode_body(
            self.rfile.read(length), self.headers.get("Content-Encoding")
        )
        specs = parse_submission(data)
        views = self.service.registry.submit(specs)
        self._send_json(
            202,
            envelope(
                "submitted",
                run_id=self.service.session.run_id,
                jobs=[
                    {**record.describe(), "deduped": deduped}
                    for record, deduped in views
                ],
            ),
            route="/v1/jobs",
        )


class ReproService:
    """One server process: session + store + registry + HTTP listener.

    Constructing binds the socket (``port=0`` picks a free one) but
    does not serve; call :meth:`serve_forever` (blocking, the CLI) or
    :meth:`start` (background thread, tests/embedding).  ``close`` is
    idempotent and tears everything down in dependency order.  The
    service takes ownership of ``store`` and closes it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        jobs: int = 1,
        store: StoreBackend | None = None,
        metrics_dir: str | None = None,
        log_json: str | None = None,
        argv: list[str] | None = None,
    ) -> None:
        self.session = ObsSession(
            metrics_dir=metrics_dir,
            log_json=log_json,
            command="serve",
            argv=list(argv) if argv is not None else ["dynunlock", "serve"],
        )
        install_session(self.session)
        self.store = store
        self.registry = JobRegistry(store=store, session=self.session, jobs=jobs)
        self.started_unix = time.time()
        self._httpd = _ServiceHTTPServer((host, port), ServiceHandler)
        self._httpd.service = self
        self._thread: threading.Thread | None = None
        self._serving_evt = threading.Event()
        self._closed = False
        self._fault_lock = threading.Lock()
        self._inject_left = 0
        self._inject_status = 503

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- serving -------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or C-c)."""
        self._serving_evt.set()
        self.session.log("service_started", url=self.url)
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ReproService":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        # Don't return (and especially don't let close() run) before the
        # serve loop exists; shutdown on a never-served socket hangs.
        self._serving_evt.wait(5.0)
        return self

    def close(self) -> None:
        """Stop serving, drain jobs, close the store, end the session."""
        if self._closed:
            return
        self._closed = True
        if self._serving_evt.is_set():
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.registry.close()
        if self.store is not None:
            self.store.close()
        end_session(self.session)

    def __enter__(self) -> "ReproService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request accounting + chaos ------------------------------------------

    def count_request(self, method: str, route: str, status: int) -> None:
        self.session.metrics.counter(
            "repro_service_requests_total",
            "HTTP requests by method, route, and status code",
        ).inc(method=method, route=route, code=status)

    def inject_failures(self, n: int, *, status: int = 503) -> None:
        """Make the next ``n`` requests fail with ``status`` (chaos hook)."""
        with self._fault_lock:
            self._inject_left += n
            self._inject_status = status

    def take_injected_failure(self) -> int | None:
        with self._fault_lock:
            if self._inject_left > 0:
                self._inject_left -= 1
                return self._inject_status
        return None
