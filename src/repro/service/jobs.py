"""The service's job registry: dedupe, queueing, and execution.

The registry is where "a million identical submissions cost one solve"
is enforced.  Every spec is identified by its content hash
(:attr:`~repro.runner.spec.JobSpec.spec_hash`), and submission is a
single locked lookup:

* hash already has a live record (queued/running/done) -- the caller
  coalesces onto it, no new work;
* hash's record failed -- a fresh record replaces it (resubmission is
  the retry surface);
* hash unseen -- a new record enters the queue.

Only the in-flight window needs this map: results that already landed
are also in the shared :class:`~repro.runner.stores.StoreBackend`, so
even a record evicted by a restart re-runs as a store hit.

Execution reuses the scheduler wholesale: batches run through
:func:`repro.api.submit_jobs` on ONE background worker thread, and
parallelism comes from the scheduler's own process pool (``jobs > 1``)
-- not from concurrent in-process cells, which would fight over the
process-global span slot and the SIGALRM timer the workers own.
Per-job wall-clock budgets therefore apply only on the pool path;
profile-level solver budgets hold everywhere.

Observability flows into the service's
:class:`~repro.observability.session.ObsSession`: every batch runs
under a :class:`~repro.observability.session.RunObserver` (so
``repro_jobs_total`` counts exactly the work that actually executed --
the dedupe acceptance check), and the registry adds service-level
series: ``repro_service_jobs_total{disposition=new|deduped|retried}``
and the ``repro_service_queue_depth`` gauge.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import api
from repro.observability import ObsSession, RunObserver
from repro.runner.spec import JobSpec
from repro.runner.stores import StoreBackend


@dataclass
class JobRecord:
    """One deduplicated unit of work and everything clients may poll."""

    job_id: str
    spec: JobSpec
    status: str = "queued"
    result: dict | None = None
    error: str | None = None
    cached: bool = False
    attempts: int = 0
    #: How many times this spec was submitted (1 = never deduplicated).
    n_submissions: int = 1
    created_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    duration_s: float = 0.0

    @property
    def done(self) -> bool:
        """Terminal: the record will never change again."""
        return self.status in ("done", "failed")

    def describe(self) -> dict:
        """The JSON-safe status view (everything except the result)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "experiment": self.spec.experiment,
            "label": self.spec.label,
            "spec_hash": self.spec.spec_hash,
            "cached": self.cached,
            "attempts": self.attempts,
            "n_submissions": self.n_submissions,
            "created_unix": round(self.created_unix, 6),
            "started_unix": (
                round(self.started_unix, 6) if self.started_unix else None
            ),
            "finished_unix": (
                round(self.finished_unix, 6) if self.finished_unix else None
            ),
            "duration_s": round(self.duration_s, 6),
            "error": self.error,
        }


class JobRegistry:
    """Content-addressed job table + the single batch-execution worker."""

    def __init__(
        self,
        *,
        store: StoreBackend | None = None,
        session: ObsSession | None = None,
        jobs: int = 1,
    ) -> None:
        self.store = store
        self.session = session
        self.jobs = max(1, jobs)
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        #: job_id -> record; job ids are spec_hash prefixes, so retries
        #: of a failed spec replace the old record under the same id.
        self._records: dict[str, JobRecord] = {}
        self._by_hash: dict[str, JobRecord] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-jobs"
        )
        self._closed = False

    # -- metrics helpers -----------------------------------------------------

    def _count_submission(self, disposition: str) -> None:
        if self.session is not None:
            self.session.metrics.counter(
                "repro_service_jobs_total",
                "Spec submissions by disposition (deduped = coalesced)",
            ).inc(disposition=disposition)

    def _queue_depth(self, delta: float) -> None:
        if self.session is not None:
            self.session.metrics.gauge(
                "repro_service_queue_depth",
                "Jobs currently queued or running",
            ).inc(delta)

    # -- submission ----------------------------------------------------------

    @staticmethod
    def job_id_for(spec: JobSpec) -> str:
        """Content-addressed job id: a spec-hash prefix, stable forever."""
        return spec.spec_hash[:16]

    def submit(self, specs: list[JobSpec]) -> list[tuple[JobRecord, bool]]:
        """Register a batch; returns ``(record, deduped)`` per spec.

        Specs whose hash is already live coalesce onto the existing
        record (``deduped=True``).  The rest become one scheduler batch
        on the worker thread.  Duplicates *within* the batch coalesce
        too -- the wire protocol makes no uniqueness promise.
        """
        views: list[tuple[JobRecord, bool]] = []
        batch: list[JobRecord] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("registry is closed")
            for spec in specs:
                existing = self._by_hash.get(spec.spec_hash)
                if existing is not None and existing.status != "failed":
                    existing.n_submissions += 1
                    self._count_submission("deduped")
                    views.append((existing, True))
                    continue
                record = JobRecord(job_id=self.job_id_for(spec), spec=spec)
                self._records[record.job_id] = record
                self._by_hash[spec.spec_hash] = record
                self._count_submission("retried" if existing else "new")
                self._queue_depth(1)
                batch.append(record)
                views.append((record, False))
            if batch:
                self._executor.submit(self._run_batch, batch)
        return views

    # -- execution -----------------------------------------------------------

    def _run_batch(self, batch: list[JobRecord]) -> None:
        now = time.time()
        with self._lock:
            for record in batch:
                record.status = "running"
                record.started_unix = now
            self._changed.notify_all()
        observer = (
            RunObserver(self.session) if self.session is not None else None
        )
        try:
            report = api.submit_jobs(
                [record.spec for record in batch],
                jobs=self.jobs,
                store=self.store,
                observer=observer,
            )
            outcomes = report.outcomes
        except Exception as exc:
            # Scheduler-level failure (not a cell error): fail the whole
            # batch but keep the worker thread alive for later batches.
            message = f"{type(exc).__name__}: {exc}"
            with self._lock:
                for record in batch:
                    record.status = "failed"
                    record.error = message
                    record.finished_unix = time.time()
                    self._queue_depth(-1)
                self._changed.notify_all()
            return
        finished = time.time()
        with self._lock:
            for record, outcome in zip(batch, outcomes):
                record.finished_unix = finished
                record.duration_s = outcome.duration_s
                record.cached = outcome.cached
                record.attempts = outcome.attempts
                if outcome.ok:
                    record.status = "done"
                    record.result = outcome.result
                else:
                    record.status = "failed"
                    record.error = outcome.error
                self._queue_depth(-1)
            self._changed.notify_all()
        if self.session is not None:
            # Live snapshot so `dynunlock top` sees server-side counters
            # between requests, not only at shutdown.
            self.session.write_metrics()

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def list(self) -> list[JobRecord]:
        """All records, oldest first (stable for pagination-free v1)."""
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.created_unix)

    def counts(self) -> dict[str, int]:
        """Record count per status (for /healthz)."""
        counts = dict.fromkeys(("queued", "running", "done", "failed"), 0)
        with self._lock:
            for record in self._records.values():
                counts[record.status] += 1
        return counts

    def wait(
        self, job_ids: list[str], timeout_s: float = 60.0
    ) -> dict[str, JobRecord]:
        """Block until every id is terminal (or raise ``TimeoutError``)."""
        deadline = time.monotonic() + timeout_s
        with self._lock:
            while True:
                records = {
                    job_id: self._records[job_id]
                    for job_id in job_ids
                    if job_id in self._records
                }
                missing = [j for j in job_ids if j not in records]
                if not missing and all(r.done for r in records.values()):
                    return records
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    pending = missing + [
                        j for j, r in records.items() if not r.done
                    ]
                    raise TimeoutError(
                        f"jobs not finished after {timeout_s}s: "
                        f"{', '.join(pending[:5])}"
                    )
                self._changed.wait(remaining)

    def close(self) -> None:
        """Drain the worker thread; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=True)
