"""Clients for the job service: a sync client and a batching client.

:class:`ServiceClient` is the synchronous surface: one urllib-based
request method with bounded retry (jittered exponential backoff on
connection errors and 5xx answers -- the transient class; 4xx answers
are the caller's bug and raise immediately), zlib-compressed request
bodies, and typed helpers for every endpoint.

:class:`BatchingClient` is the high-volume surface, shaped like the
background-batching trace-upload clients of hosted observability SDKs:
``submit`` enqueues a spec onto a bounded queue and returns
immediately; one daemon thread drains the queue, packing specs into
batches that flush when full (``batch_size``) or when the queue stays
quiet for ``linger_s``; ``flush``/``close`` force the buffer out and
surface any transport error that happened in the background.  The
bounded queue is deliberate backpressure: a producer that outruns the
server blocks in ``submit`` rather than growing memory without limit.

Neither client retries *job failures* -- a failed job is a result, not
a transport error; resubmitting the spec is the retry surface.
"""

from __future__ import annotations

import json
import queue
import random
import threading
import time
import urllib.error
import urllib.request
import zlib

from repro.runner.spec import JobSpec
from repro.service.schema import (
    WIRE_SCHEMA_VERSION,
    check_envelope,
    envelope,
    spec_to_wire,
)


class ServiceError(RuntimeError):
    """A request that definitively failed (after retries, if eligible)."""

    def __init__(
        self, message: str, *, status: int | None = None
    ) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Synchronous wire client; see the module docstring for semantics."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        compress: bool = True,
        rng: random.Random | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.compress = compress
        #: Injectable so tests get deterministic jitter.
        self.rng = rng if rng is not None else random.Random()

    # -- transport -----------------------------------------------------------

    def _sleep_before_retry(self, attempt: int) -> None:
        base = min(self.max_backoff_s, self.backoff_s * (2.0**attempt))
        # Full jitter: uniform in (0, base]; avoids synchronized herds
        # of clients hammering a recovering server in lockstep.
        time.sleep(base * (0.5 + 0.5 * self.rng.random()))

    def request_raw(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, bytes, str]:
        """One request with retry; returns (status, body, content type)."""
        url = self.base_url + path
        attempt = 0
        while True:
            headers = {"Accept": "application/json"}
            body = None
            if payload is not None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                headers["Content-Type"] = "application/json"
                if self.compress:
                    body = zlib.compress(body)
                    headers["Content-Encoding"] = "deflate"
            request = urllib.request.Request(
                url, data=body, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    return (
                        response.status,
                        response.read(),
                        response.headers.get("Content-Type", ""),
                    )
            except urllib.error.HTTPError as exc:
                detail = self._error_detail(exc)
                if exc.code >= 500 and attempt < self.retries:
                    attempt += 1
                    self._sleep_before_retry(attempt)
                    continue
                raise ServiceError(
                    f"{method} {path} failed with {exc.code}: {detail}",
                    status=exc.code,
                ) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                if attempt < self.retries:
                    attempt += 1
                    self._sleep_before_retry(attempt)
                    continue
                raise ServiceError(
                    f"{method} {path} unreachable after "
                    f"{attempt + 1} attempt(s): {exc}"
                ) from None

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            data = json.loads(exc.read().decode("utf-8"))
            return str(data.get("error", data))
        except Exception:
            return exc.reason if isinstance(exc.reason, str) else repr(exc.reason)

    def request(
        self, method: str, path: str, payload: dict | None = None, *, kind: str
    ) -> dict:
        """One JSON round-trip, envelope-checked against ``kind``."""
        status, body, _ = self.request_raw(method, path, payload)
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"{method} {path}: server sent invalid JSON: {exc}",
                status=status,
            ) from None
        check_envelope(data, kind=kind)
        return data

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self.request("GET", "/healthz", kind="health")

    def submit(self, specs: list[JobSpec]) -> list[dict]:
        """Submit a batch; returns the per-spec job views (with dedupe)."""
        payload = envelope("submit", jobs=[spec_to_wire(s) for s in specs])
        return self.request("POST", "/v1/jobs", payload, kind="submitted")[
            "jobs"
        ]

    def jobs(self) -> list[dict]:
        return self.request("GET", "/v1/jobs", kind="jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}", kind="job")["job"]

    def result(self, job_id: str) -> dict:
        """The finished job's result payload (raises on not-done: 409)."""
        return self.request(
            "GET", f"/v1/jobs/{job_id}/result", kind="result"
        )["result"]

    def metrics_text(self) -> str:
        status, body, _ = self.request_raw("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"/metrics answered {status}", status=status)
        return body.decode("utf-8")

    def spans(self) -> list[dict]:
        status, body, _ = self.request_raw("GET", "/v1/spans")
        if status != 200:
            raise ServiceError(f"/v1/spans answered {status}", status=status)
        return [
            json.loads(line)
            for line in body.decode("utf-8").splitlines()
            if line.strip()
        ]

    def wait(
        self,
        job_ids: list[str],
        *,
        timeout_s: float = 120.0,
        poll_s: float = 0.05,
    ) -> dict[str, dict]:
        """Poll until every id is terminal; returns id -> job view."""
        deadline = time.monotonic() + timeout_s
        views: dict[str, dict] = {}
        pending = list(dict.fromkeys(job_ids))
        while pending:
            for job_id in list(pending):
                view = self.job(job_id)
                if view["status"] in ("done", "failed"):
                    views[job_id] = view
                    pending.remove(job_id)
            if not pending:
                break
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"jobs not finished after {timeout_s}s: "
                    f"{', '.join(pending[:5])}"
                )
            time.sleep(poll_s)
        return views


#: Queue sentinels for the batching client's worker loop.
_STOP = object()


class _Flush:
    def __init__(self) -> None:
        self.done = threading.Event()


class BatchingClient:
    """Fire-and-forget submission with background batching.

    ``submit`` never talks to the network; the worker thread does, in
    batches.  Job views accumulate under ``job_views`` (keyed by spec
    hash) for later polling with a :class:`ServiceClient`.  Transport
    errors are captured and re-raised by the next ``flush``/``close``.
    """

    def __init__(
        self,
        base_url: str | None = None,
        *,
        client: ServiceClient | None = None,
        batch_size: int = 16,
        linger_s: float = 0.05,
        queue_size: int = 1024,
    ) -> None:
        if client is None:
            if base_url is None:
                raise ValueError("need base_url or a ServiceClient")
            client = ServiceClient(base_url)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.client = client
        self.batch_size = batch_size
        self.linger_s = linger_s
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._views: dict[str, dict] = {}
        self._errors: list[ServiceError] = []
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="repro-batching-client", daemon=True
        )
        self._worker.start()

    # -- producer side -------------------------------------------------------

    def submit(self, spec: JobSpec) -> None:
        """Enqueue one spec (blocks when the bounded queue is full)."""
        if self._closed:
            raise RuntimeError("batching client is closed")
        self._queue.put(spec)

    def flush(self, timeout_s: float = 30.0) -> None:
        """Push everything enqueued so far; re-raise background errors."""
        marker = _Flush()
        self._queue.put(marker)
        if not marker.done.wait(timeout_s):
            raise ServiceError(f"flush did not complete within {timeout_s}s")
        self._raise_pending_error()

    def close(self, timeout_s: float = 30.0) -> None:
        """Flush the tail, stop the worker, surface any background error."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join(timeout_s)
        if self._worker.is_alive():
            raise ServiceError(f"close did not complete within {timeout_s}s")
        self._raise_pending_error()

    def __enter__(self) -> "BatchingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def job_views(self) -> dict[str, dict]:
        """spec_hash -> latest job view returned by the server."""
        with self._lock:
            return dict(self._views)

    def job_ids(self) -> list[str]:
        """Distinct job ids submitted so far (post-dedupe), stable order."""
        with self._lock:
            return list(
                dict.fromkeys(v["job_id"] for v in self._views.values())
            )

    def _raise_pending_error(self) -> None:
        with self._lock:
            if self._errors:
                raise self._errors.pop(0)

    # -- worker side ---------------------------------------------------------

    def _send(self, buffer: list[JobSpec]) -> None:
        if not buffer:
            return
        try:
            views = self.client.submit(buffer)
        except ServiceError as exc:
            with self._lock:
                self._errors.append(exc)
            return
        with self._lock:
            for spec, view in zip(buffer, views):
                self._views[spec.spec_hash] = view

    def _drain(self) -> None:
        buffer: list[JobSpec] = []
        while True:
            try:
                item = self._queue.get(timeout=self.linger_s)
            except queue.Empty:
                # Linger expired: whatever has accumulated goes out now.
                self._send(buffer)
                buffer = []
                continue
            if item is _STOP:
                self._send(buffer)
                return
            if isinstance(item, _Flush):
                self._send(buffer)
                buffer = []
                item.done.set()
                continue
            buffer.append(item)
            if len(buffer) >= self.batch_size:
                self._send(buffer)
                buffer = []
