"""The versioned JSON wire schema shared by the service and its clients.

Every request and response body is one JSON object carrying
``schema_version`` (an integer, like the artifact envelope's) and
``kind`` (a discriminator: ``submit``, ``submitted``, ``job``,
``jobs``, ``result``, ``health``, ``error``).  Versioning the wire
separately from the artifact schema lets either evolve alone; the
server rejects versions it does not speak with a 4xx instead of
guessing.

Request bodies may be raw JSON or zlib-compressed JSON
(``Content-Encoding: deflate``) -- the batching client compresses by
default so high-volume submitters pay bandwidth proportional to the
entropy of their specs, not their count.

Validation errors raise :class:`WireError`, which carries the HTTP
status the server should answer with.  Everything malformed a client
can send -- bad compression, bad JSON, a non-object body, an unknown
``schema_version``, an unknown experiment name -- must land as a 4xx,
never a 500: a million-user service cannot page an operator because
one client shipped garbage.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Mapping

from repro.runner.spec import JobSpec

#: Version of the request/response object layout described above.
WIRE_SCHEMA_VERSION = 1

#: Lifecycle states a job moves through, in order (failed is terminal
#: alongside done).
JOB_STATES = ("queued", "running", "done", "failed")

#: Most specs one POST /v1/jobs may carry; batching clients chunk.
MAX_BATCH_SPECS = 1024


class WireError(ValueError):
    """A protocol violation the server answers with ``status`` (4xx)."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def envelope(kind: str, **fields: Any) -> dict:
    """Build one wire object: version + kind + payload fields."""
    return {"schema_version": WIRE_SCHEMA_VERSION, "kind": kind, **fields}


def decode_body(raw: bytes, content_encoding: str | None = None) -> dict:
    """Decompress + parse one request body into a JSON object.

    Accepts identity and ``deflate`` encodings; anything else is a 415.
    Undecodable bytes and non-object JSON are 400s.
    """
    encoding = (content_encoding or "").strip().lower()
    if encoding in ("", "identity"):
        pass
    elif encoding == "deflate":
        try:
            raw = zlib.decompress(raw)
        except zlib.error as exc:
            raise WireError(f"bad deflate body: {exc}") from None
    else:
        raise WireError(
            f"unsupported Content-Encoding {encoding!r} (use deflate)",
            status=415,
        )
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise WireError(
            f"body must be a JSON object, got {type(data).__name__}"
        )
    return data


def check_envelope(data: Mapping[str, Any], *, kind: str) -> None:
    """Validate version + kind of a parsed wire object (or 4xx)."""
    version = data.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireError("missing or non-integer schema_version")
    if version < 1 or version > WIRE_SCHEMA_VERSION:
        raise WireError(
            f"unsupported schema_version {version} "
            f"(this server speaks <= {WIRE_SCHEMA_VERSION})"
        )
    got = data.get("kind")
    if got != kind:
        raise WireError(f"expected kind {kind!r}, got {got!r}")


def parse_submission(data: Mapping[str, Any]) -> list[JobSpec]:
    """Validate a ``submit`` envelope into job specs (or raise 4xx).

    Checks shape, batch size, and that every experiment name resolves
    in the cell registry -- the same registry the worker uses, so a
    submission that validates here cannot fail on lookup later.
    """
    from repro.reports.cells import CELL_RUNNERS

    check_envelope(data, kind="submit")
    jobs = data.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise WireError("'jobs' must be a non-empty list of spec objects")
    if len(jobs) > MAX_BATCH_SPECS:
        raise WireError(
            f"batch of {len(jobs)} specs exceeds the limit of "
            f"{MAX_BATCH_SPECS}; split the submission"
        )
    specs: list[JobSpec] = []
    for i, entry in enumerate(jobs):
        if not isinstance(entry, dict):
            raise WireError(f"jobs[{i}] must be an object")
        experiment = entry.get("experiment")
        if not isinstance(experiment, str) or not experiment:
            raise WireError(f"jobs[{i}].experiment must be a non-empty string")
        if experiment not in CELL_RUNNERS:
            raise WireError(
                f"jobs[{i}]: unknown experiment {experiment!r}; "
                f"known: {', '.join(sorted(CELL_RUNNERS))}"
            )
        params = entry.get("params", {})
        profile = entry.get("profile", {})
        if not isinstance(params, dict) or not isinstance(profile, dict):
            raise WireError(f"jobs[{i}].params/.profile must be objects")
        specs.append(
            JobSpec(experiment=experiment, params=params, profile=profile)
        )
    return specs


def spec_to_wire(spec: JobSpec) -> dict:
    """Serialise one spec for a ``submit`` envelope (client side)."""
    return spec.to_dict()


def submission(specs: list[JobSpec] | tuple[JobSpec, ...]) -> dict:
    """Build the ``submit`` envelope for a batch of specs (client side)."""
    return envelope("submit", jobs=[spec_to_wire(s) for s in specs])
