"""Solving affine systems over GF(2).

After DynUnlock's SAT loop converges, the surviving seed assignments form
(empirically, and provably when all learned constraints are linear) an
affine subspace; the paper reports candidate counts of 1, 2, 4, 16 and 128
-- all powers of two.  These routines reproduce that analysis: given linear
constraints ``A x = b`` we compute the rank, a particular solution and a
nullspace basis, and enumerate the ``2**(n - rank)`` candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

try:  # optional: gated so the numpy-less scalar paths can import repro
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.gf2.matrix import GF2Matrix


def gaussian_eliminate(
    a: GF2Matrix, b: Sequence[int] | None = None
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Row-reduce ``[A | b]`` to reduced row-echelon form.

    Returns ``(R, rhs, pivot_cols)`` where ``R`` is the reduced matrix,
    ``rhs`` the transformed right-hand side (zeros when ``b`` is None) and
    ``pivot_cols`` the pivot column of each non-zero row.
    """
    mat = a.data.astype(np.uint8).copy()
    n_rows, n_cols = mat.shape
    rhs = np.zeros(n_rows, dtype=np.uint8)
    if b is not None:
        rhs_in = np.asarray(b, dtype=np.uint8)
        if rhs_in.shape != (n_rows,):
            raise ValueError("right-hand side length mismatch")
        rhs = rhs_in.copy()

    pivot_cols: list[int] = []
    pivot_row = 0
    for col in range(n_cols):
        # Find a row at/below pivot_row with a 1 in this column.
        candidates = np.nonzero(mat[pivot_row:, col])[0]
        if candidates.size == 0:
            continue
        src = pivot_row + int(candidates[0])
        if src != pivot_row:
            mat[[pivot_row, src]] = mat[[src, pivot_row]]
            rhs[[pivot_row, src]] = rhs[[src, pivot_row]]
        # Eliminate this column from every other row (reduced form).
        hits = np.nonzero(mat[:, col])[0]
        for r in hits:
            if r != pivot_row:
                mat[r] ^= mat[pivot_row]
                rhs[r] ^= rhs[pivot_row]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == n_rows:
            break
    return mat, rhs, pivot_cols


def rank(a: GF2Matrix) -> int:
    """Rank of a GF(2) matrix."""
    _, _, pivots = gaussian_eliminate(a)
    return len(pivots)


def solve_affine(a: GF2Matrix, b: Sequence[int]) -> list[int] | None:
    """One particular solution of ``A x = b`` or None if inconsistent."""
    mat, rhs, pivots = gaussian_eliminate(a, b)
    # Inconsistency: a zero row with non-zero rhs.
    for r in range(mat.shape[0]):
        if rhs[r] and not mat[r].any():
            return None
    x = [0] * a.n_cols
    for row_idx, col in enumerate(pivots):
        x[col] = int(rhs[row_idx])
    return x


def nullspace_basis(a: GF2Matrix) -> list[list[int]]:
    """Basis of the nullspace of ``A`` (list of bit vectors)."""
    mat, _, pivots = gaussian_eliminate(a)
    n_cols = a.n_cols
    pivot_set = set(pivots)
    free_cols = [c for c in range(n_cols) if c not in pivot_set]
    basis = []
    for free in free_cols:
        vec = [0] * n_cols
        vec[free] = 1
        # Back-substitute: each pivot row reads  x[pivot] = sum(free terms).
        for row_idx, col in enumerate(pivots):
            if mat[row_idx, free]:
                vec[col] = 1
        basis.append(vec)
    return basis


def enumerate_affine_solutions(
    a: GF2Matrix, b: Sequence[int], limit: int = 1 << 20
) -> Iterator[list[int]]:
    """Yield every solution of ``A x = b`` up to ``limit`` many.

    Enumeration walks the affine space ``x0 + span(nullspace)`` in Gray-ish
    order (plain binary counter over the basis coefficients).
    """
    x0 = solve_affine(a, b)
    if x0 is None:
        return
    basis = nullspace_basis(a)
    n_free = len(basis)
    count = min(limit, 1 << n_free) if n_free < 63 else limit
    basis_arr = (
        np.array(basis, dtype=np.uint8)
        if basis
        else np.zeros((0, a.n_cols), dtype=np.uint8)
    )
    x0_arr = np.array(x0, dtype=np.uint8)
    for idx in range(count):
        combo = x0_arr.copy()
        rem = idx
        j = 0
        while rem:
            if rem & 1:
                combo ^= basis_arr[j]
            rem >>= 1
            j += 1
        yield list(combo.astype(int))


@dataclass
class AffineSystem:
    """An incrementally grown affine constraint system ``A x = b``.

    DynUnlock's restart loop appends seed equations learned from each
    capture-cycle model; this accumulator answers "how many candidates
    remain" (``2 ** dof``) and enumerates them for brute-force refinement.
    """

    n_vars: int
    rows: list[list[int]] = field(default_factory=list)
    rhs: list[int] = field(default_factory=list)

    def add_equation(self, coeffs: Sequence[int], value: int) -> None:
        if len(coeffs) != self.n_vars:
            raise ValueError("coefficient vector length mismatch")
        if value not in (0, 1):
            raise ValueError("rhs must be a bit")
        self.rows.append([int(c) & 1 for c in coeffs])
        self.rhs.append(value)

    def add_assignment(self, var: int, value: int) -> None:
        """Constrain a single variable (``x[var] = value``)."""
        coeffs = [0] * self.n_vars
        coeffs[var] = 1
        self.add_equation(coeffs, value)

    def _matrix(self) -> tuple[GF2Matrix, list[int]]:
        if not self.rows:
            return GF2Matrix(np.zeros((0, self.n_vars), dtype=np.uint8)), []
        return GF2Matrix.from_rows(self.rows), list(self.rhs)

    def is_consistent(self) -> bool:
        a, b = self._matrix()
        if not self.rows:
            return True
        return solve_affine(a, b) is not None

    def degrees_of_freedom(self) -> int:
        a, _ = self._matrix()
        if not self.rows:
            return self.n_vars
        return self.n_vars - rank(a)

    def candidate_count(self) -> int:
        """Number of satisfying assignments (0 when inconsistent)."""
        if not self.is_consistent():
            return 0
        return 1 << self.degrees_of_freedom()

    def solutions(self, limit: int = 1 << 20) -> Iterator[list[int]]:
        a, b = self._matrix()
        if not self.rows:
            # Unconstrained: enumerate the full space (only sane for tiny n).
            zero = GF2Matrix(np.zeros((0, self.n_vars), dtype=np.uint8))
            yield from enumerate_affine_solutions(zero, [], limit=limit)
            return
        yield from enumerate_affine_solutions(a, b, limit=limit)
