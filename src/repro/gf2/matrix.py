"""Dense GF(2) matrices backed by numpy uint8 arrays.

Only the operations needed by the LFSR unrolling and overlay derivation are
implemented; everything reduces mod 2 eagerly so values stay in {0, 1}.
"""

from __future__ import annotations

from typing import Iterable, Sequence

try:  # optional: gated so the numpy-less scalar paths can import repro
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]


class GF2Matrix:
    """A dense matrix over GF(2).

    The underlying storage is ``numpy.uint8`` with entries restricted to
    {0, 1}.  Multiplication uses integer matmul followed by ``& 1``, which
    is both exact and fast for the matrix sizes this project needs
    (LFSR widths up to a few hundred, scan chains up to a few thousand).
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray | Sequence[Sequence[int]]):
        if np is None:
            raise ModuleNotFoundError("numpy is required for repro.gf2")
        arr = np.asarray(data, dtype=np.uint8)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D array, got shape {arr.shape}")
        if not np.all((arr == 0) | (arr == 1)):
            raise ValueError("GF(2) matrix entries must be 0 or 1")
        self.data = arr

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]]) -> "GF2Matrix":
        return cls(np.array(list(rows), dtype=np.uint8))

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def n_rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_cols(self) -> int:
        return int(self.data.shape[1])

    # -- algebra ---------------------------------------------------------------
    def __matmul__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self.n_cols != other.n_rows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        product = (self.data.astype(np.uint32) @ other.data.astype(np.uint32)) & 1
        return GF2Matrix(product.astype(np.uint8))

    def __add__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} + {other.shape}")
        return GF2Matrix(self.data ^ other.data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.all(self.data == other.data))

    def __hash__(self) -> int:  # pragma: no cover - matrices are not dict keys
        return hash(self.data.tobytes())

    def mul_vec(self, vec: Sequence[int]) -> list[int]:
        """Matrix-vector product over GF(2); ``vec`` is a plain bit list."""
        v = np.asarray(vec, dtype=np.uint32)
        if v.shape != (self.n_cols,):
            raise ValueError(
                f"vector length {v.shape} incompatible with {self.shape}"
            )
        return list(((self.data.astype(np.uint32) @ v) & 1).astype(int))

    def pow(self, exponent: int) -> "GF2Matrix":
        """Matrix power by square-and-multiply (exponent >= 0)."""
        if exponent < 0:
            raise ValueError("negative exponents are not supported")
        if self.n_rows != self.n_cols:
            raise ValueError("matrix power requires a square matrix")
        result = identity(self.n_rows)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result @ base
            base = base @ base
            e >>= 1
        return result

    def row(self, index: int) -> list[int]:
        return list(self.data[index].astype(int))

    def transpose(self) -> "GF2Matrix":
        return GF2Matrix(self.data.T.copy())

    def copy(self) -> "GF2Matrix":
        return GF2Matrix(self.data.copy())

    def __repr__(self) -> str:
        return f"GF2Matrix(shape={self.shape})"


def identity(n: int) -> GF2Matrix:
    """The n-by-n identity matrix over GF(2)."""
    return GF2Matrix(np.eye(n, dtype=np.uint8))


def zeros(n_rows: int, n_cols: int) -> GF2Matrix:
    """An all-zero GF(2) matrix of the given shape."""
    return GF2Matrix(np.zeros((n_rows, n_cols), dtype=np.uint8))
