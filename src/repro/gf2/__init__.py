"""GF(2) linear algebra substrate.

The dynamic scan obfuscation overlay is *affine over GF(2)* in the LFSR
seed: every scrambled bit equals the original bit XOR a fixed linear
combination of seed bits.  This package supplies the matrix machinery used
to (a) unroll LFSR state symbolically, (b) derive the scan overlay
matrices, and (c) count/enumerate the affine space of surviving seed
candidates after the SAT attack converges.
"""

from repro.gf2.matrix import GF2Matrix, identity, zeros
from repro.gf2.solve import (
    gaussian_eliminate,
    rank,
    solve_affine,
    nullspace_basis,
    enumerate_affine_solutions,
    AffineSystem,
)

__all__ = [
    "GF2Matrix",
    "identity",
    "zeros",
    "gaussian_eliminate",
    "rank",
    "solve_affine",
    "nullspace_basis",
    "enumerate_affine_solutions",
    "AffineSystem",
]
