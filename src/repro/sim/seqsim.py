"""Cycle-accurate sequential simulation.

The sequential simulator owns the flip-flop state of a netlist and applies
one clock edge at a time.  The scan package builds the shift/capture
protocol on top of it; keeping the clocking primitive here means the scan
oracle and the functional-mode simulation cannot diverge.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.netlist.netlist import Netlist, NetlistError
from repro.sim.logicsim import CombinationalSimulator


class SequentialSimulator:
    """Simulates a netlist with explicit flip-flop state.

    State is a dict ``q_net -> bit``.  ``step`` evaluates the combinational
    logic under the current state and primary inputs, then clocks every DFF
    (Q <= D simultaneously).  ``set_state``/``get_state`` give the scan
    machinery direct access, mimicking physical scan chain load/unload.
    """

    def __init__(self, netlist: Netlist, initial_state: int = 0):
        self.netlist = netlist
        self._comb = CombinationalSimulator(netlist)
        if initial_state not in (0, 1):
            raise NetlistError("initial_state must be the bit 0 or 1")
        self.state: dict[str, int] = {q: initial_state for q in netlist.dffs}

    # -- state access ---------------------------------------------------
    def get_state(self) -> dict[str, int]:
        return dict(self.state)

    def get_state_vector(self) -> list[int]:
        """State bits in canonical flop order."""
        return [self.state[q] for q in self.netlist.dff_q_nets()]

    def set_state(self, state: Mapping[str, int]) -> None:
        for q_net in self.netlist.dffs:
            if q_net not in state:
                raise NetlistError(f"missing state bit for {q_net!r}")
            value = state[q_net]
            if value not in (0, 1):
                raise NetlistError(f"state bit for {q_net!r} must be 0/1")
            self.state[q_net] = int(value)

    def set_state_vector(self, bits: Sequence[int]) -> None:
        q_nets = self.netlist.dff_q_nets()
        if len(bits) != len(q_nets):
            raise NetlistError(
                f"state vector length {len(bits)} != flop count {len(q_nets)}"
            )
        for q_net, bit in zip(q_nets, bits):
            if bit not in (0, 1):
                raise NetlistError("state bits must be 0/1")
            self.state[q_net] = int(bit)

    def reset(self, value: int = 0) -> None:
        for q_net in self.state:
            self.state[q_net] = value

    # -- evaluation -----------------------------------------------------
    def evaluate_combinational(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Settle the combinational logic without clocking."""
        return self._comb.run(inputs, self.state)

    def outputs(self, inputs: Mapping[str, int]) -> list[int]:
        values = self.evaluate_combinational(inputs)
        return [values[net] for net in self.netlist.outputs]

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Apply one clock edge; returns the pre-edge net valuation."""
        values = self.evaluate_combinational(inputs)
        next_state = {q: values[dff.d] for q, dff in self.netlist.dffs.items()}
        self.state = next_state
        return values

    def run(
        self, input_sequence: Sequence[Mapping[str, int]]
    ) -> list[list[int]]:
        """Clock through an input sequence, returning outputs per cycle."""
        trace: list[list[int]] = []
        for inputs in input_sequence:
            values = self.step(inputs)
            trace.append([values[net] for net in self.netlist.outputs])
        return trace
