"""Combinational logic evaluation.

Three paths share one gate semantics:

* the scalar path (:func:`evaluate`) is the reference;
* the numpy path (:meth:`CombinationalSimulator.run_many`) evaluates a
  uint8 pattern matrix, one byte per pattern-bit;
* the packed path (:class:`BitParallelSimulator`) pre-compiles the
  netlist to a flat instruction list over dense net indices and
  evaluates up to 64 patterns (lanes) per Python bitwise operation —
  the fast substrate under brute-force candidate refinement and fault
  simulation, where thousands of patterns are replayed per circuit.
"""

from __future__ import annotations

from typing import Mapping, Sequence

try:  # the scalar and packed paths are stdlib-only; numpy is optional
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.ir import enabled as _ir_enabled
from repro.ir.lanes import MIN_ENGINE_PATTERNS, word_engine_for
from repro.netlist.gates import GateType, evaluate_gate, evaluate_gate_vec
from repro.netlist.netlist import Netlist, NetlistError
from repro.util.bitvec import (
    PACK_WORD_BITS,
    broadcast_bit,
    lane_mask,
    pack_lanes,
)


def evaluate(
    netlist: Netlist,
    input_values: Mapping[str, int],
    state_values: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Evaluate every net of the combinational part once.

    ``input_values`` maps primary-input nets to bits; ``state_values`` maps
    DFF Q nets to bits (required when the netlist has flip-flops).  Returns
    the full net -> bit valuation, from which callers read outputs or DFF D
    pins.
    """
    values: dict[str, int] = {}
    for net in netlist.inputs:
        if net not in input_values:
            raise NetlistError(f"missing value for primary input {net!r}")
        values[net] = _as_bit(input_values[net], net)
    for q_net in netlist.dffs:
        if state_values is None or q_net not in state_values:
            raise NetlistError(f"missing state value for flip-flop {q_net!r}")
        values[q_net] = _as_bit(state_values[q_net], q_net)

    for gate in netlist.topological_gates():
        operands = [values[n] for n in gate.inputs]
        values[gate.output] = evaluate_gate(gate.gtype, operands)
    return values


def _as_bit(value: int, net: str) -> int:
    if value not in (0, 1):
        raise NetlistError(f"net {net!r}: bit value must be 0/1, got {value!r}")
    return int(value)


class CombinationalSimulator:
    """Reusable evaluator for a fixed netlist.

    Precomputes the topological order once; ``run`` then evaluates a single
    pattern, and ``run_many`` evaluates a whole pattern matrix vectorised.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = netlist.topological_gates()

    def run(
        self,
        input_values: Mapping[str, int],
        state_values: Mapping[str, int] | None = None,
    ) -> dict[str, int]:
        return evaluate(self.netlist, input_values, state_values)

    def run_outputs(
        self,
        input_values: Mapping[str, int],
        state_values: Mapping[str, int] | None = None,
    ) -> list[int]:
        values = self.run(input_values, state_values)
        return [values[net] for net in self.netlist.outputs]

    def run_many(self, input_matrix: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Vectorised evaluation.

        ``input_matrix`` must provide a uint8 array of identical length for
        every primary input *and* every DFF Q net.  Returns arrays for all
        nets.
        """
        if np is None:  # pragma: no cover - numpy-less CI leg
            raise NetlistError("CombinationalSimulator.run_many requires numpy")
        values: dict[str, np.ndarray] = {}
        n_patterns: int | None = None
        for net in list(self.netlist.inputs) + list(self.netlist.dffs):
            if net not in input_matrix:
                raise NetlistError(f"missing pattern column for net {net!r}")
            arr = np.asarray(input_matrix[net], dtype=np.uint8)
            if n_patterns is None:
                n_patterns = arr.shape[0]
            elif arr.shape[0] != n_patterns:
                raise NetlistError("pattern columns have inconsistent lengths")
            values[net] = arr

        const_shape = n_patterns if n_patterns is not None else 1
        for gate in self._order:
            if gate.gtype is GateType.CONST0:
                values[gate.output] = np.zeros(const_shape, dtype=np.uint8)
            elif gate.gtype is GateType.CONST1:
                values[gate.output] = np.ones(const_shape, dtype=np.uint8)
            else:
                operands = [values[n] for n in gate.inputs]
                values[gate.output] = evaluate_gate_vec(gate.gtype, operands)
        return values


def evaluate_many(
    netlist: Netlist, input_matrix: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """One-shot vectorised evaluation (see CombinationalSimulator.run_many)."""
    return CombinationalSimulator(netlist).run_many(input_matrix)


class BitParallelSimulator:
    """Packed-integer bit-parallel evaluator for a fixed netlist.

    Construction compiles the netlist once: every net gets a dense index
    and the topological gate order becomes a flat instruction list, so
    each evaluation is a straight-line pass of Python bitwise operations
    with no dict lookups.  A *lane* is one pattern; all lanes of a net
    live in one ``int`` (bit ``j`` = lane ``j``), so a 64-lane run
    evaluates 64 patterns for the cost of one.

    Flip-flop Q nets are treated as extra inputs, mirroring
    :meth:`CombinationalSimulator.run_many`.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._free_nets = list(netlist.inputs) + list(netlist.dffs)
        index: dict[str, int] = {}
        for net in self._free_nets:
            index[net] = len(index)
        order = netlist.topological_gates()
        for gate in order:
            if gate.output not in index:
                index[gate.output] = len(index)
        self._net_index = index
        self._n_nets = len(index)
        self._program: list[tuple[GateType, int, tuple[int, ...]]] = [
            (gate.gtype, index[gate.output], tuple(index[n] for n in gate.inputs))
            for gate in order
        ]
        self._output_index = [index[net] for net in netlist.outputs]
        self._engine = None  # lazily-compiled repro.ir word engine
        self._engine_tried = False

    def _word_engine(self):
        """The numpy leveled word engine, or None (scalar-only).

        Compiled on first demand so that constructions that only ever run
        a couple of scalar words (fault simulation with forces, tiny
        replays) never pay for it.  ``None`` whenever numpy is absent or
        the array IR is disabled (``REPRO_IR=0``) -- the scalar engine is
        always available and bit-identical.
        """
        if not self._engine_tried:
            self._engine_tried = True
            if np is not None and _ir_enabled():
                self._engine = word_engine_for(
                    self._program, len(self._free_nets), self._n_nets
                )
        return self._engine

    @property
    def net_index(self) -> Mapping[str, int]:
        """Net name -> dense slot index (stable for this simulator)."""
        return self._net_index

    def run_packed(
        self,
        packed_inputs: Mapping[str, int],
        n_lanes: int,
        force: Mapping[str, int] | None = None,
    ) -> dict[str, int]:
        """Evaluate ``n_lanes`` patterns in one pass.

        ``packed_inputs`` maps every primary input and DFF Q net to a
        packed word (lane ``j`` in bit ``j``).  ``force`` overrides nets
        with fixed packed words *after* their driver is evaluated — the
        stuck-at injection hook used by fault simulation.  Returns the
        packed word of every net.
        """
        slots = self._run_slots(packed_inputs, n_lanes, force)
        return {net: slots[slot] for net, slot in self._net_index.items()}

    def _run_slots(
        self,
        packed_inputs: Mapping[str, int],
        n_lanes: int,
        force: Mapping[str, int] | None = None,
    ) -> list[int]:
        """Straight-line packed evaluation; returns the raw slot array."""
        mask = lane_mask(n_lanes)
        slots = [0] * self._n_nets
        index = self._net_index
        for net in self._free_nets:
            word = packed_inputs.get(net)
            if word is None:
                raise NetlistError(f"missing packed value for net {net!r}")
            slots[index[net]] = word & mask

        force_slots: dict[int, int] | None = None
        if force:
            force_slots = {index[net]: word & mask for net, word in force.items()}
            for slot, word in force_slots.items():
                slots[slot] = word

        for gtype, out, ins in self._program:
            if gtype is GateType.AND or gtype is GateType.NAND:
                acc = slots[ins[0]]
                for i in ins[1:]:
                    acc &= slots[i]
                if gtype is GateType.NAND:
                    acc ^= mask
            elif gtype is GateType.OR or gtype is GateType.NOR:
                acc = slots[ins[0]]
                for i in ins[1:]:
                    acc |= slots[i]
                if gtype is GateType.NOR:
                    acc ^= mask
            elif gtype is GateType.XOR or gtype is GateType.XNOR:
                acc = slots[ins[0]]
                for i in ins[1:]:
                    acc ^= slots[i]
                if gtype is GateType.XNOR:
                    acc ^= mask
            elif gtype is GateType.NOT:
                acc = slots[ins[0]] ^ mask
            elif gtype is GateType.BUF:
                acc = slots[ins[0]]
            elif gtype is GateType.MUX:
                sel = slots[ins[0]]
                acc = (slots[ins[1]] & ~sel) | (slots[ins[2]] & sel)
                acc &= mask
            elif gtype is GateType.CONST0:
                acc = 0
            else:  # CONST1
                acc = mask
            if force_slots is not None:
                forced = force_slots.get(out)
                if forced is not None:
                    acc = forced
            slots[out] = acc

        return slots

    def run_packed_outputs(
        self,
        packed_inputs: Mapping[str, int],
        n_lanes: int,
        force: Mapping[str, int] | None = None,
    ) -> list[int]:
        """Packed words of the primary outputs only (see :meth:`run_packed`).

        Skips the name -> word dict entirely — this is the per-fault hot
        path of fault simulation.
        """
        slots = self._run_slots(packed_inputs, n_lanes, force)
        return [slots[slot] for slot in self._output_index]

    def run_patterns(
        self, patterns: Sequence[Mapping[str, int]]
    ) -> list[list[int]]:
        """Evaluate scalar pattern dicts in 64-lane chunks.

        Returns one output-bit row per pattern, in the netlist's output
        order — the bit-parallel equivalent of calling
        :meth:`CombinationalSimulator.run_outputs` per pattern.

        When the array-IR word engine is available the whole pattern
        matrix is evaluated in one leveled numpy pass (every 64-lane
        word of every net at once); otherwise (or for small batches on
        narrow circuits, where straight-line Python wins) the original
        chunked scalar loop runs.  Both produce identical bits.
        """
        n_patterns = len(patterns)
        if n_patterns >= MIN_ENGINE_PATTERNS:
            engine = self._word_engine()
            if engine is not None:
                return self._run_patterns_words(engine, patterns)
        results: list[list[int]] = []
        nets = self._free_nets
        for start in range(0, len(patterns), PACK_WORD_BITS):
            chunk = patterns[start : start + PACK_WORD_BITS]
            n_lanes = len(chunk)
            rows = [[pattern[net] for net in nets] for pattern in chunk]
            packed = dict(zip(nets, pack_lanes(rows)))
            out_words = self.run_packed_outputs(packed, n_lanes)
            for lane in range(n_lanes):
                results.append([(word >> lane) & 1 for word in out_words])
        return results

    def _run_patterns_words(
        self, engine, patterns: Sequence[Mapping[str, int]]
    ) -> list[list[int]]:
        """Whole-matrix evaluation behind :meth:`run_patterns`.

        Lane packing and output unpacking are vectorised too: the only
        per-pattern Python work left is reading the input mapping.  The
        returned rows are plain 0/1 ints, identical to the scalar path.
        """
        nets = self._free_nets
        n_free = len(nets)
        n_patterns = len(patterns)
        n_words = (n_patterns + PACK_WORD_BITS - 1) // PACK_WORD_BITS
        shifts = np.arange(PACK_WORD_BITS, dtype=np.uint64)
        # (padded patterns, free nets) 0/1 matrix -> packed uint64 words.
        bits = np.zeros((n_words * PACK_WORD_BITS, n_free), dtype=np.uint64)
        flat = bits.reshape(-1)
        flat[: n_patterns * n_free] = np.fromiter(
            (pattern[net] for pattern in patterns for net in nets),
            dtype=np.uint64,
            count=n_patterns * n_free,
        )
        input_rows = (
            bits.reshape(n_words, PACK_WORD_BITS, n_free)
            << shifts[None, :, None]
        ).sum(axis=1, dtype=np.uint64).T
        masks = np.full(n_words, lane_mask(PACK_WORD_BITS), dtype=np.uint64)
        masks[-1] = lane_mask(
            n_patterns - (n_words - 1) * PACK_WORD_BITS
        )
        state = engine.eval_words(input_rows, masks)
        out_state = state[np.array(self._output_index, dtype=np.intp)]
        out_bits = (
            (out_state[:, :, None] >> shifts[None, None, :])
            & np.uint64(1)
        ).reshape(
            len(self._output_index), n_words * PACK_WORD_BITS
        )[:, :n_patterns]
        return out_bits.T.tolist()


def broadcast_inputs(
    nets: Sequence[str], bits: Sequence[int], n_lanes: int
) -> dict[str, int]:
    """Packed-input map replicating one scalar pattern across all lanes."""
    return {
        net: broadcast_bit(bit, n_lanes) for net, bit in zip(nets, bits)
    }
