"""Combinational logic evaluation.

The scalar path is the reference semantics; the vectorised path packs many
patterns into numpy uint8 arrays and is used by brute-force refinement and
fault simulation where thousands of patterns are evaluated per circuit.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.netlist.gates import GateType, evaluate_gate, evaluate_gate_vec
from repro.netlist.netlist import Netlist, NetlistError


def evaluate(
    netlist: Netlist,
    input_values: Mapping[str, int],
    state_values: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Evaluate every net of the combinational part once.

    ``input_values`` maps primary-input nets to bits; ``state_values`` maps
    DFF Q nets to bits (required when the netlist has flip-flops).  Returns
    the full net -> bit valuation, from which callers read outputs or DFF D
    pins.
    """
    values: dict[str, int] = {}
    for net in netlist.inputs:
        if net not in input_values:
            raise NetlistError(f"missing value for primary input {net!r}")
        values[net] = _as_bit(input_values[net], net)
    for q_net in netlist.dffs:
        if state_values is None or q_net not in state_values:
            raise NetlistError(f"missing state value for flip-flop {q_net!r}")
        values[q_net] = _as_bit(state_values[q_net], q_net)

    for gate in netlist.topological_gates():
        operands = [values[n] for n in gate.inputs]
        values[gate.output] = evaluate_gate(gate.gtype, operands)
    return values


def _as_bit(value: int, net: str) -> int:
    if value not in (0, 1):
        raise NetlistError(f"net {net!r}: bit value must be 0/1, got {value!r}")
    return int(value)


class CombinationalSimulator:
    """Reusable evaluator for a fixed netlist.

    Precomputes the topological order once; ``run`` then evaluates a single
    pattern, and ``run_many`` evaluates a whole pattern matrix vectorised.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = netlist.topological_gates()

    def run(
        self,
        input_values: Mapping[str, int],
        state_values: Mapping[str, int] | None = None,
    ) -> dict[str, int]:
        return evaluate(self.netlist, input_values, state_values)

    def run_outputs(
        self,
        input_values: Mapping[str, int],
        state_values: Mapping[str, int] | None = None,
    ) -> list[int]:
        values = self.run(input_values, state_values)
        return [values[net] for net in self.netlist.outputs]

    def run_many(self, input_matrix: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Vectorised evaluation.

        ``input_matrix`` must provide a uint8 array of identical length for
        every primary input *and* every DFF Q net.  Returns arrays for all
        nets.
        """
        values: dict[str, np.ndarray] = {}
        n_patterns: int | None = None
        for net in list(self.netlist.inputs) + list(self.netlist.dffs):
            if net not in input_matrix:
                raise NetlistError(f"missing pattern column for net {net!r}")
            arr = np.asarray(input_matrix[net], dtype=np.uint8)
            if n_patterns is None:
                n_patterns = arr.shape[0]
            elif arr.shape[0] != n_patterns:
                raise NetlistError("pattern columns have inconsistent lengths")
            values[net] = arr

        const_shape = n_patterns if n_patterns is not None else 1
        for gate in self._order:
            if gate.gtype is GateType.CONST0:
                values[gate.output] = np.zeros(const_shape, dtype=np.uint8)
            elif gate.gtype is GateType.CONST1:
                values[gate.output] = np.ones(const_shape, dtype=np.uint8)
            else:
                operands = [values[n] for n in gate.inputs]
                values[gate.output] = evaluate_gate_vec(gate.gtype, operands)
        return values


def evaluate_many(
    netlist: Netlist, input_matrix: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """One-shot vectorised evaluation (see CombinationalSimulator.run_many)."""
    return CombinationalSimulator(netlist).run_many(input_matrix)
