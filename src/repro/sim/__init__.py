"""Logic simulation substrate.

Two simulators share the netlist IR:

* :mod:`repro.sim.logicsim` — combinational evaluation, scalar and
  numpy-vectorised (many patterns at once);
* :mod:`repro.sim.seqsim` — cycle-accurate sequential simulation with
  explicit flip-flop state, used as ground truth for the scan oracle.
"""

from repro.sim.logicsim import evaluate, evaluate_many, CombinationalSimulator
from repro.sim.seqsim import SequentialSimulator

__all__ = [
    "evaluate",
    "evaluate_many",
    "CombinationalSimulator",
    "SequentialSimulator",
]
