"""The attack x defense plugin registry.

The paper's central artifact is a *landscape* table (Table I): every
scan-obfuscation defense positioned against the attack that breaks it.
This module makes that landscape executable: defenses and attacks
register themselves with enough metadata that a grid driver
(:mod:`repro.matrix.grid`) can enumerate every applicable (attack,
defense) pairing mechanically, run it through the cached parallel
scheduler, and compare the measured verdicts with the paper's claims.

A **defense** is a lock factory: ``lock_fn(netlist, key_bits, rng,
**params)`` returning a lock object that exposes ``public_view()`` and
``make_oracle()`` (every scheme in :mod:`repro.locking` already follows
this shape).  ``oracle_model`` names the query interface the resulting
oracle speaks -- e.g. ``"comb-io"`` for plain input/output access or
``"scan-static"`` for a statically scrambled scan chain -- so attacks
can declare applicability to whole interface families instead of
hard-coding defense names.

An **attack** is a runner: ``run_fn(lock, profile=..., timeout_s=...)``
returning a normalised :class:`AttackOutcome`.  ``applicable_to`` lists
defense *names* and/or ``oracle_model`` values; a pair outside that set
is an ``n/a`` cell of the matrix -- never executed, rendered as such.

Registration order is preserved (it is the row order of the rendered
matrix); duplicate names are rejected loudly.  The built-in schemes
live in :mod:`repro.matrix.plugins` and are loaded lazily by
:func:`ensure_builtins` so that importing the registry costs nothing.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping


class RegistryError(ValueError):
    """Raised on duplicate registrations or malformed plugin specs."""


@dataclass
class AttackOutcome:
    """Normalised result of one attack run -- the matrix cell's payload.

    ``verified`` is the equivalence bit: the recovered key/seed was
    replayed against the live oracle (or checked against ground truth
    where the attack already embeds replay refinement) and reproduced
    its responses.  ``queries`` counts oracle invocations where the
    oracle exposes a counter (0 otherwise).
    """

    success: bool
    recovered_key: list[int] | None
    iterations: int
    queries: int
    runtime_s: float
    verified: bool
    detail: str = ""


LockFactory = Callable[..., Any]
AttackFn = Callable[..., AttackOutcome]


@dataclass(frozen=True)
class DefenseSpec:
    """One registered locking scheme.

    ``params`` are extra keyword arguments passed to every ``lock_fn``
    call (e.g. DOS's update period); ``default_key_bits`` overrides the
    grid's per-cell key width for schemes whose natural key size differs
    from the XOR-overlay defenses (a scramble lock spends one key bit
    per chain swap, a point function wants few bits to stay tractable).
    """

    name: str
    lock_fn: LockFactory
    oracle_model: str
    params: Mapping[str, Any] = field(default_factory=dict)
    display: str = ""
    obfuscation: str = ""
    paper_attack: str | None = None
    default_key_bits: int | None = None

    def build(self, netlist, key_bits: int, rng) -> Any:
        """Instantiate the lock on ``netlist`` with this spec's params."""
        return self.lock_fn(netlist, key_bits=key_bits, rng=rng, **dict(self.params))


@dataclass(frozen=True)
class AttackSpec:
    """One registered attack and the defenses/oracle models it targets."""

    name: str
    run_fn: AttackFn
    applicable_to: tuple[str, ...]
    display: str = ""


_DEFENSES: dict[str, DefenseSpec] = {}
_ATTACKS: dict[str, AttackSpec] = {}


def register_defense(
    name: str,
    lock_fn: LockFactory,
    oracle_model: str,
    params: Mapping[str, Any] | None = None,
    *,
    display: str = "",
    obfuscation: str = "",
    paper_attack: str | None = None,
    default_key_bits: int | None = None,
) -> DefenseSpec:
    """Register a locking scheme; raises :class:`RegistryError` on duplicates."""
    if name in _DEFENSES:
        raise RegistryError(f"defense {name!r} is already registered")
    if not name or not oracle_model:
        raise RegistryError("defense name and oracle_model must be non-empty")
    spec = DefenseSpec(
        name=name,
        lock_fn=lock_fn,
        oracle_model=oracle_model,
        params=dict(params or {}),
        display=display or name,
        obfuscation=obfuscation,
        paper_attack=paper_attack,
        default_key_bits=default_key_bits,
    )
    _DEFENSES[name] = spec
    return spec


def register_attack(
    name: str,
    run_fn: AttackFn,
    applicable_to: tuple[str, ...] | list[str],
    *,
    display: str = "",
) -> AttackSpec:
    """Register an attack; raises :class:`RegistryError` on duplicates."""
    if name in _ATTACKS:
        raise RegistryError(f"attack {name!r} is already registered")
    if not applicable_to:
        raise RegistryError(f"attack {name!r} must target at least one defense")
    spec = AttackSpec(
        name=name,
        run_fn=run_fn,
        applicable_to=tuple(applicable_to),
        display=display or name,
    )
    _ATTACKS[name] = spec
    return spec


def ensure_builtins() -> None:
    """Load the built-in defense/attack plugins (idempotent)."""
    import repro.matrix.plugins  # noqa: F401  (registers on import)


def get_defense(name: str) -> DefenseSpec:
    """Look up a registered defense, raising KeyError with the known names."""
    ensure_builtins()
    try:
        return _DEFENSES[name]
    except KeyError:
        raise KeyError(
            f"unknown defense {name!r}; known: {sorted(_DEFENSES)}"
        ) from None


def get_attack(name: str) -> AttackSpec:
    """Look up a registered attack, raising KeyError with the known names."""
    ensure_builtins()
    try:
        return _ATTACKS[name]
    except KeyError:
        raise KeyError(f"unknown attack {name!r}; known: {sorted(_ATTACKS)}") from None


def defense_names() -> list[str]:
    """Registered defense names in registration (= table row) order."""
    ensure_builtins()
    return list(_DEFENSES)


def attack_names() -> list[str]:
    """Registered attack names in registration order."""
    ensure_builtins()
    return list(_ATTACKS)


def _accepts_kwarg(fn: Callable, name: str) -> bool:
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if name in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def call_attack(
    attack: AttackSpec,
    lock: Any,
    *,
    profile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    """Invoke an attack runner with the registry's calling convention.

    ``opt_level`` (the netlist-optimization preprocessing level, see
    :mod:`repro.opt`) is forwarded only when the runner's signature
    accepts it, so plugins written before the optimizer existed -- and
    test fakes with the minimal ``(lock, *, profile, timeout_s)`` shape
    -- keep working; they simply run at the attack's own default level.
    """
    kwargs: dict[str, Any] = {"profile": profile, "timeout_s": timeout_s}
    if opt_level is not None and _accepts_kwarg(attack.run_fn, "opt_level"):
        kwargs["opt_level"] = opt_level
    return attack.run_fn(lock, **kwargs)


def is_applicable(attack: AttackSpec, defense: DefenseSpec) -> bool:
    """Whether the pair is a real matrix cell (else it is ``n/a``).

    An attack targets a defense when its ``applicable_to`` names either
    the defense itself or the defense's oracle model.
    """
    return (
        defense.name in attack.applicable_to
        or defense.oracle_model in attack.applicable_to
    )


def applicable_pairs(
    attacks: list[str] | None = None, defenses: list[str] | None = None
) -> list[tuple[str, str]]:
    """Every runnable (attack, defense) pair, defense-major order."""
    ensure_builtins()
    attack_list = attacks if attacks is not None else attack_names()
    defense_list = defenses if defenses is not None else defense_names()
    return [
        (a, d)
        for d in defense_list
        for a in attack_list
        if is_applicable(get_attack(a), get_defense(d))
    ]


def sample_applicable_pair(
    rng,
    attacks: list[str] | None = None,
    defenses: list[str] | None = None,
) -> tuple[str, str]:
    """Draw one runnable (attack, defense) pair uniformly from ``rng``.

    Sampling happens over :func:`applicable_pairs`'s deterministic
    defense-major order, so a given rng state always yields the same
    pair -- the property the fuzz campaign's seeded trial stream needs.
    """
    pairs = applicable_pairs(attacks=attacks, defenses=defenses)
    if not pairs:
        raise RegistryError("no applicable (attack, defense) pair to sample")
    return pairs[rng.randrange(len(pairs))]


@contextmanager
def temporary_registrations() -> Iterator[None]:
    """Snapshot the registry and restore it on exit (for tests)."""
    saved_defenses = dict(_DEFENSES)
    saved_attacks = dict(_ATTACKS)
    try:
        yield
    finally:
        _DEFENSES.clear()
        _DEFENSES.update(saved_defenses)
        _ATTACKS.clear()
        _ATTACKS.update(saved_attacks)
