"""Built-in defense and attack plugins for the matrix registry.

Importing this module registers every locking scheme in
:mod:`repro.locking` and every attack in :mod:`repro.attack` (plus
DynUnlock itself) with :mod:`repro.matrix.registry`.  Each attack
adapter normalises its attack's native result type into an
:class:`~repro.matrix.registry.AttackOutcome`, including the
*verified-equivalence bit*: either the attack already embeds oracle
replay refinement (DynUnlock, ScanSAT, ScanSAT-dyn, scramble-SAT and
brute force all accept only candidates that reproduce live responses),
or the adapter replays the recovered key against the oracle itself
(shift-and-leak, plain SAT attack).

Adding a scheme is ~30 lines: write a lock factory following the
``lock_fn(netlist, key_bits, rng)`` shape, pick (or write) an attack
adapter, and register both -- see ``docs/matrix.md`` for a worked
example.
"""

from __future__ import annotations

import random

from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.attack.scansat import scansat_attack
from repro.attack.scansat_dyn import scansat_dyn_attack
from repro.attack.scramble_sat import scramble_sat_attack
from repro.attack.shift_and_leak import shift_and_leak_attack
from repro.core.dynunlock import DynUnlockConfig, dynunlock
from repro.locking.dfs import DfsLock, lock_with_dfs
from repro.locking.dos import lock_with_dos
from repro.locking.eff import lock_with_eff
from repro.locking.effdyn import lock_with_effdyn
from repro.locking.iolock import IoLock, lock_core_with_rll
from repro.locking.sarlock import lock_with_sarlock
from repro.locking.scramble import lock_with_scramble
from repro.matrix.registry import (
    AttackOutcome,
    register_attack,
    register_defense,
)
from repro.reports.profiles import ExperimentProfile
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits

_VERIFY_PATTERNS = 16
_BRUTEFORCE_MAX_KEY_BITS = 14


def _iterations_detail(iterations: int, runtime_s: float) -> str:
    return f"{iterations} iterations, {runtime_s:.1f}s"


# ----------------------------------------------------------------------
# attack adapters (native result -> AttackOutcome)
# ----------------------------------------------------------------------
def _attack_dynunlock(
    lock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    oracle = lock.make_oracle()
    result = dynunlock(
        lock.netlist,
        lock.public_view(),
        oracle,
        DynUnlockConfig(
            timeout_s=timeout_s,
            candidate_limit=profile.candidate_limit,
            opt_level=opt_level,
        ),
    )
    # DynUnlock's success criterion *is* replay verification: the
    # surviving seed reproduced fresh scrambled responses.
    return AttackOutcome(
        success=bool(result.success),
        recovered_key=result.recovered_seed,
        iterations=result.iterations,
        queries=result.oracle_queries,
        runtime_s=result.runtime_s,
        verified=bool(result.success),
        detail=(
            f"{result.iterations} iterations, "
            f"{result.n_seed_candidates} candidates, "
            f"{result.runtime_s:.1f}s"
        ),
    )


def _attack_scansat(
    lock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    oracle = lock.make_oracle()
    result = scansat_attack(
        lock.netlist,
        lock.public_view(),
        oracle,
        candidate_limit=profile.candidate_limit,
        timeout_s=timeout_s,
        opt_level=opt_level,
    )
    return AttackOutcome(
        success=bool(result.success),
        recovered_key=result.recovered_key,
        iterations=result.iterations,
        queries=oracle.query_count,
        runtime_s=result.runtime_s,
        verified=bool(result.success),
        detail=_iterations_detail(result.iterations, result.runtime_s),
    )


def _attack_scansat_dyn(
    lock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    oracle = lock.make_oracle()
    result = scansat_dyn_attack(
        lock.netlist,
        lock.public_view(),
        oracle,
        candidate_limit=profile.candidate_limit,
        timeout_s=timeout_s,
        opt_level=opt_level,
    )
    return AttackOutcome(
        success=bool(result.success),
        recovered_key=result.recovered_seed,
        iterations=result.iterations,
        queries=oracle.query_count,
        runtime_s=result.runtime_s,
        verified=bool(result.success),
        detail=_iterations_detail(result.iterations, result.runtime_s),
    )


def _verify_dfs_key(lock: DfsLock, oracle, key, rng: random.Random) -> bool:
    """Replay: the recovered key predicts PO responses for random states."""
    sim = CombinationalSimulator(lock.netlist)
    functional = oracle.functional_inputs
    for _ in range(_VERIFY_PATTERNS):
        state = random_bits(lock.netlist.n_dffs, rng)
        pi = random_bits(len(functional), rng)
        observed = oracle.load_and_observe(state, pi)
        inputs = dict(zip(functional, pi))
        inputs.update(zip(lock.rll.key_inputs, key))
        state_map = dict(zip(lock.netlist.dff_q_nets(), state))
        values = sim.run(inputs, state_map)
        if [values[net] for net in lock.netlist.outputs] != observed:
            return False
    return True


def _attack_shift_and_leak(
    lock: DfsLock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    oracle = lock.make_oracle()
    result = shift_and_leak_attack(
        lock.netlist,
        lock.public_view(),
        oracle,
        candidate_limit=min(64, profile.candidate_limit),
        timeout_s=timeout_s,
        opt_level=opt_level,
    )
    verified = False
    if result.recovered_key is not None:
        verified = _verify_dfs_key(
            lock, oracle, result.recovered_key, random.Random(0x5A1F)
        )
    return AttackOutcome(
        success=bool(result.success) and verified,
        recovered_key=result.recovered_key,
        iterations=result.iterations,
        queries=oracle.query_count,
        runtime_s=result.runtime_s,
        verified=verified,
        detail=_iterations_detail(result.iterations, result.runtime_s),
    )


def _verify_io_key(lock: IoLock, oracle, key, rng: random.Random) -> bool:
    """Replay: the locked core with the recovered key matches the oracle."""
    sim = CombinationalSimulator(lock.locked)
    x_nets = [net for net in lock.locked.inputs if net not in set(lock.key_inputs)]
    for _ in range(_VERIFY_PATTERNS):
        x = random_bits(len(x_nets), rng)
        inputs = dict(zip(x_nets, x))
        inputs.update(zip(lock.key_inputs, key))
        values = sim.run(inputs)
        if [values[net] for net in lock.locked.outputs] != oracle.query(x):
            return False
    return True


def _attack_sat(
    lock: IoLock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    oracle = lock.make_oracle()
    attack = SatAttack(
        locked=lock.locked,
        key_inputs=lock.key_inputs,
        oracle_fn=oracle.query,
        config=SatAttackConfig(
            candidate_limit=profile.candidate_limit,
            timeout_s=timeout_s,
            opt_level=opt_level,
        ),
    )
    result = attack.run()
    recovered = (
        result.key_candidates[0]
        if result.converged and result.key_candidates
        else None
    )
    verified = recovered is not None and _verify_io_key(
        lock, oracle, recovered, random.Random(0x10CA)
    )
    return AttackOutcome(
        success=verified,
        recovered_key=recovered,
        iterations=result.iterations,
        queries=oracle.query_count,
        runtime_s=result.runtime_s,
        verified=verified,
        detail=_iterations_detail(result.iterations, result.runtime_s),
    )


def _attack_scramble_sat(
    lock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    oracle = lock.make_oracle()
    result = scramble_sat_attack(
        lock.netlist,
        lock.public_view(),
        oracle,
        candidate_limit=profile.candidate_limit,
        timeout_s=timeout_s,
        opt_level=opt_level,
    )
    return AttackOutcome(
        success=bool(result.success),
        recovered_key=result.recovered_key,
        iterations=result.iterations,
        queries=oracle.query_count,
        runtime_s=result.runtime_s,
        verified=bool(result.success),
        detail=_iterations_detail(result.iterations, result.runtime_s),
    )


def _attack_bruteforce(
    lock,
    *,
    profile: ExperimentProfile,
    timeout_s: float | None,
    opt_level: int | None = None,
) -> AttackOutcome:
    """Exhaustive key search by bit-parallel oracle replay.

    Every key occupies one packed simulator lane, so one replayed
    pattern tests the whole key space at once; infeasible widths are
    reported as an (honest) failure, which is exactly the data point
    that makes small-key point functions look weak and large-key ones
    resilient in the matrix.
    """
    from repro.attack.bruteforce import ReplayModel, refine_candidates_by_replay
    from repro.core.modeling import build_combinational_model
    from repro.locking.eff import EffStaticLock
    from repro.util.timing import Stopwatch

    watch = Stopwatch().start()
    k = lock.key_bits
    if k > _BRUTEFORCE_MAX_KEY_BITS:
        watch.stop()
        return AttackOutcome(
            success=False,
            recovered_key=None,
            iterations=0,
            queries=0,
            runtime_s=watch.total,
            verified=False,
            detail=f"2^{k} key space; brute force not attempted",
        )
    candidates = [[(i >> b) & 1 for b in range(k)] for i in range(2**k)]
    oracle = lock.make_oracle()

    if isinstance(lock, EffStaticLock):
        model = build_combinational_model(
            lock.netlist,
            spec=lock.spec,
            taps=None,
            key_bits=lock.spec.n_keygates,
            mode="static",
        )

        def replay(scan_in: list[int], pi: list[int]) -> list[int]:
            response = oracle.query(scan_in, pi)
            observed = list(response.scan_out)
            if model.po_outputs:
                observed += list(response.primary_outputs)
            return observed

    elif isinstance(lock, IoLock):
        x_nets = [
            net for net in lock.locked.inputs if net not in set(lock.key_inputs)
        ]
        model = ReplayModel(
            netlist=lock.locked,
            a_inputs=[],
            pi_inputs=x_nets,
            key_inputs=list(lock.key_inputs),
            b_outputs=[],
            po_outputs=list(lock.locked.outputs),
        )

        def replay(scan_in: list[int], pi: list[int]) -> list[int]:
            return oracle.query(pi)

    else:
        raise TypeError(
            f"brute force has no replay model for {type(lock).__name__}"
        )

    from repro.opt import optimize, resolve_level

    if resolve_level(opt_level) > 0:
        # One packed lane per candidate key: the replay netlist is the
        # whole per-pattern cost, so shrink it before the sweep.
        model.netlist = optimize(model.netlist, level=opt_level).netlist

    refinement = refine_candidates_by_replay(
        model,
        candidates,
        replay,
        random.Random(0xB2F0),
        n_patterns=_VERIFY_PATTERNS,
        stop_at_one=False,
    )
    watch.stop()
    # Success requires a *unique* survivor: random replay patterns
    # cannot tell point-function keys apart (each wrong key errs on a
    # single input), so a surviving crowd means the search failed --
    # declaring survivors[0] broken would publish a wrong key.
    recovered = refinement.survivors[0] if refinement.unique else None
    detail = f"{len(candidates)} keys replayed, {watch.total:.1f}s"
    if len(refinement.survivors) > 1:
        detail = (
            f"{len(refinement.survivors)}/{len(candidates)} keys "
            f"indistinguishable under random replay, {watch.total:.1f}s"
        )
    return AttackOutcome(
        success=recovered is not None,
        recovered_key=recovered,
        iterations=len(candidates),
        queries=oracle.query_count,
        runtime_s=watch.total,
        verified=recovered is not None,
        detail=detail,
    )


# ----------------------------------------------------------------------
# registrations (order = rendered matrix row/column order)
# ----------------------------------------------------------------------
register_defense(
    "eff",
    lock_with_eff,
    oracle_model="scan-static",
    display="EFF (2018)",
    obfuscation="Static",
    paper_attack="scansat",
)
register_defense(
    "dfs",
    lock_with_dfs,
    oracle_model="po-only",
    display="DFS (2018)",
    obfuscation="Static",
    paper_attack="shift-and-leak",
)
register_defense(
    "dos",
    lock_with_dos,
    oracle_model="scan-per-pattern",
    params={"period_p": 1},
    display="DOS (2017)",
    obfuscation="Dynamic (per pattern)",
    paper_attack="scansat-dyn",
)
register_defense(
    "effdyn",
    lock_with_effdyn,
    oracle_model="scan-per-cycle",
    display="EFF-Dyn (2019)",
    obfuscation="Dynamic (per cycle)",
    paper_attack="dynunlock",
)
register_defense(
    "rll",
    lock_core_with_rll,
    oracle_model="comb-io",
    display="RLL (2012)",
    obfuscation="None (logic locking)",
    paper_attack="sat",
)
register_defense(
    "sarlock",
    lock_with_sarlock,
    oracle_model="comb-io",
    display="SARLock-PF (new)",
    obfuscation="None (point function)",
    default_key_bits=6,
)
register_defense(
    "scramble",
    lock_with_scramble,
    oracle_model="scan-permutation",
    display="ScanScramble (new)",
    obfuscation="Static (chain permutation)",
    default_key_bits=4,
)

register_attack(
    "scansat",
    _attack_scansat,
    applicable_to=("eff",),
    display="ScanSAT",
)
register_attack(
    "shift-and-leak",
    _attack_shift_and_leak,
    applicable_to=("dfs",),
    display="Shift-and-leak",
)
register_attack(
    "scansat-dyn",
    _attack_scansat_dyn,
    applicable_to=("dos",),
    display="ScanSAT-dyn",
)
register_attack(
    "dynunlock",
    _attack_dynunlock,
    applicable_to=("effdyn",),
    display="DynUnlock (this work)",
)
# Targets the whole comb-io oracle family: any present or future defense
# registered with oracle_model="comb-io" gets this column automatically.
register_attack(
    "sat",
    _attack_sat,
    applicable_to=("comb-io",),
    display="SAT attack",
)
register_attack(
    "scramble-sat",
    _attack_scramble_sat,
    applicable_to=("scramble",),
    display="Scramble-SAT",
)
register_attack(
    "bruteforce",
    _attack_bruteforce,
    applicable_to=("eff", "comb-io"),
    display="Brute force",
)
