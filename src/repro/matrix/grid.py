"""The attack x defense resilience grid.

Turns the paper's qualitative Table I into an executable artifact: the
full attack x defense x benchmark x seed cross-product is enumerated as
:class:`~repro.runner.spec.JobSpec` cells (experiment name
``"matrix"``), executed through the cached parallel scheduler, and
aggregated into one row per (defense, attack) pair with a measured
verdict:

* ``broken``    -- every cell recovered a key that verified against the
  live oracle;
* ``resilient`` -- no cell succeeded within its budget;
* ``partial``   -- mixed outcomes across benchmarks/seeds;
* ``n/a``       -- the attack does not target the defense's oracle
  model; the cell is *skipped entirely* (never run), and rendered as
  such so the landscape stays visibly complete.

:data:`PAPER_EXPECTATIONS` pins the five pairings the paper (and its
baselines) claim broken; :func:`check_against_paper` diffs measured
verdicts against them, which is what the ``matrix-smoke`` CI job gates
on.  Cells follow the repo-wide determinism contract: all randomness
derives from ``hash_label`` streams keyed by the cell's own parameters,
so parallel and serial grids aggregate identical rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.matrix.registry import (
    attack_names,
    call_attack,
    defense_names,
    get_attack,
    get_defense,
    is_applicable,
)
from repro.runner.spec import JobSpec
from repro.util.rng import hash_label

if TYPE_CHECKING:  # typing only -- a runtime import would be circular:
    # repro.reports.experiments imports this module for its GRID entry.
    from repro.reports.profiles import ExperimentProfile

#: The paper's Table I claims (plus the SAT-attack-on-RLL baseline every
#: row of that table implicitly builds on): these pairs must measure
#: ``broken`` or the reproduction has drifted from the paper.
PAPER_EXPECTATIONS: dict[tuple[str, str], str] = {
    ("scansat", "eff"): "broken",
    ("dynunlock", "effdyn"): "broken",
    ("scansat-dyn", "dos"): "broken",
    ("shift-and-leak", "dfs"): "broken",
    ("sat", "rll"): "broken",
}


def default_matrix_benchmarks(profile: ExperimentProfile) -> list[str]:
    """The two smallest registry benchmarks at the profile's scale.

    The matrix's point is pairing coverage, not circuit scale, so the
    default grid keeps instances small; pass explicit benchmarks for
    larger sweeps.
    """
    from repro.bench_suite.registry import smallest_benchmarks

    return smallest_benchmarks(2, scale=profile.scale)


def matrix_cell(
    profile: ExperimentProfile,
    *,
    attack: str,
    defense: str,
    benchmark: str,
    seed_index: int,
    opt_level: int | None = None,
) -> dict[str, Any]:
    """Run one (attack, defense, benchmark, seed) cell of the grid.

    ``opt_level`` overrides the attack's netlist-optimization
    preprocessing level (:mod:`repro.opt`); None leaves each attack at
    the active default, 0 disables optimization for the cell.
    """
    from repro.bench_suite.registry import build_benchmark_netlist

    attack_spec = get_attack(attack)
    defense_spec = get_defense(defense)
    if not is_applicable(attack_spec, defense_spec):
        raise ValueError(
            f"attack {attack!r} does not target defense {defense!r}; "
            "n/a cells must be skipped, not run"
        )
    netlist = build_benchmark_netlist(benchmark, scale=profile.scale)
    requested = defense_spec.default_key_bits
    if requested is None:
        requested = min(8, profile.key_bits)
    key_bits = profile.effective_key_bits(netlist.n_dffs, requested)
    rng = random.Random(
        hash_label(seed_index, f"matrix/{defense}/{benchmark}")
    )
    lock = defense_spec.build(netlist, key_bits, rng)
    outcome = call_attack(
        attack_spec,
        lock,
        profile=profile,
        timeout_s=profile.timeout_s,
        opt_level=opt_level,
    )
    return {
        "attack": attack,
        "defense": defense,
        "benchmark": benchmark,
        "seed_index": seed_index,
        "key_bits": int(getattr(lock, "key_bits", key_bits)),
        "success": bool(outcome.success),
        "verified": bool(outcome.verified),
        "iterations": int(outcome.iterations),
        "queries": int(outcome.queries),
        "time_s": float(outcome.runtime_s),
        "detail": outcome.detail,
    }


def matrix_specs(
    profile: ExperimentProfile,
    attacks: Sequence[str] | None = None,
    defenses: Sequence[str] | None = None,
    benchmarks: Sequence[str] | None = None,
    opt_level: int | None = None,
) -> list[JobSpec]:
    """Enumerate every *applicable* cell of the grid (n/a pairs skipped).

    The *resolved* optimization level (explicit ``opt_level``, else
    ``REPRO_OPT_LEVEL``, else the default) always joins the cell params
    and hence the cache key, so a level change can never replay stale
    cached results.
    """
    from repro.opt import resolve_level

    attack_list = list(attacks) if attacks is not None else attack_names()
    defense_list = list(defenses) if defenses is not None else defense_names()
    bench_list = (
        list(benchmarks)
        if benchmarks is not None
        else default_matrix_benchmarks(profile)
    )
    extra = {"opt_level": resolve_level(opt_level)}
    specs: list[JobSpec] = []
    for defense in defense_list:
        defense_spec = get_defense(defense)
        for attack in attack_list:
            if not is_applicable(get_attack(attack), defense_spec):
                continue
            for benchmark in bench_list:
                for seed_index in range(profile.n_seeds):
                    specs.append(
                        JobSpec.make(
                            "matrix",
                            profile,
                            attack=attack,
                            defense=defense,
                            benchmark=benchmark,
                            seed_index=seed_index,
                            **extra,
                        )
                    )
    return specs


@dataclass
class MatrixRow:
    """One (defense, attack) pairing of the resilience grid."""

    defense: str
    attack: str
    defense_display: str
    attack_display: str
    verdict: str  # broken | resilient | partial | n/a
    n_cells: int
    n_broken: int
    # One int when every cell ran at the same width; a "lo-hi" range
    # string when benchmarks of different sizes clamp the key unevenly
    # (iterations/queries means then mix widths -- the range flags it).
    key_bits: int | str | None
    iterations: float | None
    queries: float | None
    time_s: float | None
    verified: bool | None

    @property
    def applicable(self) -> bool:
        return self.verdict != "n/a"

    def as_cells(self) -> list[object]:
        def num(value, fmt="{:.1f}"):
            return "-" if value is None else fmt.format(value)

        return [
            self.defense_display,
            self.attack_display,
            self.verdict,
            "-" if not self.applicable else f"{self.n_broken}/{self.n_cells}",
            "-" if self.key_bits is None else self.key_bits,
            num(self.iterations),
            num(self.queries),
            num(self.time_s, "{:.2f}"),
            "-" if self.verified is None else ("yes" if self.verified else "NO"),
        ]


MATRIX_HEADERS = [
    "Defense",
    "Attack",
    "Verdict",
    "Broken",
    "Key bits",
    "Iterations",
    "Queries",
    "Time (s)",
    "Verified",
]


def _verdict(cells: list[dict]) -> str:
    broken = sum(1 for c in cells if c["success"] and c["verified"])
    if broken == len(cells):
        return "broken"
    if broken == 0:
        return "resilient"
    return "partial"


def matrix_rows(
    outcomes: Sequence,
    attacks: Sequence[str] | None = None,
    defenses: Sequence[str] | None = None,
) -> list[MatrixRow]:
    """Aggregate cells into the full grid, reinstating n/a pairs.

    ``attacks``/``defenses`` must match the lists the specs were built
    with (default: every registered plugin) so that pairs *filtered out*
    by the caller are distinguishable from pairs that are structurally
    n/a.
    """
    attack_list = list(attacks) if attacks is not None else attack_names()
    defense_list = list(defenses) if defenses is not None else defense_names()
    grouped: dict[tuple[str, str], list[dict]] = {}
    for outcome in outcomes:
        key = (outcome.spec.params["defense"], outcome.spec.params["attack"])
        grouped.setdefault(key, []).append(outcome.result)

    rows: list[MatrixRow] = []
    for defense in defense_list:
        defense_spec = get_defense(defense)
        for attack in attack_list:
            attack_spec = get_attack(attack)
            if not is_applicable(attack_spec, defense_spec):
                rows.append(
                    MatrixRow(
                        defense=defense,
                        attack=attack,
                        defense_display=defense_spec.display,
                        attack_display=attack_spec.display,
                        verdict="n/a",
                        n_cells=0,
                        n_broken=0,
                        key_bits=None,
                        iterations=None,
                        queries=None,
                        time_s=None,
                        verified=None,
                    )
                )
                continue
            cells = grouped.get((defense, attack))
            if not cells:
                raise ValueError(
                    f"no cells for applicable pair ({attack}, {defense}); "
                    "aggregate with the same attack/defense lists the "
                    "specs were built with"
                )
            widths = sorted({c["key_bits"] for c in cells})
            key_bits = (
                widths[0]
                if len(widths) == 1
                else f"{widths[0]}-{widths[-1]}"
            )
            rows.append(
                MatrixRow(
                    defense=defense,
                    attack=attack,
                    defense_display=defense_spec.display,
                    attack_display=attack_spec.display,
                    verdict=_verdict(cells),
                    n_cells=len(cells),
                    n_broken=sum(
                        1 for c in cells if c["success"] and c["verified"]
                    ),
                    key_bits=key_bits,
                    iterations=mean(c["iterations"] for c in cells),
                    queries=mean(c["queries"] for c in cells),
                    time_s=mean(c["time_s"] for c in cells),
                    verified=all(c["verified"] for c in cells),
                )
            )
    return rows


def check_against_paper(rows: Sequence[MatrixRow]) -> list[str]:
    """Diff measured verdicts against :data:`PAPER_EXPECTATIONS`.

    Only pairs present in ``rows`` are checked, so filtered runs (e.g.
    ``--defenses eff``) are judged on what they actually measured.
    Returns human-readable mismatch descriptions (empty = agreement).
    """
    mismatches: list[str] = []
    for row in rows:
        expected = PAPER_EXPECTATIONS.get((row.attack, row.defense))
        if expected is None:
            continue
        if row.verdict != expected:
            mismatches.append(
                f"{row.attack} vs {row.defense}: paper says {expected}, "
                f"measured {row.verdict} ({row.n_broken}/{row.n_cells} broken)"
            )
    return mismatches


ProgressFn = Callable[[str], None]


def _noop_progress(_: str) -> None:
    return None


def run_matrix(
    profile: ExperimentProfile,
    progress: ProgressFn = _noop_progress,
    *,
    jobs: int = 1,
    store=None,
    attacks: Sequence[str] | None = None,
    defenses: Sequence[str] | None = None,
    benchmarks: Sequence[str] | None = None,
    opt_level: int | None = None,
    observer=None,
):
    """Run the grid end to end: ``(rows, RunReport)``."""
    from repro.reports.experiments import adapt_progress
    from repro.runner.scheduler import run_jobs

    specs = matrix_specs(
        profile,
        attacks=attacks,
        defenses=defenses,
        benchmarks=benchmarks,
        opt_level=opt_level,
    )
    report = run_jobs(
        specs,
        jobs=jobs,
        store=store,
        progress=adapt_progress(progress),
        observer=observer,
    )
    report.raise_on_error()
    rows = matrix_rows(report.outcomes, attacks=attacks, defenses=defenses)
    return rows, report
