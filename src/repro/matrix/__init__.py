"""The attack x defense scenario matrix.

* :mod:`repro.matrix.registry` -- the plugin registry: defenses
  (``register_defense``) and attacks (``register_attack``) self-describe,
  including which oracle models each attack targets.
* :mod:`repro.matrix.plugins` -- the built-in schemes: the paper's four
  defenses and their published attacks, the SAT-attack/RLL baseline, and
  two defenses beyond the paper (SARLock-style point function, keyed
  scan-chain scrambling).
* :mod:`repro.matrix.grid` -- the grid driver: enumerates the applicable
  cross-product as runner ``JobSpec`` cells, aggregates verdicts
  (``broken``/``resilient``/``partial``/``n/a``), and diffs them against
  the paper's Table I expectations.

Entry points: ``dynunlock matrix`` on the command line, or
:func:`repro.matrix.grid.run_matrix` from code.  ``docs/matrix.md``
documents the ~30-line recipe for adding a scheme.
"""

from repro.matrix.grid import (
    MATRIX_HEADERS,
    MatrixRow,
    PAPER_EXPECTATIONS,
    check_against_paper,
    default_matrix_benchmarks,
    matrix_cell,
    matrix_rows,
    matrix_specs,
    run_matrix,
)
from repro.matrix.registry import (
    AttackOutcome,
    AttackSpec,
    DefenseSpec,
    RegistryError,
    applicable_pairs,
    attack_names,
    defense_names,
    ensure_builtins,
    get_attack,
    get_defense,
    is_applicable,
    register_attack,
    register_defense,
)

__all__ = [
    "MATRIX_HEADERS",
    "MatrixRow",
    "PAPER_EXPECTATIONS",
    "check_against_paper",
    "default_matrix_benchmarks",
    "matrix_cell",
    "matrix_rows",
    "matrix_specs",
    "run_matrix",
    "AttackOutcome",
    "AttackSpec",
    "DefenseSpec",
    "RegistryError",
    "applicable_pairs",
    "attack_names",
    "defense_names",
    "ensure_builtins",
    "get_attack",
    "get_defense",
    "is_applicable",
    "register_attack",
    "register_defense",
]
