"""Matrix view of LFSR dynamics over GF(2).

A Fibonacci LFSR update is linear: ``s' = T s`` where ``T`` is the
companion matrix (row 0 = tap indicator, row j picks bit j-1).  The state
after ``t`` updates is ``T^t seed`` -- the algebraic fact DynUnlock's
combinational modeling compiles into XOR networks.
"""

from __future__ import annotations

from typing import Sequence

try:  # optional: gated so the numpy-less scalar paths can import repro
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.gf2.matrix import GF2Matrix


def companion_matrix(width: int, taps: Sequence[int]) -> GF2Matrix:
    """Update matrix of a Fibonacci LFSR (state as column vector)."""
    mat = np.zeros((width, width), dtype=np.uint8)
    for tap in taps:
        if not 0 <= tap < width:
            raise ValueError(f"tap {tap} out of range for width {width}")
        mat[0, tap] = 1
    for row in range(1, width):
        mat[row, row - 1] = 1
    return GF2Matrix(mat)


def lfsr_state_after(
    width: int, taps: Sequence[int], seed: Sequence[int], steps: int
) -> list[int]:
    """State after ``steps`` updates, computed via matrix power.

    Cross-checked in tests against iterating
    :class:`repro.prng.lfsr.FibonacciLfsr` -- the two must agree exactly.
    """
    t_matrix = companion_matrix(width, taps)
    return t_matrix.pow(steps).mul_vec(list(seed))
