"""Linear feedback shift registers.

Conventions (matching the paper's Algorithm 1, where the new bit appears at
index 0 and older bits shift toward higher indices):

* state ``s[0..w-1]``; the *dynamic key* delivered to the key gates is the
  full state vector, key-gate ``i`` consuming state bit ``i``;
* one update computes ``new = XOR(s[t] for t in taps)`` and sets
  ``s = [new] + s[:-1]``;
* at power-on the register holds the seed; the key used during the first
  obfuscated clock cycle is the state *after one update*, i.e. ``T @ seed``
  (``k^1`` in the paper's notation).

The :class:`Keystream` wrapper pins down that off-by-one in exactly one
place so the oracle simulator and the symbolic attack model can never
disagree about it.
"""

from __future__ import annotations

from typing import Sequence

from repro.prng.polynomials import default_taps


class FibonacciLfsr:
    """External-feedback (Fibonacci) LFSR."""

    def __init__(
        self,
        width: int,
        seed_bits: Sequence[int],
        taps: Sequence[int] | None = None,
    ):
        if width < 2:
            raise ValueError("LFSR width must be at least 2")
        if len(seed_bits) != width:
            raise ValueError(f"seed length {len(seed_bits)} != width {width}")
        self.width = width
        self.taps: tuple[int, ...] = tuple(sorted(taps)) if taps else default_taps(width)
        if not self.taps:
            raise ValueError("at least one tap is required")
        for tap in self.taps:
            if not 0 <= tap < width:
                raise ValueError(f"tap {tap} out of range for width {width}")
        if (width - 1) not in self.taps:
            raise ValueError("the final stage (width-1) must be tapped")
        self.seed: list[int] = [_bit(b) for b in seed_bits]
        self.state: list[int] = list(self.seed)

    def advance(self) -> list[int]:
        """Apply one update; returns the new state."""
        new_bit = 0
        for tap in self.taps:
            new_bit ^= self.state[tap]
        self.state = [new_bit] + self.state[:-1]
        return self.state

    def reset(self) -> None:
        """Reload the seed (models power-on reset of the chip)."""
        self.state = list(self.seed)

    def peek(self) -> list[int]:
        return list(self.state)


class GaloisLfsr:
    """Internal-feedback (Galois) LFSR.

    Provided for completeness of the substrate: some DOS-style designs use
    Galois form.  The attack machinery only requires linearity, which both
    forms share; :class:`repro.prng.symbolic.SymbolicLfsr` accepts a
    generic update matrix and therefore covers this variant too.
    """

    def __init__(
        self,
        width: int,
        seed_bits: Sequence[int],
        taps: Sequence[int] | None = None,
    ):
        if width < 2:
            raise ValueError("LFSR width must be at least 2")
        if len(seed_bits) != width:
            raise ValueError(f"seed length {len(seed_bits)} != width {width}")
        self.width = width
        self.taps: tuple[int, ...] = tuple(sorted(taps)) if taps else default_taps(width)
        self.seed: list[int] = [_bit(b) for b in seed_bits]
        self.state: list[int] = list(self.seed)

    def advance(self) -> list[int]:
        # Standard Galois step: shift toward index 0; the bit falling off
        # re-enters through the tap mask.  The final stage is always
        # tapped (table invariant), which makes the update a bijection on
        # the state space.
        out = self.state[0]
        shifted = self.state[1:] + [0]
        if out:
            for tap in self.taps:
                shifted[tap] ^= 1
        self.state = shifted
        return self.state

    def reset(self) -> None:
        self.state = list(self.seed)

    def peek(self) -> list[int]:
        return list(self.state)


class Keystream:
    """The per-cycle dynamic key sequence of a PRNG.

    ``key_for_cycle(t)`` (t >= 0) is the key-gate control vector during
    obfuscated clock cycle ``t``: the LFSR state after ``t + 1`` updates
    from the seed.  Instances are single-use streams; ``restart`` rewinds
    to power-on.
    """

    def __init__(self, lfsr: FibonacciLfsr | GaloisLfsr):
        self._lfsr = lfsr
        self._cycle = -1  # last cycle whose key was produced

    @property
    def width(self) -> int:
        return self._lfsr.width

    def next_key(self) -> list[int]:
        """Advance one clock cycle and return the key for it."""
        self._cycle += 1
        return list(self._lfsr.advance())

    def key_for_cycle(self, t: int) -> list[int]:
        """Random access (recomputes from the seed; for tests/analysis)."""
        if t < 0:
            raise ValueError("cycle index must be >= 0")
        probe = type(self._lfsr)(
            width=self._lfsr.width,
            seed_bits=self._lfsr.seed,
            taps=self._lfsr.taps,
        )
        state = probe.peek()
        for _ in range(t + 1):
            state = probe.advance()
        return list(state)

    def restart(self) -> None:
        self._lfsr.reset()
        self._cycle = -1


def _bit(value: int) -> int:
    if value not in (0, 1):
        raise ValueError(f"seed bits must be 0/1, got {value!r}")
    return int(value)
