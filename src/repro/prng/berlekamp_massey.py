"""Berlekamp-Massey: recover the minimal LFSR generating a bit sequence.

The threat model grants the attacker the LFSR polynomial via reverse
engineering of the netlist.  In practice one can do even better: if any
keystream bits ever leak (probing, side channels, or the first moments of
a scan session before the comparator latches), Berlekamp-Massey recovers
the shortest LFSR -- length *and* feedback polynomial -- from ``2L``
consecutive bits.  This module provides that capability plus a bridge
from the recovered polynomial to this project's tap convention, closing
the loop for attacks on chips whose netlist-level PRNG was obfuscated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LfsrDescription:
    """Minimal LFSR in polynomial form.

    ``connection_poly[j]`` is the coefficient ``c_j`` of the connection
    polynomial ``C(x) = 1 + c_1 x + ... + c_L x^L`` over GF(2): the
    recurrence is ``s[n] = c_1 s[n-1] ^ ... ^ c_L s[n-L]``.
    """

    length: int
    connection_poly: tuple[int, ...]  # index 0 is the constant term 1

    def recurrence_taps(self) -> tuple[int, ...]:
        """Offsets ``d`` with ``s[n] = XOR s[n-d]`` (1-based distances)."""
        return tuple(
            j for j in range(1, self.length + 1) if self.connection_poly[j]
        )

    def predict_next(self, history: Sequence[int]) -> int:
        """Next bit from the last ``length`` bits of history."""
        if len(history) < self.length:
            raise ValueError("history shorter than the register length")
        bit = 0
        for d in self.recurrence_taps():
            bit ^= history[len(history) - d]
        return bit

    def extend(self, seed_bits: Sequence[int], n_bits: int) -> list[int]:
        """Generate ``n_bits`` continuing from ``seed_bits``."""
        stream = list(seed_bits)
        for _ in range(n_bits):
            stream.append(self.predict_next(stream))
        return stream[len(seed_bits):]


def berlekamp_massey(sequence: Sequence[int]) -> LfsrDescription:
    """Minimal LFSR for ``sequence`` (classic O(n^2) BM over GF(2))."""
    bits = [int(b) & 1 for b in sequence]
    n = len(bits)
    c = [0] * (n + 1)
    b = [0] * (n + 1)
    c[0] = b[0] = 1
    length = 0
    m = -1
    for i in range(n):
        # Discrepancy between the predicted and actual bit i.
        delta = bits[i]
        for j in range(1, length + 1):
            delta ^= c[j] & bits[i - j]
        if delta == 0:
            continue
        t = c.copy()
        shift = i - m
        for j in range(0, n + 1 - shift):
            c[j + shift] ^= b[j]
        if 2 * length <= i:
            length = i + 1 - length
            m = i
            b = t
    return LfsrDescription(
        length=length, connection_poly=tuple(c[: length + 1])
    )


def recover_fibonacci_taps(
    description: LfsrDescription, width: int | None = None
) -> tuple[int, ...]:
    """Translate a BM result into this project's Fibonacci tap indices.

    Our convention (:mod:`repro.prng.lfsr`): the new bit enters at state
    index 0 and ``new = XOR state[tap]``; state index ``j`` holds the bit
    produced ``j+1`` updates ago.  A recurrence distance ``d`` therefore
    corresponds to tap index ``d - 1``.
    """
    w = width if width is not None else description.length
    if w < description.length:
        raise ValueError("width smaller than the recovered register length")
    return tuple(sorted(d - 1 for d in description.recurrence_taps()))
