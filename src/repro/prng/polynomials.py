"""Feedback tap tables for LFSRs.

Tap sets are given as 0-indexed state positions feeding the XOR that
produces the new bit; position ``width - 1`` (the last stage) must always
be tapped or the register would not use its full length.

Entries for widths <= 24 are verified maximal-length (primitive
polynomial) by exhaustive period check in the test suite.  Larger entries
follow the standard published tables (Xilinx XAPP052 and the Ward/Molteno
tables); primitivity there is *not* load-bearing for DynUnlock -- the
attack only requires that the attacker knows the feedback structure, which
the threat model grants via reverse engineering.  For widths missing from
the table, :func:`default_taps` falls back to a deterministic 4-tap rule.
"""

from __future__ import annotations


def _stages(*stage_numbers: int) -> tuple[int, ...]:
    """Convert 1-indexed stage numbers (XAPP052 style) to 0-indexed taps."""
    return tuple(sorted(s - 1 for s in stage_numbers))


# width -> taps (0-indexed, always includes width-1).
PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    2: _stages(2, 1),
    3: _stages(3, 2),
    4: _stages(4, 3),
    5: _stages(5, 3),
    6: _stages(6, 5),
    7: _stages(7, 6),
    8: _stages(8, 6, 5, 4),
    9: _stages(9, 5),
    10: _stages(10, 7),
    11: _stages(11, 9),
    12: _stages(12, 6, 4, 1),
    13: _stages(13, 4, 3, 1),
    14: _stages(14, 5, 3, 1),
    15: _stages(15, 14),
    16: _stages(16, 15, 13, 4),
    17: _stages(17, 14),
    18: _stages(18, 11),
    19: _stages(19, 6, 2, 1),
    20: _stages(20, 17),
    21: _stages(21, 19),
    22: _stages(22, 21),
    23: _stages(23, 18),
    24: _stages(24, 23, 22, 17),
    25: _stages(25, 22),
    26: _stages(26, 6, 2, 1),
    27: _stages(27, 5, 2, 1),
    28: _stages(28, 25),
    29: _stages(29, 27),
    30: _stages(30, 6, 4, 1),
    31: _stages(31, 28),
    32: _stages(32, 22, 2, 1),
    48: _stages(48, 47, 21, 20),
    64: _stages(64, 63, 61, 60),
    96: _stages(96, 94, 49, 47),
    128: _stages(128, 126, 101, 99),
    144: _stages(144, 143, 75, 74),
    160: _stages(160, 158, 142, 141),
    168: _stages(168, 166, 153, 151),
    176: _stages(176, 167, 145, 144),
    192: _stages(192, 190, 178, 177),
    208: _stages(208, 207, 205, 199),
    224: _stages(224, 222, 217, 212),
    240: _stages(240, 236, 210, 208),
    256: _stages(256, 254, 251, 246),
    272: _stages(272, 270, 266, 263),
    288: _stages(288, 287, 278, 269),
    304: _stages(304, 303, 302, 293),
    320: _stages(320, 319, 317, 316),
    336: _stages(336, 335, 332, 329),
    352: _stages(352, 351, 347, 344),
    368: _stages(368, 367, 364, 361),
}


def default_taps(width: int) -> tuple[int, ...]:
    """Tap set for ``width``: table entry, or a deterministic fallback.

    The fallback ``{w-1, w-2, w-4, w-5}`` always taps the final stage so
    the register cycles through long sequences even when not provably
    maximal.
    """
    if width < 2:
        raise ValueError("LFSR width must be at least 2")
    if width in PRIMITIVE_TAPS:
        return PRIMITIVE_TAPS[width]
    if width < 5:
        return tuple(sorted({width - 1, width - 2}))
    return tuple(sorted({width - 1, width - 2, width - 4, width - 5}))


def is_maximal_length(width: int, taps: tuple[int, ...], limit: int | None = None) -> bool:
    """Exhaustively check whether the Fibonacci LFSR has period 2^w - 1.

    Only practical for small widths (<= ~24); used by the test suite to
    validate the table.  ``limit`` caps the walk for safety.
    """
    from repro.prng.lfsr import FibonacciLfsr

    full_period = (1 << width) - 1
    if limit is not None and full_period > limit:
        raise ValueError(f"period 2^{width}-1 exceeds the check limit")
    lfsr = FibonacciLfsr(width=width, taps=taps, seed_bits=[1] + [0] * (width - 1))
    start = tuple(lfsr.state)
    steps = 0
    while True:
        lfsr.advance()
        steps += 1
        if tuple(lfsr.state) == start:
            return steps == full_period
        if steps > full_period:
            return False
