"""PRNG substrate: LFSRs, their tap polynomials, and symbolic unrolling.

EFF-Dyn generates a fresh scan-obfuscation key every clock cycle from an
LFSR seeded with a secret.  The attack exploits the LFSR's *linearity*:
every keystream bit is a fixed GF(2) combination of the seed bits, so the
whole keystream can be represented symbolically and compiled into XOR
networks whose primary "key inputs" are the seed bits themselves.
"""

from repro.prng.lfsr import FibonacciLfsr, GaloisLfsr, Keystream
from repro.prng.polynomials import default_taps, PRIMITIVE_TAPS, is_maximal_length
from repro.prng.matrix import companion_matrix, lfsr_state_after
from repro.prng.symbolic import SymbolicLfsr
from repro.prng.nonlinear import NonlinearPrng
from repro.prng.berlekamp_massey import (
    berlekamp_massey,
    LfsrDescription,
    recover_fibonacci_taps,
)

__all__ = [
    "berlekamp_massey",
    "LfsrDescription",
    "recover_fibonacci_taps",
    "FibonacciLfsr",
    "GaloisLfsr",
    "Keystream",
    "default_taps",
    "PRIMITIVE_TAPS",
    "is_maximal_length",
    "companion_matrix",
    "lfsr_state_after",
    "SymbolicLfsr",
    "NonlinearPrng",
]
