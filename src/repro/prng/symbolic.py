"""Symbolic LFSR unrolling.

Two symbolic views of the same keystream, both rooted in the linearity of
the LFSR update:

* :class:`SymbolicLfsr` tracks, per cycle, the dense GF(2) dependence of
  every state bit on the seed bits (a width x width bit matrix).  This is
  what the overlay-matrix derivation and the affine candidate-counting
  analysis consume.
* :class:`LfsrUnrolling` materialises the keystream as XOR gates inside a
  netlist, with the seed bits as primary (key) inputs.  Because a shift
  register only creates one genuinely new bit per update, the unrolled
  network needs just *one* XOR gate per cycle -- all other state bits are
  aliases of earlier nets.  DynUnlock's combinational model references
  these nets directly.
"""

from __future__ import annotations

from typing import Sequence

try:  # optional: gated so the numpy-less scalar paths can import repro
    import numpy as np
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    np = None  # type: ignore[assignment]

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist, NetNamer
from repro.prng.matrix import companion_matrix


class SymbolicLfsr:
    """Seed-dependence matrices of the keystream, computed incrementally.

    ``rows_for_cycle(t)`` returns a ``width x width`` uint8 matrix ``R``
    such that the dynamic key during obfuscated cycle ``t`` equals
    ``R @ seed`` over GF(2) (i.e. ``R = T^(t+1)``).  The update is done
    with row shifts instead of matrix powers, costing O(width^2) per cycle.
    """

    def __init__(self, width: int, taps: Sequence[int]):
        if np is None:
            raise ModuleNotFoundError(
                "numpy is required for symbolic LFSR unrolling"
            )
        self.width = width
        self.taps = tuple(sorted(taps))
        self._rows = np.eye(width, dtype=np.uint8)  # T^0
        self._updates = 0
        self._cache: dict[int, np.ndarray] = {}

    def _advance(self) -> None:
        new_row = np.zeros(self.width, dtype=np.uint8)
        for tap in self.taps:
            new_row ^= self._rows[tap]
        shifted = np.empty_like(self._rows)
        shifted[1:] = self._rows[:-1]
        shifted[0] = new_row
        self._rows = shifted
        self._updates += 1

    def rows_for_cycle(self, t: int) -> np.ndarray:
        """Dependence matrix of the key used during cycle ``t`` (>= 0)."""
        if t < 0:
            raise ValueError("cycle index must be >= 0")
        target = t + 1
        if target in self._cache:
            return self._cache[target]
        if target < self._updates:
            # Random access backwards: recompute via matrix power (rare).
            mat = companion_matrix(self.width, self.taps).pow(target)
            result = mat.data.copy()
            self._cache[target] = result
            return result
        while self._updates < target:
            self._advance()
        result = self._rows.copy()
        self._cache[target] = result
        return result

    def key_row(self, t: int, bit: int) -> np.ndarray:
        """Seed-dependence vector of key bit ``bit`` during cycle ``t``."""
        return self.rows_for_cycle(t)[bit]

    def iter_rows(self, cycles) -> "list[tuple[int, np.ndarray]]":
        """Yield ``(cycle, rows)`` for many cycles in one forward sweep.

        Cycles are visited in ascending order regardless of input order,
        advancing the register incrementally and *without* caching a
        snapshot per cycle -- the memory-friendly path for whole-overlay
        derivations (thousands of cycles at paper scale).  The yielded
        array is a live view; callers must copy if they retain it.
        """
        for t in sorted(set(int(c) for c in cycles)):
            if t < 0:
                raise ValueError("cycle index must be >= 0")
            target = t + 1
            if target < self._updates:
                yield t, self.rows_for_cycle(t)
                continue
            while self._updates < target:
                self._advance()
            yield t, self._rows


class LfsrUnrolling:
    """Keystream compiled into XOR gates of a netlist.

    ``key_net(t, i)`` names the net carrying key bit ``i`` of cycle ``t``.
    The construction is lazy: XOR gates for "new bits" are only created for
    updates actually referenced, so models of partially-covered chains stay
    small.
    """

    def __init__(
        self,
        netlist: Netlist,
        seed_nets: Sequence[str],
        taps: Sequence[int],
        namer: NetNamer | None = None,
    ):
        self.netlist = netlist
        self.seed_nets = list(seed_nets)
        self.width = len(seed_nets)
        self.taps = tuple(sorted(taps))
        self._namer = namer or NetNamer(netlist, prefix="lfsr_")
        self._newbit_nets: dict[int, str] = {}

    def key_net(self, t: int, bit: int) -> str:
        """Net of key bit ``bit`` used during obfuscated cycle ``t``.

        The key for cycle ``t`` is the state after ``t + 1`` updates; state
        bit ``i`` after ``u`` updates is the new bit of update ``u - i``
        when ``u - i >= 1`` and seed bit ``i - u`` otherwise.
        """
        if t < 0:
            raise ValueError("cycle index must be >= 0")
        if not 0 <= bit < self.width:
            raise ValueError(f"key bit {bit} out of range")
        return self._state_bit_net(updates=t + 1, bit=bit)

    def _state_bit_net(self, updates: int, bit: int) -> str:
        creation_update = updates - bit
        if creation_update <= 0:
            return self.seed_nets[bit - updates]
        return self._newbit_net(creation_update)

    def _newbit_net(self, update: int) -> str:
        existing = self._newbit_nets.get(update)
        if existing is not None:
            return existing
        operands = [
            self._state_bit_net(updates=update - 1, bit=tap) for tap in self.taps
        ]
        net = self._namer.fresh(hint=f"k{update}_")
        if len(operands) == 1:
            self.netlist.add_gate(net, GateType.BUF, operands)
        else:
            self.netlist.add_gate(net, GateType.XOR, operands)
        self._newbit_nets[update] = net
        return net

    @property
    def n_gates_created(self) -> int:
        return len(self._newbit_nets)
