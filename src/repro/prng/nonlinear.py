"""A deliberately non-linear PRNG stand-in.

Section V of the paper concedes that DynUnlock cannot break defenses whose
dynamic keys come from cryptographic functions or PUFs, because those
cannot be modelled as compact combinational (and in particular linear)
logic.  This module provides the stand-in used by the corresponding
ablation bench: a small nonlinear filter generator (LFSR state passed
through AND-mixing) whose keystream is *not* an affine function of the
seed, so the linear modeling step demonstrably fails.
"""

from __future__ import annotations

from typing import Sequence

from repro.prng.lfsr import FibonacciLfsr


class NonlinearPrng:
    """Filter generator: Fibonacci LFSR core + nonlinear output layer.

    Output bit ``i`` of each cycle is ``s[i] XOR (s[(i+1) % w] AND
    s[(i+3) % w])`` -- a bent-function-flavoured mix that breaks linearity
    while keeping the state update itself an ordinary LFSR (so periods stay
    long).  The class intentionally mirrors the
    :class:`repro.prng.lfsr.Keystream` interface so defenses can swap it in
    without code changes.
    """

    def __init__(
        self,
        width: int,
        seed_bits: Sequence[int],
        taps: Sequence[int] | None = None,
    ):
        self._lfsr = FibonacciLfsr(width=width, seed_bits=seed_bits, taps=taps)
        self.width = width

    def _filter(self, state: Sequence[int]) -> list[int]:
        w = self.width
        return [
            state[i] ^ (state[(i + 1) % w] & state[(i + 3) % w]) for i in range(w)
        ]

    def next_key(self) -> list[int]:
        return self._filter(self._lfsr.advance())

    def key_for_cycle(self, t: int) -> list[int]:
        probe = FibonacciLfsr(
            width=self.width, seed_bits=self._lfsr.seed, taps=self._lfsr.taps
        )
        state = probe.peek()
        for _ in range(t + 1):
            state = probe.advance()
        return self._filter(state)

    def restart(self) -> None:
        self._lfsr.reset()
