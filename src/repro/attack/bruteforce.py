"""Candidate refinement by oracle replay.

Tables II and III of the paper report benchmarks where the SAT attack
leaves up to 128 seed candidates, "which can be easily brute forced to
obtain the correct seed".  This module implements that brute-force step:
replay fresh random patterns against the real chip and keep only the
candidates whose *predicted* scrambled responses match.

Prediction evaluates the combinational attack model with the candidate
seed plugged into its key inputs -- the same artifact the SAT attack ran
on, so no additional modeling code is trusted here.  Evaluation is
bit-parallel: each surviving candidate occupies one packed lane, so a
single pass of the :class:`repro.sim.logicsim.BitParallelSimulator`
checks every candidate against one replayed pattern at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.modeling import CombinationalModel
from repro.netlist.netlist import Netlist
from repro.sim.logicsim import BitParallelSimulator, broadcast_inputs
from repro.util.bitvec import broadcast_bit, lane_mask, pack_lanes, random_bits


@dataclass
class ReplayModel:
    """The structural contract :func:`refine_candidates_by_replay` needs.

    A minimal stand-in for :class:`~repro.core.modeling.CombinationalModel`
    for attacks whose locked circuit is not a scan-overlay model -- the
    scramble MUX model and the brute-force adapters both build one.
    """

    netlist: Netlist
    a_inputs: list[str]
    pi_inputs: list[str]
    key_inputs: list[str]
    b_outputs: list[str]
    po_outputs: list[str]

    @property
    def x_inputs(self) -> list[str]:
        return self.a_inputs + self.pi_inputs

    @property
    def observed_outputs(self) -> list[str]:
        return self.b_outputs + self.po_outputs


@dataclass
class RefinementResult:
    """Surviving candidates after oracle-replay filtering."""
    survivors: list[list[int]]
    n_patterns_used: int
    n_candidates_in: int

    @property
    def unique(self) -> bool:
        """True when exactly one candidate survived."""
        return len(self.survivors) == 1


def refine_candidates_by_replay(
    model: CombinationalModel,
    candidates: Sequence[Sequence[int]],
    oracle_query: Callable[[list[int], list[int]], list[int]],
    rng: random.Random,
    n_patterns: int = 16,
    stop_at_one: bool = True,
) -> RefinementResult:
    """Filter seed candidates against the live oracle.

    ``oracle_query(scan_in, primary_inputs)`` must return the observed
    bits in the model's output order (scan-out by position, then POs).
    Candidates that mispredict any replayed pattern are eliminated.  With
    ``stop_at_one`` the loop ends as soon as a single survivor remains.

    Per pattern, the scan-in/PI bits are broadcast across all candidate
    lanes and the candidate seeds are column-packed into the key inputs,
    so the whole candidate set is simulated in one bit-parallel pass.
    """
    sim = BitParallelSimulator(model.netlist)
    survivors = [list(c) for c in candidates]
    n_a = len(model.a_inputs)
    n_pi = len(model.pi_inputs)
    patterns_used = 0

    for _ in range(n_patterns):
        if not survivors or (stop_at_one and len(survivors) == 1):
            break
        scan_in = random_bits(n_a, rng)
        pi = random_bits(n_pi, rng)
        observed = list(oracle_query(scan_in, pi))
        if len(observed) != len(model.observed_outputs):
            raise ValueError("oracle returned wrong number of output bits")
        patterns_used += 1

        n_lanes = len(survivors)
        packed = broadcast_inputs(model.a_inputs, scan_in, n_lanes)
        packed.update(broadcast_inputs(model.pi_inputs, pi, n_lanes))
        packed.update(zip(model.key_inputs, pack_lanes(survivors)))

        values = sim.run_packed(packed, n_lanes)
        mismatch = 0
        for net, bit in zip(model.observed_outputs, observed):
            mismatch |= values[net] ^ broadcast_bit(bit, n_lanes)
            if mismatch == lane_mask(n_lanes):
                break  # every remaining lane already mispredicts
        survivors = [
            seed
            for lane, seed in enumerate(survivors)
            if not (mismatch >> lane) & 1
        ]

    return RefinementResult(
        survivors=survivors,
        n_patterns_used=patterns_used,
        n_candidates_in=len(candidates),
    )
