"""Simplified shift-and-leak attack against the DFS defense.

Limaye et al. (2019) broke DFS (blocked scan-out) by noticing that the
attacker still *controls* the flip-flop state via scan-in and still
*observes* primary outputs in functional mode; key information leaks
through those outputs.  With that access pattern, key recovery reduces to
an oracle-guided SAT attack on the combinational core where the inputs
are (state, primary inputs) and the observables are the primary outputs
only.

This module implements that reduction directly (see the substitution note
in :mod:`repro.locking.dfs`): it extracts the locked combinational core,
treats the pseudo-primary inputs as controllable, strips the unobservable
pseudo-primary outputs, and runs the standard SAT attack with the DFS
oracle's ``load_and_observe`` as the query primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.locking.dfs import DfsLock, DfsOracle
from repro.netlist.transform import extract_combinational_core, strip_outputs
from repro.util.timing import Stopwatch


@dataclass
class ShiftAndLeakResult:
    """Outcome of the shift-and-leak attack against DFS."""
    success: bool
    recovered_key: list[int] | None
    key_candidates: list[list[int]]
    iterations: int
    runtime_s: float


def shift_and_leak_attack(
    lock_netlist,
    public_view,
    oracle: DfsOracle,
    candidate_limit: int = 64,
    timeout_s: float | None = None,
    opt_level: int | None = None,
) -> ShiftAndLeakResult:
    """Recover the DFS logic-locking key through PO leakage.

    ``lock_netlist`` is the reverse-engineered locked netlist (with key
    inputs); ``public_view`` names those key inputs.
    """
    watch = Stopwatch().start()
    core, ppi_nets, _ = extract_combinational_core(lock_netlist)
    # Scan-out is blocked, so pseudo-primary outputs are unobservable.
    observable = strip_outputs(
        core, [net for net in core.outputs if not net.startswith("ppo_")]
    )

    key_set = set(public_view.key_inputs)
    x_inputs = [net for net in observable.inputs if net not in key_set]
    n_state = len(ppi_nets)
    # x order: original PIs first, then ppi_* (extract_combinational_core
    # appends state inputs after the functional ones).
    n_pi = len(x_inputs) - n_state

    def oracle_fn(x_bits: list[int]) -> list[int]:
        pi = x_bits[:n_pi]
        state = x_bits[n_pi:]
        return oracle.load_and_observe(state, pi)

    attack = SatAttack(
        locked=observable,
        key_inputs=list(public_view.key_inputs),
        oracle_fn=oracle_fn,
        config=SatAttackConfig(
            candidate_limit=candidate_limit,
            timeout_s=timeout_s,
            opt_level=opt_level,  # SatAttack optimizes the observable core
        ),
    )
    result = attack.run()
    watch.stop()
    recovered = result.key_candidates[0] if result.key_candidates else None
    return ShiftAndLeakResult(
        success=result.converged and recovered is not None,
        recovered_key=recovered,
        key_candidates=result.key_candidates,
        iterations=result.iterations,
        runtime_s=watch.total,
    )


def shift_and_leak_on_lock(lock: DfsLock, **kwargs) -> ShiftAndLeakResult:
    """Convenience wrapper used by benches and examples."""
    return shift_and_leak_attack(
        lock.netlist, lock.public_view(), lock.make_oracle(), **kwargs
    )
