"""The oracle-guided SAT attack on locked combinational circuits.

Given a locked netlist ``C(X, K)`` with designated key inputs ``K`` and an
input/output oracle for the original function ``f(X)``, the attack
iterates:

1. build a *miter*: two copies of ``C`` sharing ``X`` but holding
   independent keys ``K_A``, ``K_B``, constrained so that at least one
   output differs — a satisfying assignment yields a *distinguishing
   input pattern* (DIP);
2. query the oracle with the DIP and constrain both key copies to
   reproduce the observed response (two fresh circuit copies per DIP);
3. repeat until the miter is unsatisfiable: every key still satisfying
   the accumulated constraints is functionally correct on all inputs
   distinguished so far, and no further DIP exists.

The whole loop runs in **one** :class:`repro.sat.IncrementalSolver`
session: the miter CNF is built once from the cached Tseitin template of
the locked netlist, each DIP stamps two more template copies plus unit
constraints into the same solver, and learned clauses/variable
activities persist across iterations.  The miter clause carries an
activation literal so the same session can afterwards enumerate the
surviving key assignments with the miter switched off (the paper's
"seed candidates" when driven by DynUnlock).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.netlist.netlist import Netlist
from repro.observability import spans as obs
from repro.opt import OptResult, optimize, resolve_level
from repro.sat.enumerate import enumerate_models
from repro.sat.incremental import IncrementalSolver
from repro.sat.solver import SolverStats
from repro.sat.tseitin import CircuitEncoder, encoding_for
from repro.util.timing import Stopwatch

OracleFn = Callable[[list[int]], list[int]]


@dataclass
class SatAttackConfig:
    """Attack knobs.

    ``opt_level`` selects the :mod:`repro.opt` preprocessing level the
    locked netlist is rewritten at before encoding (None = the active
    default, 0 = encode the raw netlist).  Because the optimizer pins
    the full I/O interface, recovered keys are unaffected -- only the
    encoded clause count and simulation cost change.
    """

    max_iterations: int = 10_000
    candidate_limit: int = 1024  # stop enumerating key candidates here
    timeout_s: float | None = None  # wall-clock budget for the whole attack
    iteration_hook: Callable[["IterationRecord"], None] | None = None
    opt_level: int | None = None


@dataclass
class IterationRecord:
    """Per-DIP trace entry (the paper dumps the CNF at this point)."""

    iteration: int
    dip: list[int]
    response: list[int]
    n_clauses: int
    n_vars: int
    elapsed_s: float


@dataclass
class SatAttackResult:
    """Outcome of the DIP loop: convergence, DIP trace, key candidates."""
    converged: bool
    iterations: int
    dips: list[tuple[list[int], list[int]]]
    key_candidates: list[list[int]]
    candidates_exhausted: bool  # True when enumeration hit candidate_limit
    fixed_key_bits: dict[int, int]
    runtime_s: float
    stopwatch: Stopwatch = field(repr=False, default_factory=Stopwatch)
    solver_stats: SolverStats = field(repr=False, default_factory=SolverStats)

    @property
    def n_candidates(self) -> int:
        return len(self.key_candidates)

    def unique_key(self) -> list[int] | None:
        """The recovered key when the attack pinned down exactly one."""
        if self.converged and len(self.key_candidates) == 1:
            return self.key_candidates[0]
        return None


class SatAttack:
    """One attack instance bound to a locked netlist and an oracle.

    ``key_inputs`` must be a subset of the netlist's primary inputs; the
    remaining inputs form ``X`` in their original order, which is also the
    order ``oracle_fn`` receives bits in.  ``oracle_fn`` returns output
    bits in the netlist's output order.

    The incremental session is exposed for callers that drive the loop
    themselves (AppSAT, CNF dumping, probing): ``solver`` is the live
    :class:`IncrementalSolver`, ``encoder`` the shared CNF namespace,
    ``act_var`` the miter activation literal, and ``x_vars`` /
    ``key_vars_a`` / ``key_vars_b`` the variable vectors of the shared
    inputs and the two key copies.
    """

    def __init__(
        self,
        locked: Netlist,
        key_inputs: Sequence[str],
        oracle_fn: OracleFn,
        config: SatAttackConfig | None = None,
        fixed_key_bits: dict[int, int] | None = None,
    ):
        self.key_inputs = list(key_inputs)
        key_set = set(self.key_inputs)
        missing = key_set - set(locked.inputs)
        if missing:
            raise ValueError(f"key inputs not in netlist: {sorted(missing)}")
        self.oracle_fn = oracle_fn
        self.config = config or SatAttackConfig()

        # Optimization preprocessing: every miter/constraint copy stamps
        # from the rewritten netlist.  The optimizer pins inputs (hence
        # key inputs) and outputs by name, so DIPs, responses and
        # recovered keys live in the original netlist's terms.
        self.opt_result: OptResult | None = None
        if resolve_level(self.config.opt_level) > 0:
            self.opt_result = optimize(locked, level=self.config.opt_level)
            locked = self.opt_result.netlist
        self.locked = locked
        self.x_inputs = [net for net in locked.inputs if net not in key_set]

        # Compile the locked circuit's Tseitin template once; every miter
        # copy and every per-DIP constraint copy stamps from it.
        with obs.phase("encode"):
            self._template = encoding_for(locked)
            self.encoder = CircuitEncoder()
            self.solver = IncrementalSolver()
            self._copy_count = 0
            self._build_miter()
        # Seed information carried over from earlier attack rounds (the
        # paper's restart step) enters as unit clauses on both key copies.
        if fixed_key_bits:
            for index, value in sorted(fixed_key_bits.items()):
                for var in (self.key_vars_a[index], self.key_vars_b[index]):
                    self.solver.add_clause([var if value else -var])

    # ------------------------------------------------------------------
    def _encode_copy(self, prefix: str, share_keys_with: str | None) -> dict[str, int]:
        """Stamp one circuit copy; key vars shared with a previous copy."""
        if share_keys_with is not None:
            for net in self.key_inputs:
                shared_var = self.encoder.var_for(f"{share_keys_with}{net}")
                self.encoder.alias(f"{prefix}{net}", shared_var)
        return self.encoder.stamp(self._template, prefix=prefix)

    def _build_miter(self) -> None:
        # Shared X variables across the two miter copies.
        for net in self.x_inputs:
            var = self.encoder.var_for(f"X::{net}")
            self.encoder.alias(f"A::{net}", var)
            self.encoder.alias(f"B::{net}", var)
        map_a = self._encode_copy("A::", share_keys_with=None)
        map_b = self._encode_copy("B::", share_keys_with=None)

        cnf = self.encoder.cnf
        self.act_var = cnf.new_var()
        diff_lits: list[int] = []
        for net in self.locked.outputs:
            ya, yb = map_a[net], map_b[net]
            d = cnf.new_var()
            # d <-> ya xor yb
            cnf.add_clause([-d, ya, yb])
            cnf.add_clause([-d, -ya, -yb])
            cnf.add_clause([d, ya, -yb])
            cnf.add_clause([d, -ya, yb])
            diff_lits.append(d)
        cnf.add_clause([-self.act_var] + diff_lits)

        self.x_vars = [self.encoder.var_for(f"X::{net}") for net in self.x_inputs]
        self.key_vars_a = [
            self.encoder.var_for(f"A::{net}") for net in self.key_inputs
        ]
        self.key_vars_b = [
            self.encoder.var_for(f"B::{net}") for net in self.key_inputs
        ]
        self._synced_clauses = self.solver.absorb(cnf)

    def _sync_solver(self) -> None:
        """Push clauses added to the CNF since the last sync."""
        self._synced_clauses = self.solver.absorb(
            self.encoder.cnf, already_synced=self._synced_clauses
        )

    def add_dip_constraint(self, dip: list[int], response: list[int]) -> None:
        """Both key copies must reproduce the oracle response on this DIP.

        Stamps one fresh template copy per key side (keys shared with the
        miter copies, everything else fresh) and pins its X inputs and
        outputs to the observed pattern, then streams the new clauses
        into the incremental session.
        """
        cnf = self.encoder.cnf
        for side in ("A", "B"):
            self._copy_count += 1
            prefix = f"{side}{self._copy_count}::"
            mapping = self._encode_copy(prefix, share_keys_with=f"{side}::")
            for net, bit in zip(self.x_inputs, dip):
                var = mapping[net]
                cnf.add_clause([var if bit else -var])
            for net, bit in zip(self.locked.outputs, response):
                var = mapping[net]
                cnf.add_clause([var if bit else -var])
        self._sync_solver()

    def current_key(self, extra_assumptions: Sequence[int] = ()) -> list[int] | None:
        """A key consistent with all constraints so far (miter disabled).

        Returns the ``K_A`` assignment of any model of the accumulated
        constraint formula, or None when no such key remains.
        """
        result = self.solver.solve(
            assumptions=[-self.act_var, *extra_assumptions]
        )
        if result.satisfiable is not True:
            return None
        return self.solver.values(self.key_vars_a)

    # ------------------------------------------------------------------
    def run(self) -> SatAttackResult:
        """Execute the DIP loop, then enumerate surviving key candidates."""
        cfg = self.config
        watch = Stopwatch().start()
        deadline = (
            time.perf_counter() + cfg.timeout_s if cfg.timeout_s is not None else None
        )
        started = time.perf_counter()
        dips: list[tuple[list[int], list[int]]] = []
        converged = False

        iteration = 0
        while iteration < cfg.max_iterations:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            with watch.lap("solve_dip"):
                result = self.solver.solve(
                    assumptions=[self.act_var], timeout_s=remaining
                )
            if result.satisfiable is None:
                break  # budget exhausted
            if result.satisfiable is False:
                converged = True
                break
            iteration += 1
            dip = self.solver.values(self.x_vars)
            with watch.lap("oracle"):
                response = self.oracle_fn(dip)
            if len(response) != len(self.locked.outputs):
                raise ValueError("oracle returned wrong number of output bits")
            dips.append((dip, list(response)))
            with watch.lap("constrain"):
                self.add_dip_constraint(dip, list(response))
            if cfg.iteration_hook is not None:
                cfg.iteration_hook(
                    IterationRecord(
                        iteration=iteration,
                        dip=dip,
                        response=list(response),
                        n_clauses=self.encoder.cnf.n_clauses,
                        n_vars=self.encoder.cnf.n_vars,
                        elapsed_s=time.perf_counter() - started,
                    )
                )

        key_candidates: list[list[int]] = []
        exhausted = False
        if converged:
            # Blocking clauses go into a retractable group so enumeration
            # does not poison the session: current_key() and further
            # solver use keep seeing every surviving candidate.  The
            # activation variable must come from the shared CNF namespace
            # — allocating it in the solver alone would let the next
            # stamped copy reuse the same id for a circuit net.
            block_group = self.encoder.cnf.new_var()
            self._sync_solver()
            with watch.lap("enumerate"):
                for model_bits in enumerate_models(
                    self.solver,
                    self.key_vars_a,
                    limit=cfg.candidate_limit,
                    assumptions=[-self.act_var, block_group],
                    group=block_group,
                ):
                    key_candidates.append(model_bits)
            self.solver.release_group(block_group)
            exhausted = len(key_candidates) >= cfg.candidate_limit
            # Model enumeration order is a solver internal (it shifts
            # with encoding details such as the optimization level);
            # the *set* of surviving keys is the semantic result, so
            # canonicalise.  Downstream consumers -- refinement's
            # survivors[0], the restart consensus -- thereby return
            # identical keys for every equivalent encoding, as long as
            # enumeration ran to completion.
            key_candidates.sort()

        fixed: dict[int, int] = {}
        if key_candidates and not exhausted:
            for index in range(len(self.key_inputs)):
                column = {cand[index] for cand in key_candidates}
                if len(column) == 1:
                    fixed[index] = key_candidates[0][index]

        watch.stop()
        if obs.active():
            # Map stopwatch laps onto the span phase catalogue
            # (docs/observability.md); a single dict merge per attack,
            # nothing on the per-DIP path.
            obs.add_phase("solve", watch.laps.get("solve_dip", 0.0))
            obs.add_phase("oracle", watch.laps.get("oracle", 0.0))
            obs.add_phase("encode", watch.laps.get("constrain", 0.0))
            obs.add_phase("enumerate", watch.laps.get("enumerate", 0.0))
            obs.incr("dips", iteration)
            obs.incr("oracle_queries", iteration)
            obs.incr("key_candidates", len(key_candidates))
        return SatAttackResult(
            converged=converged,
            iterations=iteration,
            dips=dips,
            key_candidates=key_candidates,
            candidates_exhausted=exhausted,
            fixed_key_bits=fixed,
            runtime_s=watch.total,
            stopwatch=watch,
            # Snapshot: the live session keeps mutating its stats object
            # when the caller continues using it after run().
            solver_stats=replace(self.solver.stats),
        )
