"""The oracle-guided SAT attack on locked combinational circuits.

Given a locked netlist ``C(X, K)`` with designated key inputs ``K`` and an
input/output oracle for the original function ``f(X)``, the attack
iterates:

1. build a *miter*: two copies of ``C`` sharing ``X`` but holding
   independent keys ``K_A``, ``K_B``, constrained so that at least one
   output differs — a satisfying assignment yields a *distinguishing
   input pattern* (DIP);
2. query the oracle with the DIP and constrain both key copies to
   reproduce the observed response (two fresh circuit copies per DIP);
3. repeat until the miter is unsatisfiable: every key still satisfying
   the accumulated constraints is functionally correct on all inputs
   distinguished so far, and no further DIP exists.

The miter clause carries an activation literal so the same incremental
solver can afterwards enumerate the surviving key assignments (the
paper's "seed candidates" when driven by DynUnlock).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.netlist.netlist import Netlist
from repro.sat.enumerate import enumerate_models
from repro.sat.solver import CdclSolver
from repro.sat.tseitin import CircuitEncoder
from repro.util.timing import Stopwatch

OracleFn = Callable[[list[int]], list[int]]


@dataclass
class SatAttackConfig:
    """Attack knobs."""

    max_iterations: int = 10_000
    candidate_limit: int = 1024  # stop enumerating key candidates here
    timeout_s: float | None = None  # wall-clock budget for the whole attack
    iteration_hook: Callable[["IterationRecord"], None] | None = None


@dataclass
class IterationRecord:
    """Per-DIP trace entry (the paper dumps the CNF at this point)."""

    iteration: int
    dip: list[int]
    response: list[int]
    n_clauses: int
    n_vars: int
    elapsed_s: float


@dataclass
class SatAttackResult:
    """Outcome of the DIP loop: convergence, DIP trace, key candidates."""
    converged: bool
    iterations: int
    dips: list[tuple[list[int], list[int]]]
    key_candidates: list[list[int]]
    candidates_exhausted: bool  # True when enumeration hit candidate_limit
    fixed_key_bits: dict[int, int]
    runtime_s: float
    stopwatch: Stopwatch = field(repr=False, default_factory=Stopwatch)

    @property
    def n_candidates(self) -> int:
        return len(self.key_candidates)

    def unique_key(self) -> list[int] | None:
        if self.converged and len(self.key_candidates) == 1:
            return self.key_candidates[0]
        return None


class SatAttack:
    """One attack instance bound to a locked netlist and an oracle.

    ``key_inputs`` must be a subset of the netlist's primary inputs; the
    remaining inputs form ``X`` in their original order, which is also the
    order ``oracle_fn`` receives bits in.  ``oracle_fn`` returns output
    bits in the netlist's output order.
    """

    def __init__(
        self,
        locked: Netlist,
        key_inputs: Sequence[str],
        oracle_fn: OracleFn,
        config: SatAttackConfig | None = None,
        fixed_key_bits: dict[int, int] | None = None,
    ):
        self.locked = locked
        self.key_inputs = list(key_inputs)
        key_set = set(self.key_inputs)
        missing = key_set - set(locked.inputs)
        if missing:
            raise ValueError(f"key inputs not in netlist: {sorted(missing)}")
        self.x_inputs = [net for net in locked.inputs if net not in key_set]
        self.oracle_fn = oracle_fn
        self.config = config or SatAttackConfig()

        self._encoder = CircuitEncoder()
        self._solver = CdclSolver()
        self._copy_count = 0
        self._build_miter()
        # Seed information carried over from earlier attack rounds (the
        # paper's restart step) enters as unit clauses on both key copies.
        if fixed_key_bits:
            for index, value in sorted(fixed_key_bits.items()):
                for var in (self._key_vars_a[index], self._key_vars_b[index]):
                    self._solver.add_clause([var if value else -var])

    # ------------------------------------------------------------------
    def _encode_copy(self, prefix: str, share_keys_with: str | None) -> dict[str, int]:
        """Encode one circuit copy; key vars shared with a previous copy."""
        if share_keys_with is not None:
            for net in self.key_inputs:
                shared_var = self._encoder.var_for(f"{share_keys_with}{net}")
                self._encoder.alias(f"{prefix}{net}", shared_var)
        return self._encoder.encode_netlist(self.locked, prefix=prefix)

    def _build_miter(self) -> None:
        # Shared X variables across the two miter copies.
        for net in self.x_inputs:
            var = self._encoder.var_for(f"X::{net}")
            self._encoder.alias(f"A::{net}", var)
            self._encoder.alias(f"B::{net}", var)
        map_a = self._encode_copy("A::", share_keys_with=None)
        map_b = self._encode_copy("B::", share_keys_with=None)

        cnf = self._encoder.cnf
        self._act_var = cnf.new_var()
        diff_lits: list[int] = []
        for net in self.locked.outputs:
            ya, yb = map_a[net], map_b[net]
            d = cnf.new_var()
            # d <-> ya xor yb
            cnf.add_clause([-d, ya, yb])
            cnf.add_clause([-d, -ya, -yb])
            cnf.add_clause([d, ya, -yb])
            cnf.add_clause([d, -ya, yb])
            diff_lits.append(d)
        cnf.add_clause([-self._act_var] + diff_lits)

        self._x_vars = [self._encoder.var_for(f"X::{net}") for net in self.x_inputs]
        self._key_vars_a = [
            self._encoder.var_for(f"A::{net}") for net in self.key_inputs
        ]
        self._key_vars_b = [
            self._encoder.var_for(f"B::{net}") for net in self.key_inputs
        ]
        self._solver.add_cnf(cnf)
        self._synced_clauses = cnf.n_clauses

    def _sync_solver(self) -> None:
        """Push clauses added to the CNF since the last sync."""
        cnf = self._encoder.cnf
        while self._solver.n_vars < cnf.n_vars:
            self._solver.new_var()
        for clause in cnf.clauses[self._synced_clauses :]:
            self._solver.add_clause(clause)
        self._synced_clauses = cnf.n_clauses

    def _add_dip_constraint(self, dip: list[int], response: list[int]) -> None:
        """Both key copies must reproduce the oracle response on this DIP."""
        cnf = self._encoder.cnf
        for side in ("A", "B"):
            self._copy_count += 1
            prefix = f"{side}{self._copy_count}::"
            mapping = self._encode_copy(prefix, share_keys_with=f"{side}::")
            for net, bit in zip(self.x_inputs, dip):
                var = mapping[net]
                cnf.add_clause([var if bit else -var])
            for net, bit in zip(self.locked.outputs, response):
                var = mapping[net]
                cnf.add_clause([var if bit else -var])
        self._sync_solver()

    # ------------------------------------------------------------------
    def run(self) -> SatAttackResult:
        cfg = self.config
        watch = Stopwatch().start()
        deadline = (
            time.perf_counter() + cfg.timeout_s if cfg.timeout_s is not None else None
        )
        started = time.perf_counter()
        dips: list[tuple[list[int], list[int]]] = []
        converged = False

        iteration = 0
        while iteration < cfg.max_iterations:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            with watch.lap("solve_dip"):
                result = self._solver.solve(
                    assumptions=[self._act_var], timeout_s=remaining
                )
            if result.satisfiable is None:
                break  # budget exhausted
            if result.satisfiable is False:
                converged = True
                break
            iteration += 1
            assert result.model is not None
            dip = [result.model[v] for v in self._x_vars]
            with watch.lap("oracle"):
                response = self.oracle_fn(dip)
            if len(response) != len(self.locked.outputs):
                raise ValueError("oracle returned wrong number of output bits")
            dips.append((dip, list(response)))
            with watch.lap("constrain"):
                self._add_dip_constraint(dip, list(response))
            if cfg.iteration_hook is not None:
                cfg.iteration_hook(
                    IterationRecord(
                        iteration=iteration,
                        dip=dip,
                        response=list(response),
                        n_clauses=self._encoder.cnf.n_clauses,
                        n_vars=self._encoder.cnf.n_vars,
                        elapsed_s=time.perf_counter() - started,
                    )
                )

        key_candidates: list[list[int]] = []
        exhausted = False
        if converged:
            with watch.lap("enumerate"):
                for model_bits in enumerate_models(
                    self._solver,
                    self._key_vars_a,
                    limit=cfg.candidate_limit,
                    assumptions=[-self._act_var],
                ):
                    key_candidates.append(model_bits)
            exhausted = len(key_candidates) >= cfg.candidate_limit

        fixed: dict[int, int] = {}
        if key_candidates and not exhausted:
            for index in range(len(self.key_inputs)):
                column = {cand[index] for cand in key_candidates}
                if len(column) == 1:
                    fixed[index] = key_candidates[0][index]

        watch.stop()
        return SatAttackResult(
            converged=converged,
            iterations=iteration,
            dips=dips,
            key_candidates=key_candidates,
            candidates_exhausted=exhausted,
            fixed_key_bits=fixed,
            runtime_s=watch.total,
            stopwatch=watch,
        )
