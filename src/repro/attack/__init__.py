"""Attack framework.

* :mod:`repro.attack.satattack` — the oracle-guided SAT attack
  (Subramanyan et al., HOST 2015) on locked *combinational* netlists; the
  engine every scan attack in this repo reduces to.
* :mod:`repro.attack.scansat` — ScanSAT (static scan obfuscation).
* :mod:`repro.attack.scansat_dyn` — the DOS adjustment (per-pattern keys).
* :mod:`repro.attack.shift_and_leak` — simplified shift-and-leak vs DFS.
* :mod:`repro.attack.bruteforce` — candidate refinement by oracle replay.
* :mod:`repro.attack.scramble_sat` — SAT attack on keyed scan-chain
  scrambling (the :mod:`repro.locking.scramble` extension).

DynUnlock itself lives in :mod:`repro.core` (it is the paper's
contribution); it composes the modeling step with this SAT attack engine.
"""

from repro.attack.satattack import SatAttack, SatAttackConfig, SatAttackResult
from repro.attack.scansat import scansat_attack, ScanSatResult
from repro.attack.scansat_dyn import scansat_dyn_attack
from repro.attack.shift_and_leak import shift_and_leak_attack
from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.scramble_sat import ScrambleSatResult, scramble_sat_attack
from repro.attack.appsat import AppSat, AppSatConfig, AppSatResult

__all__ = [
    "ScrambleSatResult",
    "scramble_sat_attack",
    "SatAttack",
    "SatAttackConfig",
    "SatAttackResult",
    "scansat_attack",
    "ScanSatResult",
    "scansat_dyn_attack",
    "shift_and_leak_attack",
    "refine_candidates_by_replay",
    "AppSat",
    "AppSatConfig",
    "AppSatResult",
]
