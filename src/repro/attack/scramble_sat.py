"""SAT attack on keyed scan-chain scrambling.

The scramble defense (:mod:`repro.locking.scramble`) routes the tester's
scan slots through key-controlled chain swaps.  Because the permutation
is static per key, one oracle query collapses to a combinational map

    observed = P_k( F( P_k(pattern), PI ) )

with ``P_k`` the key-selected involution and ``F`` the circuit's
next-state/output core.  That is a plain MUX-locked combinational
circuit: each swappable position becomes a 2:1 multiplexer selected by
its key bit, on the way in (driving the core's pseudo-primary inputs)
and again on the way out (reading its pseudo-primary outputs).  The
standard oracle-guided SAT attack then recovers the routing key, and
bit-parallel oracle replay verifies the survivors -- the same two-stage
shape as ScanSAT on static EFF.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attack.bruteforce import ReplayModel, refine_candidates_by_replay
from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.locking.scramble import ScrambleLock, ScramblePublicView
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core
from repro.opt import optimize, resolve_level
from repro.scan.oracle import ScanResponse
from repro.util.timing import Stopwatch


def build_scramble_model(
    netlist: Netlist, view: ScramblePublicView
) -> ReplayModel:
    """Build the MUX-locked model of one scrambled-scan query."""
    chains = view.chains
    if chains.n_flops != netlist.n_dffs:
        raise ValueError("chain geometry does not match the netlist flop count")
    n = chains.n_flops
    core, _, _ = extract_combinational_core(netlist)

    # partner[g] = (partner index, key bit) for swappable positions.
    partner: dict[int, tuple[int, int]] = {}
    for t, (c1, c2) in enumerate(view.swap_pairs):
        base1 = chains.flop_index(c1, 0)
        base2 = chains.flop_index(c2, 0)
        for p in range(chains.chain_lengths[c1]):
            partner[base1 + p] = (base2 + p, t)
            partner[base2 + p] = (base1 + p, t)

    model = Netlist(name=f"{netlist.name}_scramble_model")
    a_inputs = [f"scr_a{g}" for g in range(n)]
    for net in a_inputs:
        model.add_input(net)
    pi_inputs = list(netlist.inputs)
    for net in pi_inputs:
        model.add_input(net)
    key_inputs = [f"scr_key{t}" for t in range(view.key_bits)]
    for net in key_inputs:
        model.add_input(net)

    # Routing-in MUXes drive the core's pseudo-primary inputs directly
    # (the core's ppi_* names become gate outputs here, not inputs).
    for g in range(n):
        if g in partner:
            other, t = partner[g]
            model.add_gate(
                f"ppi_{g}",
                GateType.MUX,
                [key_inputs[t], a_inputs[g], a_inputs[other]],
            )
        else:
            model.add_gate(f"ppi_{g}", GateType.BUF, [a_inputs[g]])

    for gate in core.gates.values():
        model.add_gate(gate.output, gate.gtype, gate.inputs)

    # Routing-out MUXes read the captured state back through the same
    # permutation (the swap is an involution, so in/out share the map).
    b_outputs = [f"scr_b{g}" for g in range(n)]
    for g in range(n):
        if g in partner:
            other, t = partner[g]
            model.add_gate(
                b_outputs[g],
                GateType.MUX,
                [key_inputs[t], f"ppo_{g}", f"ppo_{other}"],
            )
        else:
            model.add_gate(b_outputs[g], GateType.BUF, [f"ppo_{g}"])
        model.add_output(b_outputs[g])

    po_outputs = []
    for net in netlist.outputs:
        model.add_output(net)
        po_outputs.append(net)

    return ReplayModel(
        netlist=model,
        a_inputs=a_inputs,
        pi_inputs=pi_inputs,
        key_inputs=key_inputs,
        b_outputs=b_outputs,
        po_outputs=po_outputs,
    )


@dataclass
class ScrambleSatResult:
    """Outcome of the scramble-SAT run: the recovered routing key."""

    success: bool
    recovered_key: list[int] | None
    key_candidates: list[list[int]]
    iterations: int
    runtime_s: float


def scramble_sat_attack(
    netlist: Netlist,
    public_view: ScramblePublicView,
    oracle,
    candidate_limit: int = 256,
    verify_patterns: int = 16,
    timeout_s: float | None = None,
    rng_seed: int = 0x5C2A,
    opt_level: int | None = None,
) -> ScrambleSatResult:
    """Recover a scramble routing key through the scan oracle."""
    watch = Stopwatch().start()
    model = build_scramble_model(netlist, public_view)
    if resolve_level(opt_level) > 0:
        model.netlist = optimize(model.netlist, level=opt_level).netlist
    n_a = len(model.a_inputs)

    def observe(response: ScanResponse) -> list[int]:
        observed = list(response.scan_out)
        if model.po_outputs:
            observed += list(response.primary_outputs)
        return observed

    def oracle_fn(x_bits: list[int]) -> list[int]:
        return observe(oracle.query(x_bits[:n_a], x_bits[n_a:]))

    attack = SatAttack(
        locked=model.netlist,
        key_inputs=model.key_inputs,
        oracle_fn=oracle_fn,
        config=SatAttackConfig(
            candidate_limit=candidate_limit,
            timeout_s=timeout_s,
            opt_level=0,  # the model above is already optimized
        ),
    )
    result = attack.run()

    recovered: list[int] | None = None
    if result.key_candidates:
        rng = random.Random(rng_seed)

        def replay(scan_in: list[int], pi: list[int]) -> list[int]:
            return observe(oracle.query(scan_in, pi))

        refinement = refine_candidates_by_replay(
            model, result.key_candidates, replay, rng, n_patterns=verify_patterns
        )
        if refinement.survivors:
            recovered = refinement.survivors[0]

    watch.stop()
    return ScrambleSatResult(
        success=recovered is not None,
        recovered_key=recovered,
        key_candidates=result.key_candidates,
        iterations=result.iterations,
        runtime_s=watch.total,
    )


def scramble_sat_on_lock(lock: ScrambleLock, **kwargs) -> ScrambleSatResult:
    """Convenience wrapper used by the matrix registry and tests."""
    return scramble_sat_attack(
        lock.netlist, lock.public_view(), lock.make_oracle(), **kwargs
    )
