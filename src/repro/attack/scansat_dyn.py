"""The DOS adjustment: DynUnlock against per-pattern dynamic keys.

DOS updates its LFSR key every ``p`` patterns rather than every cycle.
The paper notes DynUnlock "can be adjusted to break other less rigorous
scan locking techniques"; the adjustment is embarrassingly small given
the power-on-reset threat model: restarting the chip before each query
freezes the key at the first LFSR update, ``T @ seed``.  The attack then
runs the ``dos_restart`` model -- a *static* overlay whose key bits are
the one-step-unrolled LFSR outputs -- and recovers the seed directly
(the LFSR equations are part of the model, so candidates are seeds, not
intermediate keys).  The DIP loop inherits the incremental solver
session from :class:`repro.attack.satattack.SatAttack`; refinement runs
bit-parallel over the candidate lanes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.core.modeling import build_combinational_model
from repro.locking.dos import DosLock, DosPublicView
from repro.netlist.netlist import Netlist
from repro.scan.oracle import ScanOracle
from repro.util.timing import Stopwatch


@dataclass
class ScanSatDynResult:
    """Outcome of the DOS-adjusted attack (recovered LFSR seed)."""
    success: bool
    recovered_seed: list[int] | None
    seed_candidates: list[list[int]]
    iterations: int
    runtime_s: float


def scansat_dyn_attack(
    netlist: Netlist,
    public_view: DosPublicView,
    oracle: ScanOracle,
    candidate_limit: int = 256,
    verify_patterns: int = 16,
    timeout_s: float | None = None,
    rng_seed: int = 0xD05,
) -> ScanSatDynResult:
    """Recover the DOS LFSR seed (works for any update period ``p``)."""
    watch = Stopwatch().start()
    model = build_combinational_model(
        netlist,
        spec=public_view.spec,
        taps=public_view.lfsr_taps,
        key_bits=public_view.lfsr_width,
        mode="dos_restart",
    )
    n_a = len(model.a_inputs)

    def oracle_fn(x_bits: list[int]) -> list[int]:
        response = oracle.query(x_bits[:n_a], x_bits[n_a:])
        observed = list(response.scan_out)
        if model.po_outputs:
            observed += list(response.primary_outputs)
        return observed

    attack = SatAttack(
        locked=model.netlist,
        key_inputs=model.key_inputs,
        oracle_fn=oracle_fn,
        config=SatAttackConfig(
            candidate_limit=candidate_limit, timeout_s=timeout_s
        ),
    )
    result = attack.run()

    recovered: list[int] | None = None
    if result.key_candidates:
        rng = random.Random(rng_seed)

        def replay(scan_in: list[int], pi: list[int]) -> list[int]:
            response = oracle.query(scan_in, pi)
            observed = list(response.scan_out)
            if model.po_outputs:
                observed += list(response.primary_outputs)
            return observed

        refinement = refine_candidates_by_replay(
            model, result.key_candidates, replay, rng, n_patterns=verify_patterns
        )
        if refinement.survivors:
            recovered = refinement.survivors[0]

    watch.stop()
    return ScanSatDynResult(
        success=recovered is not None,
        recovered_seed=recovered,
        seed_candidates=result.key_candidates,
        iterations=result.iterations,
        runtime_s=watch.total,
    )


def scansat_dyn_attack_on_lock(lock: DosLock, **kwargs) -> ScanSatDynResult:
    """Convenience wrapper used by benches and examples."""
    return scansat_dyn_attack(
        lock.netlist, lock.public_view(), lock.make_oracle(), **kwargs
    )
