"""The DOS adjustment: DynUnlock against per-pattern dynamic keys.

DOS updates its LFSR key every ``p`` patterns rather than every cycle.
The paper notes DynUnlock "can be adjusted to break other less rigorous
scan locking techniques"; the adjustment is embarrassingly small given
the power-on-reset threat model: restarting the chip before each query
freezes the key at the first LFSR update, ``T @ seed``.  The attack then
runs the ``dos_restart`` model -- a *static* overlay whose key bits are
the one-step-unrolled LFSR outputs -- and recovers the seed directly
(the LFSR equations are part of the model, so candidates are seeds, not
intermediate keys).  The DIP loop inherits the incremental solver
session from :class:`repro.attack.satattack.SatAttack`; refinement runs
bit-parallel over the candidate lanes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.core.modeling import build_combinational_model
from repro.locking.dos import DosLock, DosPublicView
from repro.netlist.netlist import Netlist
from repro.opt import optimize, resolve_level
from repro.scan.oracle import ScanOracle
from repro.util.timing import Stopwatch


@dataclass
class ScanSatDynResult:
    """Outcome of the DOS-adjusted attack (recovered LFSR seed)."""
    success: bool
    recovered_seed: list[int] | None
    seed_candidates: list[list[int]]
    iterations: int
    runtime_s: float


def scansat_dyn_attack(
    netlist: Netlist,
    public_view: DosPublicView,
    oracle: ScanOracle,
    candidate_limit: int = 256,
    verify_patterns: int = 16,
    timeout_s: float | None = None,
    rng_seed: int = 0xD05,
    opt_level: int | None = None,
) -> ScanSatDynResult:
    """Recover the DOS LFSR seed (works for any update period ``p``)."""
    watch = Stopwatch().start()
    model = build_combinational_model(
        netlist,
        spec=public_view.spec,
        taps=public_view.lfsr_taps,
        key_bits=public_view.lfsr_width,
        mode="dos_restart",
    )
    if resolve_level(opt_level) > 0:
        model.netlist = optimize(model.netlist, level=opt_level).netlist
    n_a = len(model.a_inputs)

    def oracle_fn(x_bits: list[int]) -> list[int]:
        response = oracle.query(x_bits[:n_a], x_bits[n_a:])
        observed = list(response.scan_out)
        if model.po_outputs:
            observed += list(response.primary_outputs)
        return observed

    attack = SatAttack(
        locked=model.netlist,
        key_inputs=model.key_inputs,
        oracle_fn=oracle_fn,
        config=SatAttackConfig(
            candidate_limit=candidate_limit,
            timeout_s=timeout_s,
            opt_level=0,  # the model above is already optimized
        ),
    )
    result = attack.run()

    recovered: list[int] | None = None
    if result.key_candidates:
        rng = random.Random(rng_seed)

        def replay(scan_in: list[int], pi: list[int]) -> list[int]:
            response = oracle.query(scan_in, pi)
            observed = list(response.scan_out)
            if model.po_outputs:
                observed += list(response.primary_outputs)
            return observed

        refinement = refine_candidates_by_replay(
            model, result.key_candidates, replay, rng, n_patterns=verify_patterns
        )
        recovered = _full_replay_survivor(
            netlist,
            public_view,
            oracle,
            refinement.survivors,
            random.Random(rng_seed ^ 0x51D),
            verify_patterns,
        )

    watch.stop()
    return ScanSatDynResult(
        success=recovered is not None,
        recovered_seed=recovered,
        seed_candidates=result.key_candidates,
        iterations=result.iterations,
        runtime_s=watch.total,
    )


def _full_replay_survivor(
    netlist: Netlist,
    public_view: DosPublicView,
    oracle: ScanOracle,
    survivors: list[list[int]],
    rng: random.Random,
    n_patterns: int,
) -> list[int] | None:
    """First survivor whose *full* keystream replay matches the chip.

    The ``dos_restart`` model only observes the first LFSR update, so
    seeds sharing ``T @ seed`` are indistinguishable to the model-based
    refinement even when their later keystream diverges (the boundary
    edge of a query can consume the second update).  Rebuild the real
    per-pattern keystream oracle from each candidate seed and demand
    query-for-query agreement with the live chip -- the same criterion
    the fuzzer's independent attack-replay invariant applies.
    """
    from repro.locking.dos import PerPatternKeystream
    from repro.prng.lfsr import FibonacciLfsr
    from repro.util.bitvec import random_bits

    if not survivors:
        return None
    n = public_view.spec.n_flops
    patterns = [
        (random_bits(n, rng), random_bits(len(netlist.inputs), rng))
        for _ in range(n_patterns)
    ]
    live = [oracle.query(scan_in, pi) for scan_in, pi in patterns]
    for seed in survivors:
        try:
            lfsr = FibonacciLfsr(
                width=len(seed), seed_bits=seed, taps=public_view.lfsr_taps
            )
        except ValueError:  # degenerate seed (e.g. all-zero)
            continue
        replay = ScanOracle(
            netlist,
            public_view.spec,
            PerPatternKeystream(lfsr, 2 * n, public_view.period_p),
        )
        matches = True
        for (scan_in, pi), want in zip(patterns, live):
            got = replay.query(scan_in, pi)
            if (
                got.scan_out != want.scan_out
                or got.primary_outputs != want.primary_outputs
            ):
                matches = False
                break
        if matches:
            return seed
    return None


def scansat_dyn_attack_on_lock(lock: DosLock, **kwargs) -> ScanSatDynResult:
    """Convenience wrapper used by benches and examples."""
    return scansat_dyn_attack(
        lock.netlist, lock.public_view(), lock.make_oracle(), **kwargs
    )
