"""AppSAT: the approximate SAT attack (Shamsi et al., HOST 2017).

Referenced in the paper's introduction as one of the oracle-guided
attacks that scan obfuscation shuts out.  AppSAT interleaves the exact
DIP loop with rounds of random queries: whenever the current best key
explains a long streak of random input/output samples, the attack stops
early with an *approximately* correct key.  Against compound locks
(point functions + conventional locking) this recovers the conventional
part quickly; against plain RLL it behaves like the SAT attack with an
early-exit heuristic.

Implemented on the same engine as everything else: the incremental miter
of :class:`repro.attack.satattack.SatAttack` plus random-sample
reinforcement clauses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.attack.satattack import OracleFn, SatAttack, SatAttackConfig
from repro.netlist.netlist import Netlist
from repro.sim.logicsim import CombinationalSimulator
from repro.util.bitvec import random_bits
from repro.util.timing import Stopwatch


@dataclass
class AppSatConfig:
    """AppSAT knobs (defaults follow the published heuristic's spirit)."""

    sample_interval: int = 2  # run a sampling round every N DIPs
    samples_per_round: int = 16
    error_threshold: float = 0.0  # stop when observed error <= threshold
    settle_rounds: int = 2  # consecutive clean rounds required
    max_iterations: int = 10_000
    timeout_s: float | None = None
    rng_seed: int = 0xA995


@dataclass
class AppSatResult:
    """Outcome of an AppSAT run (key, exit reason, error estimate)."""
    key: list[int] | None
    exact_convergence: bool  # True when the full SAT attack converged
    early_exit: bool  # True when the error estimate triggered the stop
    iterations: int
    sampled_queries: int
    estimated_error: float
    runtime_s: float


class AppSat:
    """Approximate attack driver over the incremental SAT-attack miter."""

    def __init__(
        self,
        locked: Netlist,
        key_inputs: Sequence[str],
        oracle_fn: OracleFn,
        config: AppSatConfig | None = None,
    ):
        self.config = config or AppSatConfig()
        self._attack = SatAttack(
            locked,
            key_inputs,
            oracle_fn,
            SatAttackConfig(max_iterations=1),  # we drive the loop ourselves
        )
        self.locked = locked
        self.key_inputs = list(key_inputs)
        self.oracle_fn = oracle_fn
        self._sim = CombinationalSimulator(locked)
        self._rng = random.Random(self.config.rng_seed)

    def _current_key(self) -> list[int] | None:
        return self._attack.current_key()

    def _key_output(self, key: list[int], x_bits: list[int]) -> list[int]:
        inputs = dict(zip(self._attack.x_inputs, x_bits))
        inputs.update(zip(self.key_inputs, key))
        values = self._sim.run(inputs)
        return [values[net] for net in self.locked.outputs]

    def _sampling_round(self, key: list[int]) -> tuple[int, int]:
        """Random queries; mismatches become reinforcement constraints.

        Returns (errors, samples).
        """
        errors = 0
        for _ in range(self.config.samples_per_round):
            x_bits = random_bits(len(self._attack.x_inputs), self._rng)
            expected = self.oracle_fn(x_bits)
            if self._key_output(key, x_bits) != expected:
                errors += 1
                self._attack.add_dip_constraint(x_bits, list(expected))
        return errors, self.config.samples_per_round

    def run(self) -> AppSatResult:
        cfg = self.config
        watch = Stopwatch().start()
        iterations = 0
        sampled = 0
        clean_rounds = 0
        last_error = 1.0
        early = False
        exact = False

        while iterations < cfg.max_iterations:
            result = self._attack.solver.solve(
                assumptions=[self._attack.act_var],
                timeout_s=cfg.timeout_s,
            )
            if result.satisfiable is None:
                break
            if result.satisfiable is False:
                exact = True
                break
            iterations += 1
            dip = self._attack.solver.values(self._attack.x_vars)
            response = self.oracle_fn(dip)
            self._attack.add_dip_constraint(dip, list(response))

            if iterations % cfg.sample_interval == 0:
                key = self._current_key()
                if key is None:
                    break
                errors, samples = self._sampling_round(key)
                sampled += samples
                last_error = errors / samples
                if last_error <= cfg.error_threshold:
                    clean_rounds += 1
                    if clean_rounds >= cfg.settle_rounds:
                        early = True
                        break
                else:
                    clean_rounds = 0

        key = self._current_key()
        watch.stop()
        return AppSatResult(
            key=key,
            exact_convergence=exact,
            early_exit=early,
            iterations=iterations,
            sampled_queries=sampled,
            estimated_error=0.0 if exact else last_error,
            runtime_s=watch.total,
        )
