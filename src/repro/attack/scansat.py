"""ScanSAT: the SAT attack on *statically* obfuscated scan chains.

Alrahis et al. (ASP-DAC 2019) broke static EFF by modeling the scan
scramble as XOR overlays controlled directly by the (static) key and
running the SAT attack -- Table I's first row.  DynUnlock generalises
this to per-cycle dynamic keys; here the same project machinery is run in
``static`` mode, so the attack shares every line of modeling and SAT code
with DynUnlock and differs only in what the key inputs mean.  Like every
driver built on :class:`repro.attack.satattack.SatAttack`, the DIP loop
runs in one incremental solver session (miter encoded once, per-DIP
clauses appended) and candidate refinement replays bit-parallel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attack.bruteforce import refine_candidates_by_replay
from repro.attack.satattack import SatAttack, SatAttackConfig
from repro.core.modeling import build_combinational_model
from repro.locking.eff import EffStaticLock, EffStaticPublicView
from repro.netlist.netlist import Netlist
from repro.opt import optimize, resolve_level
from repro.scan.oracle import ScanOracle
from repro.util.timing import Stopwatch


@dataclass
class ScanSatResult:
    """Outcome of a ScanSAT run against static EFF."""
    success: bool
    recovered_key: list[int] | None
    key_candidates: list[list[int]]
    iterations: int
    runtime_s: float


def scansat_attack(
    netlist: Netlist,
    public_view: EffStaticPublicView,
    oracle: ScanOracle,
    candidate_limit: int = 256,
    verify_patterns: int = 16,
    timeout_s: float | None = None,
    rng_seed: int = 0x5CA9,
    opt_level: int | None = None,
) -> ScanSatResult:
    """Recover a static EFF scan-locking key through the oracle."""
    watch = Stopwatch().start()
    model = build_combinational_model(
        netlist,
        spec=public_view.spec,
        taps=None,
        key_bits=public_view.spec.n_keygates,
        mode="static",
    )
    if resolve_level(opt_level) > 0:
        model.netlist = optimize(model.netlist, level=opt_level).netlist
    n_a = len(model.a_inputs)

    def oracle_fn(x_bits: list[int]) -> list[int]:
        response = oracle.query(x_bits[:n_a], x_bits[n_a:])
        observed = list(response.scan_out)
        if model.po_outputs:
            observed += list(response.primary_outputs)
        return observed

    attack = SatAttack(
        locked=model.netlist,
        key_inputs=model.key_inputs,
        oracle_fn=oracle_fn,
        config=SatAttackConfig(
            candidate_limit=candidate_limit,
            timeout_s=timeout_s,
            opt_level=0,  # the model above is already optimized
        ),
    )
    result = attack.run()

    recovered: list[int] | None = None
    if result.key_candidates:
        rng = random.Random(rng_seed)

        def replay(scan_in: list[int], pi: list[int]) -> list[int]:
            response = oracle.query(scan_in, pi)
            observed = list(response.scan_out)
            if model.po_outputs:
                observed += list(response.primary_outputs)
            return observed

        refinement = refine_candidates_by_replay(
            model, result.key_candidates, replay, rng, n_patterns=verify_patterns
        )
        if refinement.survivors:
            recovered = refinement.survivors[0]

    watch.stop()
    return ScanSatResult(
        success=recovered is not None,
        recovered_key=recovered,
        key_candidates=result.key_candidates,
        iterations=result.iterations,
        runtime_s=watch.total,
    )


def scansat_attack_on_lock(
    lock: EffStaticLock, **kwargs
) -> ScanSatResult:
    """Convenience wrapper used by benches and examples."""
    return scansat_attack(
        lock.netlist, lock.public_view(), lock.make_oracle(), **kwargs
    )
