"""EFF: statically keyed scan obfuscation (Karmakar et al. 2018).

The predecessor of EFF-Dyn: the same XOR key gates between scan flops, but
driven by a *fixed* secret key for every shift cycle.  Broken by ScanSAT
(Alrahis et al. 2019), which this repo reproduces as a baseline attack;
Table I's first row.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.keygates import place_keygates
from repro.netlist.netlist import Netlist
from repro.scan.chain import ScanChainSpec
from repro.scan.oracle import ScanOracle
from repro.util.bitvec import random_bits


class ConstantKeystream:
    """Keystream adapter that returns the same key every cycle."""

    def __init__(self, key: Sequence[int]):
        self._key = [int(b) for b in key]
        self.width = len(self._key)

    def next_key(self) -> list[int]:
        return list(self._key)

    def restart(self) -> None:  # stateless
        return None


@dataclass(frozen=True)
class EffStaticPublicView:
    """Structural information available to the ScanSAT attacker."""

    spec: ScanChainSpec
    key_bits: int


@dataclass
class EffStaticLock:
    """A circuit locked with static EFF."""

    netlist: Netlist
    spec: ScanChainSpec
    secret_key: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.secret_key) != self.spec.n_keygates:
            raise ValueError("one key bit per key gate is required")

    @property
    def key_bits(self) -> int:
        return len(self.secret_key)

    def public_view(self) -> EffStaticPublicView:
        return EffStaticPublicView(spec=self.spec, key_bits=len(self.secret_key))

    def make_oracle(self) -> ScanOracle:
        return ScanOracle(
            netlist=self.netlist,
            spec=self.spec,
            keystream=ConstantKeystream(self.secret_key),
            obfuscation_enabled=True,
        )


def lock_with_eff(
    netlist: Netlist,
    key_bits: int,
    rng: random.Random,
    placement: str = "random",
    secret_key: Sequence[int] | None = None,
) -> EffStaticLock:
    """Lock a sequential netlist with static EFF."""
    spec = place_keygates(netlist.n_dffs, key_bits, rng, policy=placement)
    key = (
        [int(b) for b in secret_key]
        if secret_key is not None
        else random_bits(key_bits, rng)
    )
    if len(key) != key_bits:
        raise ValueError("secret key width must equal key_bits")
    return EffStaticLock(netlist=netlist, spec=spec, secret_key=tuple(key))
