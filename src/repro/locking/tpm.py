"""Test authentication scheme of the paper's Fig. 2.

A tamper-proof memory (TPM) holds the secret scan-locking key.  During
test, an externally supplied test key is compared against it; on a match
the key gates receive the (correct) secret key during shift as well, and
the scan path behaves transparently.  On a mismatch the key selector hands
control of the key gates to the PRNG, whose output updates every cycle.

These classes are small by design -- the security content lives in the
comparator/selector *behaviour*, which the oracle and the Fig. 2 example
exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class TamperProofMemory:
    """Holds the secret key; contents are not exposed via repr/str."""

    _secret: tuple[int, ...]

    @classmethod
    def with_key(cls, secret_key: Sequence[int]) -> "TamperProofMemory":
        for bit in secret_key:
            if bit not in (0, 1):
                raise ValueError("secret key bits must be 0/1")
        return cls(tuple(int(b) for b in secret_key))

    @property
    def width(self) -> int:
        return len(self._secret)

    def compare(self, test_key: Sequence[int]) -> bool:
        """Constant-shape comparator: True when the test key matches."""
        if len(test_key) != len(self._secret):
            return False
        diff = 0
        for secret_bit, test_bit in zip(self._secret, test_key):
            diff |= secret_bit ^ (test_bit & 1)
        return diff == 0

    def read_for_capture(self) -> list[int]:
        """Key delivered to the key gates during capture (SE low)."""
        return list(self._secret)

    def __repr__(self) -> str:  # never leak the secret in logs
        return f"TamperProofMemory(width={len(self._secret)})"


@dataclass
class AuthenticationScheme:
    """Comparator + key selector of Fig. 2.

    ``select_key`` returns which source drives the key gates for a shift
    cycle: the secret key (authenticated tester) or the PRNG (attacker).
    """

    tpm: TamperProofMemory
    match_latched: bool = field(default=False, init=False)

    def authenticate(self, test_key: Sequence[int]) -> bool:
        self.match_latched = self.tpm.compare(test_key)
        return self.match_latched

    def select_key(
        self, scan_enable: int, prng_key: Sequence[int]
    ) -> list[int]:
        """Key-gate control vector for the current cycle.

        SE low (functional / capture): the TPM key, always.
        SE high (shift): the TPM key iff the tester authenticated,
        otherwise the PRNG's current output.
        """
        if scan_enable not in (0, 1):
            raise ValueError("scan_enable must be 0/1")
        if scan_enable == 0 or self.match_latched:
            return self.tpm.read_for_capture()
        return list(prng_key)
