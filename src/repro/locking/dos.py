"""DOS: dynamically obfuscated scan with per-pattern key updates.

Wang et al. (TCAD 2017) update the LFSR-generated key after every ``p``
test patterns instead of every clock cycle; within one pattern the key is
static.  The paper notes DynUnlock "can be adjusted" to such less rigorous
schemes -- the adjustment (implemented in
:mod:`repro.attack.scansat_dyn`) exploits the power-on reset: restarting
the chip before every query pins the key to the first LFSR update, which
reduces the defense to a static overlay whose key is ``T @ seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.keygates import place_keygates
from repro.netlist.netlist import Netlist
from repro.prng.lfsr import FibonacciLfsr
from repro.prng.polynomials import default_taps
from repro.scan.chain import ScanChainSpec
from repro.scan.oracle import ScanOracle
from repro.util.bitvec import random_bits


class PerPatternKeystream:
    """Keystream that holds its key for ``2 * n_flops`` edges of a pattern.

    The scan protocol consumes one key per edge; this adapter advances the
    underlying LFSR only once per ``p`` completed patterns, matching DOS
    semantics.  ``restart`` models power-on reset: the LFSR reloads its
    seed and the pattern counter clears -- which is exactly the behaviour
    the adjusted attack leans on.
    """

    def __init__(self, lfsr: FibonacciLfsr, edges_per_pattern: int, period_p: int):
        self._lfsr = lfsr
        self._edges_per_pattern = edges_per_pattern
        self._period_p = max(1, period_p)
        self._edge_count = 0
        self._current = list(lfsr.advance())  # key for the first pattern
        self.width = lfsr.width

    def next_key(self) -> list[int]:
        patterns_done = self._edge_count // self._edges_per_pattern
        self._edge_count += 1
        new_patterns_done = self._edge_count // self._edges_per_pattern
        if (
            new_patterns_done != patterns_done
            and new_patterns_done % self._period_p == 0
        ):
            self._current = list(self._lfsr.advance())
        return list(self._current)

    def restart(self) -> None:
        self._lfsr.reset()
        self._edge_count = 0
        self._current = list(self._lfsr.advance())


@dataclass(frozen=True)
class DosPublicView:
    """Reverse-engineerable facts about a DOS-locked chip."""
    spec: ScanChainSpec
    lfsr_width: int
    lfsr_taps: tuple[int, ...]
    period_p: int


@dataclass
class DosLock:
    """A circuit locked with DOS (key update every ``period_p`` patterns)."""

    netlist: Netlist
    spec: ScanChainSpec
    lfsr_taps: tuple[int, ...]
    seed: tuple[int, ...]
    period_p: int = 1

    @property
    def key_bits(self) -> int:
        return len(self.seed)

    def public_view(self) -> DosPublicView:
        return DosPublicView(
            spec=self.spec,
            lfsr_width=len(self.seed),
            lfsr_taps=self.lfsr_taps,
            period_p=self.period_p,
        )

    def make_oracle(self) -> ScanOracle:
        lfsr = FibonacciLfsr(
            width=len(self.seed), seed_bits=list(self.seed), taps=self.lfsr_taps
        )
        edges_per_pattern = 2 * self.spec.n_flops
        return ScanOracle(
            netlist=self.netlist,
            spec=self.spec,
            keystream=PerPatternKeystream(lfsr, edges_per_pattern, self.period_p),
            obfuscation_enabled=True,
        )


def lock_with_dos(
    netlist: Netlist,
    key_bits: int,
    rng: random.Random,
    period_p: int = 1,
    taps: Sequence[int] | None = None,
    placement: str = "random",
    seed: Sequence[int] | None = None,
) -> DosLock:
    """Lock a sequential netlist with DOS (most rigorous when p = 1)."""
    spec = place_keygates(netlist.n_dffs, key_bits, rng, policy=placement)
    chosen_taps = tuple(taps) if taps is not None else default_taps(key_bits)
    if seed is None:
        seed_bits = random_bits(key_bits, rng)
        while not any(seed_bits):
            seed_bits = random_bits(key_bits, rng)
    else:
        seed_bits = [int(b) for b in seed]
    return DosLock(
        netlist=netlist,
        spec=spec,
        lfsr_taps=chosen_taps,
        seed=tuple(seed_bits),
        period_p=period_p,
    )
