"""Scan / logic locking defenses reproduced from the paper's Table I.

* :mod:`repro.locking.effdyn` — **EFF-Dyn** (Karmakar et al. 2019), the
  case-study defense: XOR key gates in the scan path driven by an LFSR
  whose output changes every clock cycle.  Broken by DynUnlock.
* :mod:`repro.locking.eff` — EFF (Karmakar et al. 2018): the same key
  gates driven by a *static* secret key.  Broken by ScanSAT.
* :mod:`repro.locking.dos` — DOS (Wang et al. 2017): dynamic key updated
  every ``p`` test patterns.  Broken by the ScanSAT-dyn adjustment.
* :mod:`repro.locking.dfs` — DFS (Guin et al. 2018): scan-out blocked on
  mode switches (simplified model).  Broken by shift-and-leak.
* :mod:`repro.locking.rll` — random XOR/XNOR combinational logic locking,
  the substrate the original SAT attack was formulated against; used by
  the DFS model and the baseline benches.
* :mod:`repro.locking.tpm` — tamper-proof memory, key comparator and key
  selector of the paper's Fig. 2 test-authentication scheme.

Extensions beyond the paper (rows the matrix grid adds to Table I):

* :mod:`repro.locking.iolock` — combinational locks behind a plain
  input/output oracle (the classic SAT-attack setting), including the
  RLL-on-core baseline.
* :mod:`repro.locking.sarlock` — SARLock-style point-function lock:
  every wrong key errs on exactly one input, pushing the SAT attack to
  ~2^k iterations.
* :mod:`repro.locking.scramble` — keyed scan-chain scrambling over
  multiple parallel chains: the key permutes chains rather than
  corrupting values.
"""

from repro.locking.effdyn import EffDynLock, EffDynPublicView, lock_with_effdyn
from repro.locking.eff import EffStaticLock, lock_with_eff
from repro.locking.dos import DosLock, lock_with_dos
from repro.locking.dfs import DfsLock, lock_with_dfs
from repro.locking.rll import RllLock, lock_combinational_rll
from repro.locking.iolock import IoLock, IoOracle, lock_core_with_rll
from repro.locking.sarlock import lock_with_sarlock
from repro.locking.scramble import ScrambleLock, lock_with_scramble
from repro.locking.keygates import place_keygates
from repro.locking.tpm import TamperProofMemory, AuthenticationScheme

__all__ = [
    "IoLock",
    "IoOracle",
    "lock_core_with_rll",
    "lock_with_sarlock",
    "ScrambleLock",
    "lock_with_scramble",
    "EffDynLock",
    "EffDynPublicView",
    "lock_with_effdyn",
    "EffStaticLock",
    "lock_with_eff",
    "DosLock",
    "lock_with_dos",
    "DfsLock",
    "lock_with_dfs",
    "RllLock",
    "lock_combinational_rll",
    "place_keygates",
    "TamperProofMemory",
    "AuthenticationScheme",
]
