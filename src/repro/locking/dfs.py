"""DFS: robust design-for-security architecture (simplified model).

Guin et al. (TVLSI 2018) protect a logic-locked design by *blocking the
scan-out port* in functional mode and on any mode switch, so captured
responses never leave through the scan chain and the SAT attack loses its
oracle.  Shift-and-leak (Limaye et al. 2019) defeated it by leaking
response information through paths that remain observable.

Substitution note (documented in DESIGN.md): we model the essence rather
than the full mode-controller FSM.  The locked chip here allows

* loading any flip-flop state through the scan chain (shift-in works),
* observing primary outputs in functional mode,

and forbids scan-out after a capture.  The simplified shift-and-leak in
:mod:`repro.attack.shift_and_leak` then works exactly like the published
attack's end effect: it turns PO observations under attacker-chosen states
into an oracle for a combinational SAT attack on the logic-locking key.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.rll import RllLock, lock_combinational_rll
from repro.netlist.netlist import Netlist
from repro.sim.logicsim import CombinationalSimulator


@dataclass(frozen=True)
class DfsPublicView:
    """Reverse-engineerable facts about a DFS-protected chip."""
    key_inputs: tuple[str, ...]
    key_bits: int
    scan_out_blocked: bool = True


@dataclass
class DfsLock:
    """A sequential circuit whose logic is RLL-locked and scan-out blocked."""

    rll: RllLock

    @property
    def netlist(self) -> Netlist:
        return self.rll.locked

    @property
    def key_bits(self) -> int:
        return self.rll.key_bits

    def public_view(self) -> DfsPublicView:
        return DfsPublicView(
            key_inputs=tuple(self.rll.key_inputs), key_bits=self.rll.key_bits
        )

    def make_oracle(self) -> "DfsOracle":
        return DfsOracle(self)


class DfsOracle:
    """The chip under the DFS restrictions.

    ``load_and_observe`` is the only data path the defense leaves open:
    scan in a state, stay in functional mode, read the primary outputs
    combinationally.  Any attempt to scan out raises, mirroring the
    blocked port.
    """

    def __init__(self, lock: DfsLock):
        self._lock = lock
        # The oracle owns the secret key; evaluation uses the locked
        # netlist with the correct key applied, which equals the original.
        self._sim = CombinationalSimulator(lock.rll.locked)
        self._functional_inputs = [
            net
            for net in lock.rll.locked.inputs
            if net not in set(lock.rll.key_inputs)
        ]
        self.query_count = 0

    @property
    def n_flops(self) -> int:
        return self._lock.netlist.n_dffs

    @property
    def functional_inputs(self) -> list[str]:
        return list(self._functional_inputs)

    def load_and_observe(
        self, state: Sequence[int], primary_inputs: Sequence[int] | None = None
    ) -> list[int]:
        """Scan a state in, observe POs in functional mode (no capture)."""
        netlist = self._lock.netlist
        if len(state) != netlist.n_dffs:
            raise ValueError(f"state must have {netlist.n_dffs} bits")
        pi = (
            list(primary_inputs)
            if primary_inputs is not None
            else [0] * len(self._functional_inputs)
        )
        if len(pi) != len(self._functional_inputs):
            raise ValueError("primary input width mismatch")
        self.query_count += 1
        inputs = dict(zip(self._functional_inputs, pi))
        for net, bit in zip(self._lock.rll.key_inputs, self._lock.rll.secret_key):
            inputs[net] = bit
        state_map = dict(zip(netlist.dff_q_nets(), [int(b) for b in state]))
        values = self._sim.run(inputs, state_map)
        return [values[net] for net in netlist.outputs]

    def scan_out(self) -> None:
        raise PermissionError(
            "DFS blocks the scan-out port after functional operation"
        )


def lock_with_dfs(netlist: Netlist, key_bits: int, rng: random.Random) -> DfsLock:
    """Apply the (simplified) DFS defense: RLL logic lock + blocked scan-out."""
    return DfsLock(rll=lock_combinational_rll(netlist, key_bits, rng))
