"""Keyed scan-chain scrambling (extension beyond the paper).

A different obfuscation family from the XOR overlays of EFF/DOS: instead
of corrupting the *values* travelling through the chain, the defense
scrambles *where* they go.  The flops are stitched into many parallel
chains (:mod:`repro.scan.multichain`) and a secret key drives routing
multiplexers at the scan pins: key bit ``t`` swaps the tester-visible
chain slots of one fixed pair of equal-length chains, so the tester's
pattern lands in permuted chains and the captured response is read back
through the same permutation.  With the correct key every swap is
inactive and the tester sees the chains in their documented order.

Threat model matches the rest of the repo: the multiplexer structure
(which pairs can swap) is reverse-engineerable, the key is not.  Because
the permutation is static and key-selected, the scheme reduces to a
MUX-locked combinational model that the plain SAT attack consumes --
implemented in :mod:`repro.attack.scramble_sat` and wired into the
matrix registry as this defense's characterizing attack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.eff import ConstantKeystream
from repro.netlist.netlist import Netlist
from repro.scan.multichain import MultiChainScanOracle, MultiChainSpec
from repro.scan.oracle import ScanResponse
from repro.util.bitvec import random_bits


def balanced_swap_layout(
    n_flops: int, key_bits: int
) -> tuple[MultiChainSpec, tuple[tuple[int, int], ...]]:
    """Split ``n_flops`` into chains and pick one swap pair per key bit.

    Targets ``2 * key_bits`` balanced chains and pairs chains of *equal
    length* (a swap between unequal chains would not be a bijection on
    positions).  When the balanced split leaves an odd count at some
    length, the leftover chain stays unswapped, so the realised key may
    be one bit narrower than requested -- callers read the actual width
    off the returned pair list.
    """
    if key_bits < 1:
        raise ValueError("scramble locking needs at least one key bit")
    n_chains = min(2 * key_bits, n_flops)
    if n_chains < 2:
        raise ValueError(f"cannot scramble {n_flops} flop(s): need >= 2 chains")
    spec = MultiChainSpec.balanced(n_flops, n_chains)
    buckets: dict[int, list[int]] = {}
    for chain, length in enumerate(spec.chain_lengths):
        buckets.setdefault(length, []).append(chain)
    pairs: list[tuple[int, int]] = []
    for length in sorted(buckets, reverse=True):
        chains = buckets[length]
        for i in range(0, len(chains) - 1, 2):
            pairs.append((chains[i], chains[i + 1]))
    if not pairs:
        raise ValueError(
            f"no equal-length chain pair available for {n_flops} flops"
        )
    return spec, tuple(pairs[:key_bits])


def swap_index_map(
    chains: MultiChainSpec,
    swap_pairs: Sequence[tuple[int, int]],
    key: Sequence[int],
) -> list[int]:
    """Global-index routing under ``key``: slot ``g`` maps to ``m[g]``.

    The permutation is an involution (a product of disjoint equal-length
    chain swaps), so the same map routes patterns in and responses out.
    """
    if len(key) != len(swap_pairs):
        raise ValueError("one key bit per swap pair is required")
    mapping = list(range(chains.n_flops))
    for bit, (c1, c2) in zip(key, swap_pairs):
        if not bit:
            continue
        base1 = chains.flop_index(c1, 0)
        base2 = chains.flop_index(c2, 0)
        for p in range(chains.chain_lengths[c1]):
            mapping[base1 + p] = base2 + p
            mapping[base2 + p] = base1 + p
    return mapping


@dataclass(frozen=True)
class ScramblePublicView:
    """What reverse engineering reveals: geometry and swappable pairs."""

    chains: MultiChainSpec
    swap_pairs: tuple[tuple[int, int], ...]

    @property
    def key_bits(self) -> int:
        return len(self.swap_pairs)


class ScrambleScanOracle:
    """The chip: a multi-chain tester interface behind keyed routing MUXes.

    API mirrors :class:`repro.scan.oracle.ScanOracle`: ``query`` takes
    the tester's pattern in *slot* order and returns the response the
    tester observes -- both passed through the secret permutation.  The
    underlying protocol simulation is the unobfuscated multi-chain
    oracle; the scramble layer only re-routes pins, exactly like the
    physical MUXes would.
    """

    def __init__(
        self,
        netlist: Netlist,
        chains: MultiChainSpec,
        swap_pairs: Sequence[tuple[int, int]],
        secret_key: Sequence[int],
    ):
        self._inner = MultiChainScanOracle(
            netlist, chains, ConstantKeystream([]), obfuscation_enabled=False
        )
        self._map = swap_index_map(chains, swap_pairs, secret_key)
        self.netlist = netlist
        self.chains = chains
        self.query_count = 0

    @property
    def n_flops(self) -> int:
        return self.chains.n_flops

    def query(
        self,
        scan_in: Sequence[int],
        primary_inputs: Sequence[int] | None = None,
        n_captures: int = 1,
    ) -> ScanResponse:
        if len(scan_in) != self.chains.n_flops:
            raise ValueError(f"scan_in must have {self.chains.n_flops} bits")
        self.query_count += 1
        m = self._map
        routed = [scan_in[m[g]] for g in range(len(m))]
        response = self._inner.query(routed, primary_inputs, n_captures=n_captures)
        observed = [response.scan_out[m[g]] for g in range(len(m))]
        return ScanResponse(
            scan_out=observed, primary_outputs=response.primary_outputs
        )


@dataclass
class ScrambleLock:
    """A circuit whose scan access is behind a keyed chain permutation."""

    netlist: Netlist
    chains: MultiChainSpec
    swap_pairs: tuple[tuple[int, int], ...]
    secret_key: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.secret_key) != len(self.swap_pairs):
            raise ValueError("one secret key bit per swap pair is required")

    @property
    def key_bits(self) -> int:
        return len(self.secret_key)

    def public_view(self) -> ScramblePublicView:
        return ScramblePublicView(chains=self.chains, swap_pairs=self.swap_pairs)

    def make_oracle(self) -> ScrambleScanOracle:
        return ScrambleScanOracle(
            self.netlist, self.chains, self.swap_pairs, self.secret_key
        )


def lock_with_scramble(
    netlist: Netlist,
    key_bits: int,
    rng: random.Random,
    secret_key: Sequence[int] | None = None,
) -> ScrambleLock:
    """Lock a sequential netlist with keyed chain scrambling.

    The realised key width is ``len(lock.swap_pairs)`` and may be
    narrower than ``key_bits`` when no further equal-length chain pair
    exists (see :func:`balanced_swap_layout`).
    """
    chains, pairs = balanced_swap_layout(netlist.n_dffs, key_bits)
    if secret_key is None:
        key = random_bits(len(pairs), rng)
    else:
        key = [int(b) for b in secret_key]
        if len(key) != len(pairs):
            raise ValueError(f"explicit secret key must have {len(pairs)} bits")
    return ScrambleLock(
        netlist=netlist,
        chains=chains,
        swap_pairs=pairs,
        secret_key=tuple(key),
    )
