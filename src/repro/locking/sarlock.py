"""SARLock-style point-function locking (extension beyond the paper).

SARLock (Yasin et al., HOST 2016) and Anti-SAT counter the SAT attack by
making every wrong key err on exactly *one* input pattern: a comparator
flips a protected output when the applied input equals the key value and
the key is not the correct one.  Each distinguishing input then rules
out a single wrong key, so the DIP loop needs ~2^k iterations instead of
~k -- the output-corruption/SAT-resilience trade-off the later
literature dubbed "point functions".

This implementation locks the full-scan combinational core of a
sequential benchmark (the same substrate :mod:`repro.locking.iolock`
uses for RLL), comparing the first ``key_bits`` core inputs against the
key:

    flip = (X[:k] == K) AND (K != K_secret)
    Y0   = Y0_original XOR flip

With the correct key ``flip`` is constantly 0 and the chip computes its
original function.  The matrix registry pairs it with the plain SAT
attack and the brute-force attack, so the resilience grid *measures*
the exponential-iterations behaviour instead of asserting it.
"""

from __future__ import annotations

import random

from repro.locking.iolock import IoLock
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core

KEY_INPUT_PREFIX = "sarkey_"


def lock_with_sarlock(
    netlist: Netlist,
    key_bits: int,
    rng: random.Random,
    protected_output: str | None = None,
) -> IoLock:
    """Apply the point-function lock to ``netlist``'s combinational core.

    ``key_bits`` comparator taps are taken from the core's first inputs
    (primary inputs first, then pseudo-primary state inputs); the
    protected output defaults to the core's first output.  Requires at
    least 2 key bits (the comparator is an AND tree) and no more than
    the core has inputs.
    """
    core, _, _ = extract_combinational_core(netlist)
    if key_bits < 2:
        raise ValueError("SARLock needs at least 2 key bits")
    if key_bits > len(core.inputs):
        raise ValueError(
            f"cannot tap {key_bits} comparator inputs from "
            f"{len(core.inputs)} core inputs"
        )
    secret_key = tuple(rng.randrange(2) for _ in range(key_bits))
    x_taps = list(core.inputs[:key_bits])
    target = protected_output if protected_output is not None else core.outputs[0]
    if target not in core.outputs:
        raise ValueError(f"{target!r} is not an output of the core")
    if target not in core.gates:
        raise ValueError(f"protected output {target!r} has no gate driver")

    locked = Netlist(name=f"{netlist.name}_sarlock")
    for net in core.inputs:
        locked.add_input(net)
    key_inputs = [f"{KEY_INPUT_PREFIX}{i}" for i in range(key_bits)]
    for net in key_inputs:
        locked.add_input(net)

    pre_net = "sar_protected__pre"
    for gate in core.gates.values():
        if gate.output == target:
            locked.add_gate(pre_net, gate.gtype, gate.inputs)
        else:
            locked.add_gate(gate.output, gate.gtype, gate.inputs)

    # match_x = AND_i XNOR(x_i, k_i): the applied input equals the key.
    cmp_nets = []
    for i, (x_net, k_net) in enumerate(zip(x_taps, key_inputs)):
        cmp_net = f"sar_cmpx_{i}"
        locked.add_gate(cmp_net, GateType.XNOR, [x_net, k_net])
        cmp_nets.append(cmp_net)
    locked.add_gate("sar_match_x", GateType.AND, cmp_nets)

    # key_ok = AND over per-bit agreement with the secret (constants
    # folded into the gate choice, as in RLL's XOR/XNOR selection).
    ok_nets = []
    for i, secret_bit in enumerate(secret_key):
        if secret_bit:
            ok_nets.append(key_inputs[i])
        else:
            inv_net = f"sar_keyinv_{i}"
            locked.add_gate(inv_net, GateType.NOT, [key_inputs[i]])
            ok_nets.append(inv_net)
    locked.add_gate("sar_key_ok", GateType.AND, ok_nets)
    locked.add_gate("sar_key_wrong", GateType.NOT, ["sar_key_ok"])

    locked.add_gate("sar_flip", GateType.AND, ["sar_match_x", "sar_key_wrong"])
    locked.add_gate(target, GateType.XOR, [pre_net, "sar_flip"])

    for net in core.outputs:
        locked.add_output(net)
    return IoLock(
        locked=locked,
        original=core,
        key_inputs=key_inputs,
        secret_key=secret_key,
    )
