"""Combinational locks attacked through a plain input/output oracle.

The classic SAT-attack setting: the attacker holds the locked netlist
(with key inputs) plus an activated chip whose scan chains are *not*
protected, so the whole combinational core is controllable and
observable -- an input/output oracle.  This module provides that
setting over the repo's sequential benchmarks: the netlist's flops are
cut into pseudo-primary I/O (full-scan transformation) and the lock is
applied to the resulting core.

Two locks build on it: :func:`lock_core_with_rll` (the random XOR/XNOR
baseline the original SAT attack was formulated against -- Table I's
implicit first row) and the SARLock-style point function in
:mod:`repro.locking.sarlock`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.rll import lock_combinational_rll
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core
from repro.sim.logicsim import CombinationalSimulator


@dataclass(frozen=True)
class IoPublicView:
    """Reverse-engineerable facts: the key input names of the locked core."""

    key_inputs: tuple[str, ...]
    key_bits: int


class IoOracle:
    """The activated chip: answers input -> output queries on the true core.

    ``query`` takes the non-key input bits in the core's canonical input
    order and returns all output bits; ``query_count`` mirrors the scan
    oracles' accounting so matrix cells can report query budgets.
    """

    def __init__(self, core: Netlist):
        self._sim = CombinationalSimulator(core)
        self.inputs = list(core.inputs)
        self.outputs = list(core.outputs)
        self.query_count = 0

    def query(self, x_bits: Sequence[int]) -> list[int]:
        if len(x_bits) != len(self.inputs):
            raise ValueError(
                f"expected {len(self.inputs)} input bits, got {len(x_bits)}"
            )
        self.query_count += 1
        values = self._sim.run(dict(zip(self.inputs, x_bits)))
        return [values[net] for net in self.outputs]


@dataclass
class IoLock:
    """A locked combinational core plus the unlocked original it hides.

    ``locked`` carries the key inputs; ``original`` is the oracle's
    function (the full-scan core of the benchmark netlist).  The
    interface mirrors the scan locks: ``public_view()`` for the
    attacker's static knowledge, ``make_oracle()`` for the chip.
    """

    locked: Netlist
    original: Netlist
    key_inputs: list[str]
    secret_key: tuple[int, ...]

    @property
    def key_bits(self) -> int:
        return len(self.secret_key)

    @property
    def netlist(self) -> Netlist:
        return self.locked

    def public_view(self) -> IoPublicView:
        return IoPublicView(
            key_inputs=tuple(self.key_inputs), key_bits=len(self.secret_key)
        )

    def make_oracle(self) -> IoOracle:
        return IoOracle(self.original)


def lock_core_with_rll(
    netlist: Netlist, key_bits: int, rng: random.Random
) -> IoLock:
    """RLL-lock the full-scan combinational core of a sequential netlist."""
    core, _, _ = extract_combinational_core(netlist)
    rll = lock_combinational_rll(core, key_bits, rng)
    return IoLock(
        locked=rll.locked,
        original=core,
        key_inputs=rll.key_inputs,
        secret_key=rll.secret_key,
    )
