"""Key-gate placement policies.

The paper inserts key gates "between the scan flops" without prescribing a
placement; the experiments lock with as many key gates as key bits (e.g.
128 gates for a 128-bit key).  Placement is randomised per design from a
deterministic stream so experiments are reproducible.
"""

from __future__ import annotations

import random

from repro.scan.chain import ScanChainSpec


def place_keygates(
    n_flops: int,
    n_keygates: int,
    rng: random.Random,
    policy: str = "random",
) -> ScanChainSpec:
    """Choose key-gate positions along a chain of ``n_flops`` flops.

    ``policy`` is ``"random"`` (uniform without replacement) or
    ``"spread"`` (evenly spaced, deterministic).  Valid positions are
    ``0 .. n_flops - 2`` (between consecutive flops).
    """
    n_slots = n_flops - 1
    if n_keygates > n_slots:
        raise ValueError(
            f"cannot place {n_keygates} key gates in {n_slots} slots "
            f"(chain of {n_flops} flops)"
        )
    if policy == "random":
        positions = sorted(rng.sample(range(n_slots), n_keygates))
    elif policy == "spread":
        if n_keygates == 0:
            positions = []
        else:
            step = n_slots / n_keygates
            positions = sorted({int(i * step) for i in range(n_keygates)})
            # Collisions from rounding: fill greedily from unused slots.
            unused = [p for p in range(n_slots) if p not in set(positions)]
            while len(positions) < n_keygates:
                positions.append(unused.pop(0))
            positions = sorted(positions)
    else:
        raise ValueError(f"unknown placement policy {policy!r}")
    return ScanChainSpec(n_flops=n_flops, keygate_positions=tuple(positions))
