"""EFF-Dyn: dynamically keyed scan obfuscation (the case-study defense).

XOR key gates sit between scan flops; with an unauthenticated test key the
gates are driven by an LFSR that produces a fresh key every clock cycle.
The LFSR seed is the root secret -- recovering it gives full scan access,
which is exactly what DynUnlock targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.locking.keygates import place_keygates
from repro.locking.tpm import TamperProofMemory, AuthenticationScheme
from repro.netlist.netlist import Netlist
from repro.prng.lfsr import FibonacciLfsr, Keystream
from repro.prng.polynomials import default_taps
from repro.scan.chain import ScanChainSpec
from repro.scan.oracle import ScanOracle
from repro.util.bitvec import random_bits


@dataclass(frozen=True)
class EffDynPublicView:
    """What reverse engineering reveals (the attack's only static input).

    Everything structural -- chain geometry, key-gate locations, LFSR
    polynomial -- is public under the threat model; the seed is not.
    """

    spec: ScanChainSpec
    lfsr_width: int
    lfsr_taps: tuple[int, ...]
    n_captures: int = 1


@dataclass
class EffDynLock:
    """A circuit locked with EFF-Dyn, holding the secrets.

    ``seed`` is the PRNG secret; ``secret_key`` is the scan-locking key
    stored in the TPM (used only by the authentication path).
    """

    netlist: Netlist
    spec: ScanChainSpec
    lfsr_taps: tuple[int, ...]
    seed: tuple[int, ...]
    secret_key: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.seed) != self.spec.n_keygates:
            raise ValueError(
                "EFF-Dyn couples LFSR width to key-gate count: "
                f"seed has {len(self.seed)} bits, {self.spec.n_keygates} gates"
            )

    @property
    def key_bits(self) -> int:
        return len(self.seed)

    def public_view(self) -> EffDynPublicView:
        return EffDynPublicView(
            spec=self.spec,
            lfsr_width=len(self.seed),
            lfsr_taps=self.lfsr_taps,
        )

    def keystream(self) -> Keystream:
        return Keystream(
            FibonacciLfsr(
                width=len(self.seed), seed_bits=list(self.seed), taps=self.lfsr_taps
            )
        )

    def authentication(self) -> AuthenticationScheme:
        return AuthenticationScheme(TamperProofMemory.with_key(self.secret_key))

    def make_oracle(self, test_key: Sequence[int] | None = None) -> ScanOracle:
        """The chip as the attacker sees it.

        When ``test_key`` matches the secret key the returned oracle is
        transparent (authenticated tester); any mismatching value leaves
        the PRNG in control, per Fig. 2.  The default (None) models the
        attacker, who by assumption does not know the secret key, without
        gambling on a specific guess.
        """
        auth = self.authentication()
        if test_key is None:
            authenticated = False
        else:
            authenticated = auth.authenticate(list(test_key))
        return ScanOracle(
            netlist=self.netlist,
            spec=self.spec,
            keystream=self.keystream(),
            obfuscation_enabled=not authenticated,
        )


def lock_with_effdyn(
    netlist: Netlist,
    key_bits: int,
    rng: random.Random,
    taps: Sequence[int] | None = None,
    placement: str = "random",
    seed: Sequence[int] | None = None,
) -> EffDynLock:
    """Lock a sequential netlist with EFF-Dyn.

    ``key_bits`` sets both the number of key gates and the LFSR width, as
    in the paper's experiments (128 up to 368 bits).  The LFSR seed is
    drawn from ``rng`` unless given explicitly; an all-zero draw is
    rerolled because a zero LFSR state would make the keystream constant.
    """
    spec = place_keygates(netlist.n_dffs, key_bits, rng, policy=placement)
    chosen_taps = tuple(taps) if taps is not None else default_taps(key_bits)
    if seed is None:
        seed_bits = random_bits(key_bits, rng)
        while not any(seed_bits):
            seed_bits = random_bits(key_bits, rng)
    else:
        seed_bits = [int(b) for b in seed]
        if len(seed_bits) != key_bits:
            raise ValueError("explicit seed width must equal key_bits")
        if not any(seed_bits):
            raise ValueError("the all-zero seed is degenerate for an LFSR")
    secret_key = random_bits(key_bits, rng)
    return EffDynLock(
        netlist=netlist,
        spec=spec,
        lfsr_taps=chosen_taps,
        seed=tuple(seed_bits),
        secret_key=tuple(secret_key),
    )
