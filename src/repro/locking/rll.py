"""Random XOR/XNOR logic locking (RLL).

The classic combinational locking scheme the original SAT attack was
demonstrated on: key gates spliced onto random internal nets, XOR for a
secret key bit of 0 and XNOR for 1, so the circuit computes its original
function exactly when the correct key is applied.

In this repo RLL serves two roles: the baseline workload for our
reimplementation of the SAT attack, and the payload lock of the DFS
defense model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

KEY_INPUT_PREFIX = "keyin_"


@dataclass
class RllLock:
    """A netlist locked with random XOR/XNOR key gates."""

    locked: Netlist
    original: Netlist
    key_inputs: list[str]
    secret_key: tuple[int, ...]

    @property
    def key_bits(self) -> int:
        return len(self.secret_key)


def lock_combinational_rll(
    netlist: Netlist,
    key_bits: int,
    rng: random.Random,
    key_prefix: str = KEY_INPUT_PREFIX,
) -> RllLock:
    """Insert ``key_bits`` XOR/XNOR key gates on random gate outputs.

    Works on sequential netlists too (locking the combinational logic);
    candidate sites are gate outputs, never primary inputs or flop Q nets,
    so consumers can be left untouched: the original driver is renamed to
    ``<net>__pre`` and the key gate re-drives the original net name.
    """
    candidates = sorted(netlist.gates.keys())
    if key_bits > len(candidates):
        raise ValueError(
            f"cannot insert {key_bits} key gates into {len(candidates)} gates"
        )
    sites = sorted(rng.sample(candidates, key_bits))
    secret_key = tuple(rng.randrange(2) for _ in range(key_bits))
    site_to_index = {net: i for i, net in enumerate(sites)}

    locked = Netlist(name=f"{netlist.name}_rll")
    for net in netlist.inputs:
        locked.add_input(net)
    key_inputs = [f"{key_prefix}{i}" for i in range(key_bits)]
    for net in key_inputs:
        locked.add_input(net)
    for dff in netlist.dffs.values():
        locked.add_dff(q=dff.q, d=dff.d)
    for gate in netlist.gates.values():
        index = site_to_index.get(gate.output)
        if index is None:
            locked.add_gate(gate.output, gate.gtype, gate.inputs)
        else:
            pre_net = f"{gate.output}__pre"
            locked.add_gate(pre_net, gate.gtype, gate.inputs)
            gtype = GateType.XNOR if secret_key[index] else GateType.XOR
            locked.add_gate(gate.output, gtype, [pre_net, key_inputs[index]])
    for net in netlist.outputs:
        locked.add_output(net)
    return RllLock(
        locked=locked,
        original=netlist,
        key_inputs=key_inputs,
        secret_key=secret_key,
    )
