"""DynUnlock reproduction: unlocking dynamically obfuscated scan chains.

Reference: N. Limaye and O. Sinanoglu, "DynUnlock: Unlocking Scan Chains
Obfuscated using Dynamic Keys", DATE 2020.

Quickstart::

    import random
    from repro import (
        s27_netlist, lock_with_effdyn, DynUnlock, DynUnlockConfig
    )

    netlist = s27_netlist()
    lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(7))
    result = DynUnlock(netlist, lock.public_view(), lock.make_oracle()).run()
    assert result.success

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.bench_suite import (
    build_benchmark_netlist,
    get_benchmark,
    s27_netlist,
    s208_like_netlist,
)
from repro.core import (
    DynUnlock,
    DynUnlockConfig,
    DynUnlockResult,
    build_combinational_model,
)
from repro.locking import (
    lock_with_dfs,
    lock_with_dos,
    lock_with_eff,
    lock_with_effdyn,
)
from repro.netlist import Netlist, load_bench_file, parse_bench, write_bench

__version__ = "1.0.0"

__all__ = [
    "build_benchmark_netlist",
    "get_benchmark",
    "s27_netlist",
    "s208_like_netlist",
    "DynUnlock",
    "DynUnlockConfig",
    "DynUnlockResult",
    "build_combinational_model",
    "lock_with_dfs",
    "lock_with_dos",
    "lock_with_eff",
    "lock_with_effdyn",
    "Netlist",
    "load_bench_file",
    "parse_bench",
    "write_bench",
    "__version__",
]
