"""Declarative experiment config profiles (TOML/JSON).

A config file is a small table of dotted keys -- ``profile``,
``opt_level``, plus the ``[cache]``, ``[filters]``, ``[fuzz]``,
``[farm]`` and ``[grid]`` sections -- that captures everything a large
campaign needs to be reproducible as one reviewable artifact: seeds,
trial counts, concurrency, time budgets, cache backend, optimization
level, and attack/defense/benchmark filters.

Three layers, strictly ordered::

    explicit CLI flag  >  config file value  >  built-in default

``dynunlock fuzz/farm/matrix/table*/run --config FILE`` resolves every
covered flag through that chain; flag-vs-file conflicts are reported as
dotted paths (``fuzz.trials``) and the resolved config -- file path,
values, overrides -- is stamped into artifact provenance.

Validation is schema-driven and collects *every* problem, each tagged
with its precise dotted path (``farm.round_trials: must be >= 1``).
``dynunlock config check --strict`` additionally rejects unknown keys,
so a typo'd ``[fuzz] trails = 500`` cannot silently run the default.

TOML parsing uses :mod:`tomllib` where available (Python >= 3.11) and
falls back to a minimal single-line-value subset parser on 3.10 -- the
schema is flat enough that the subset covers every valid config.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "ConfigError",
    "ConfigIssue",
    "ResolvedConfig",
    "SCHEMA",
    "check_config",
    "load_config_file",
    "load_and_check",
    "apply_config",
    "parse_duration",
]

MAX_SEED = 2**63 - 1
MAX_CONCURRENCY = 256


@dataclass(frozen=True)
class ConfigIssue:
    """One validation problem, tagged with its dotted key path."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


class ConfigError(ValueError):
    """Raised when a config file cannot be loaded or fails validation."""

    def __init__(self, source: str, issues: list[ConfigIssue]):
        self.source = source
        self.issues = issues
        lines = "\n".join(f"  {issue}" for issue in issues)
        super().__init__(f"invalid config {source}:\n{lines}")


@dataclass(frozen=True)
class Field:
    """Schema row: expected type, optional policy check, doc string."""

    kind: str  # "int" | "float" | "str" | "bool" | "str_list"
    help: str
    check: Callable[[Any], str | None] | None = None


def _int_range(lo: int, hi: int) -> Callable[[Any], str | None]:
    def check(value: Any) -> str | None:
        if not (lo <= value <= hi):
            return f"must be between {lo} and {hi}, got {value}"
        return None

    return check


def _positive(value: Any) -> str | None:
    if value <= 0:
        return f"must be > 0, got {value}"
    return None


def _known_profile(value: Any) -> str | None:
    from repro.reports.profiles import PROFILES

    if value not in PROFILES:
        return f"unknown profile {value!r}; known: {', '.join(sorted(PROFILES))}"
    return None


def _known_backend(value: Any) -> str | None:
    from repro.runner.stores import BACKENDS

    if value not in BACKENDS:
        return f"unknown backend {value!r}; known: {', '.join(sorted(BACKENDS))}"
    return None


def _known_attacks(value: Any) -> str | None:
    from repro.matrix.registry import attack_names

    unknown = [name for name in value if name not in attack_names()]
    if unknown:
        return (
            f"unknown attack(s) {', '.join(unknown)}; "
            f"known: {', '.join(attack_names())}"
        )
    return None


def _known_defenses(value: Any) -> str | None:
    from repro.matrix.registry import defense_names

    unknown = [name for name in value if name not in defense_names()]
    if unknown:
        return (
            f"unknown defense(s) {', '.join(unknown)}; "
            f"known: {', '.join(defense_names())}"
        )
    return None


def _known_benchmarks(value: Any) -> str | None:
    from repro.bench_suite.registry import PAPER_BENCHMARKS

    unknown = [name for name in value if name not in PAPER_BENCHMARKS]
    if unknown:
        return (
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"known: {', '.join(PAPER_BENCHMARKS)}"
        )
    return None


#: Every key a config file may set, by dotted path.  Policy checks are
#: closures with lazy imports so loading this module stays cheap.
SCHEMA: dict[str, Field] = {
    "profile": Field("str", "experiment size profile", _known_profile),
    "opt_level": Field(
        "int", "netlist-optimization level", _int_range(0, 2)
    ),
    "cache.backend": Field("str", "result-store backend", _known_backend),
    "cache.dir": Field("str", "result-store location"),
    "cache.resume": Field("bool", "reuse cached cells"),
    "filters.attacks": Field(
        "str_list", "restrict to these attacks", _known_attacks
    ),
    "filters.defenses": Field(
        "str_list", "restrict to these defenses", _known_defenses
    ),
    "filters.benchmarks": Field(
        "str_list", "restrict to these benchmarks", _known_benchmarks
    ),
    "fuzz.trials": Field(
        "int", "trials per campaign", _int_range(1, 1_000_000)
    ),
    "fuzz.seed": Field("int", "campaign seed", _int_range(0, MAX_SEED)),
    "fuzz.concurrency": Field(
        "int", "worker processes (0 = per core)",
        _int_range(0, MAX_CONCURRENCY),
    ),
    "fuzz.time_budget_s": Field(
        "float", "stop dispatching after this many seconds", _positive
    ),
    "fuzz.corpus": Field("str", "crash-corpus directory"),
    "fuzz.shrink_limit": Field(
        "int", "minimize at most N violations", _int_range(0, 10_000)
    ),
    "farm.seed": Field("int", "farm seed", _int_range(0, MAX_SEED)),
    "farm.concurrency": Field(
        "int", "worker processes (0 = per core)",
        _int_range(0, MAX_CONCURRENCY),
    ),
    "farm.round_trials": Field(
        "int", "trials per farm round", _int_range(1, 10_000)
    ),
    "farm.max_rounds": Field(
        "int", "stop after N rounds (0 = unbounded)",
        _int_range(0, 1_000_000),
    ),
    "farm.budget_s": Field(
        "float", "wall-clock budget per invocation", _positive
    ),
    "farm.state_dir": Field("str", "farm state/corpus directory"),
    "farm.bias": Field(
        "float", "scheduler hot-cell bias weight", _int_range(0, 1000)
    ),
    "farm.stability_every": Field(
        "int", "stability probe period (0 = off)", _int_range(0, 10_000)
    ),
    "farm.shrink_limit": Field(
        "int", "minimize at most N violations per round",
        _int_range(0, 10_000),
    ),
    "grid.concurrency": Field(
        "int", "worker processes (0 = per core)",
        _int_range(0, MAX_CONCURRENCY),
    ),
}

_SECTIONS = sorted({path.split(".")[0] for path in SCHEMA if "." in path})
_TOP_KEYS = sorted(path for path in SCHEMA if "." not in path)


def _type_issue(path: str, kind: str, value: Any) -> ConfigIssue | None:
    """Type-check one value; bool is checked before int on purpose
    (``isinstance(True, int)`` holds in Python)."""
    got = type(value).__name__
    if kind == "bool":
        if not isinstance(value, bool):
            return ConfigIssue(path, f"expected a boolean, got {got}")
    elif kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            return ConfigIssue(path, f"expected an integer, got {got}")
    elif kind == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return ConfigIssue(path, f"expected a number, got {got}")
    elif kind == "str":
        if not isinstance(value, str):
            return ConfigIssue(path, f"expected a string, got {got}")
    elif kind == "str_list":
        if not isinstance(value, list) or any(
            not isinstance(item, str) for item in value
        ):
            return ConfigIssue(path, f"expected a list of strings, got {got}")
    return None


def check_config(
    data: Any, *, strict: bool = True
) -> tuple[dict[str, Any], list[ConfigIssue]]:
    """Validate a parsed config; returns (flat dotted values, issues).

    Collects *every* issue rather than stopping at the first, so one
    ``config check`` run reports the whole repair list.  ``strict``
    additionally rejects unknown keys/sections; non-strict ignores them
    (but still type- and policy-checks the known ones).
    """
    issues: list[ConfigIssue] = []
    values: dict[str, Any] = {}
    if not isinstance(data, dict):
        return values, [
            ConfigIssue("<root>", "config must be a table/object")
        ]

    def visit(path: str, value: Any) -> None:
        spec = SCHEMA.get(path)
        if spec is None:
            if strict:
                issues.append(
                    ConfigIssue(
                        path,
                        "unknown key (known sections: "
                        f"{', '.join(_SECTIONS)}; top-level: "
                        f"{', '.join(_TOP_KEYS)})",
                    )
                )
            return
        issue = _type_issue(path, spec.kind, value)
        if issue is not None:
            issues.append(issue)
            return
        if spec.check is not None:
            message = spec.check(value)
            if message is not None:
                issues.append(ConfigIssue(path, message))
                return
        values[path] = float(value) if spec.kind == "float" else value

    for key, value in data.items():
        if isinstance(value, dict):
            if key not in _SECTIONS:
                if strict:
                    issues.append(
                        ConfigIssue(
                            key,
                            f"unknown section (known: {', '.join(_SECTIONS)})",
                        )
                    )
                continue
            for sub_key, sub_value in value.items():
                if isinstance(sub_value, dict):
                    issues.append(
                        ConfigIssue(
                            f"{key}.{sub_key}",
                            "nested tables are not allowed here",
                        )
                    )
                    continue
                visit(f"{key}.{sub_key}", sub_value)
        elif key in _SECTIONS:
            issues.append(
                ConfigIssue(key, f"expected a [{key}] table, got a value")
            )
        else:
            visit(key, value)
    return values, issues


# --------------------------------------------------------------------------
# File loading: tomllib where available, a minimal TOML subset otherwise.


def _parse_toml_value(text: str, where: str) -> Any:
    text = text.strip()
    if not text:
        raise ValueError(f"{where}: missing value")
    if text[0] in "\"'":
        quote = text[0]
        end = text.find(quote, 1)
        if end < 0:
            raise ValueError(f"{where}: unterminated string")
        rest = text[end + 1 :].strip()
        if rest and not rest.startswith("#"):
            raise ValueError(f"{where}: trailing junk after string")
        return text[1:end]
    # Non-string values may carry a trailing comment.
    text = text.split("#", 1)[0].strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise ValueError(f"{where}: unterminated array")
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = []
        depth = 0
        current = ""
        in_str: str | None = None
        for char in inner:
            if in_str:
                if char == in_str:
                    in_str = None
                current += char
            elif char in "\"'":
                in_str = char
                current += char
            elif char == "[":
                depth += 1
                current += char
            elif char == "]":
                depth -= 1
                current += char
            elif char == "," and depth == 0:
                items.append(current)
                current = ""
            else:
                current += char
        if current.strip():
            items.append(current)
        return [_parse_toml_value(item, where) for item in items]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"{where}: cannot parse value {text!r}")


def _parse_toml_minimal(text: str) -> dict[str, Any]:
    """Parse the TOML subset the config schema needs (3.10 fallback).

    Sections, ``key = value`` with strings/ints/floats/bools and
    single-line flat arrays, full-line and trailing comments.  Anything
    fancier (multi-line values, dotted keys, inline tables) is rejected
    loudly rather than mis-parsed.
    """
    data: dict[str, Any] = {}
    table = data
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"line {lineno}"
        if line.startswith("["):
            if not line.split("#", 1)[0].strip().endswith("]"):
                raise ValueError(f"{where}: malformed section header")
            name = line.split("#", 1)[0].strip()[1:-1].strip()
            if not name or "." in name or '"' in name:
                raise ValueError(f"{where}: unsupported section {name!r}")
            table = data.setdefault(name, {})
            if not isinstance(table, dict):
                raise ValueError(f"{where}: section {name!r} clashes with a key")
            continue
        key, sep, value = line.partition("=")
        key = key.strip()
        if not sep or not key or "." in key or '"' in key:
            raise ValueError(f"{where}: expected 'key = value'")
        table[key] = _parse_toml_value(value, where)
    return data


def _loads_toml(text: str) -> dict[str, Any]:
    try:
        import tomllib
    except ImportError:  # Python 3.10: use the subset parser
        return _parse_toml_minimal(text)
    return tomllib.loads(text)


def load_config_file(path: str | Path) -> dict[str, Any]:
    """Read and parse a ``.toml``/``.json`` config file (no validation)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(str(path), [ConfigIssue("<file>", str(exc))])
    suffix = path.suffix.lower()
    try:
        if suffix == ".json":
            data = json.loads(text)
        elif suffix == ".toml":
            data = _loads_toml(text)
        else:
            raise ValueError(
                f"unsupported config format {suffix or path.name!r} "
                "(use .toml or .json)"
            )
    except ValueError as exc:
        raise ConfigError(str(path), [ConfigIssue("<parse>", str(exc))])
    if not isinstance(data, dict):
        raise ConfigError(
            str(path), [ConfigIssue("<root>", "config must be a table/object")]
        )
    return data


@dataclass
class ResolvedConfig:
    """A validated config file, flattened to dotted-path values."""

    path: str
    values: dict[str, Any] = field(default_factory=dict)
    overrides: list[str] = field(default_factory=list)

    def provenance(self) -> dict[str, Any]:
        """The JSON block stamped into artifact meta."""
        return {
            "path": self.path,
            "values": {key: self.values[key] for key in sorted(self.values)},
            "overrides": list(self.overrides),
        }


def load_and_check(path: str | Path, *, strict: bool = True) -> ResolvedConfig:
    """Load + validate one file; raises :class:`ConfigError` on issues."""
    data = load_config_file(path)
    values, issues = check_config(data, strict=strict)
    if issues:
        raise ConfigError(str(path), issues)
    return ResolvedConfig(path=str(path), values=values)


# --------------------------------------------------------------------------
# CLI resolution: explicit flag > config value > built-in default.

#: Per-command (argparse attr, dotted config path, built-in default).
#: Attrs without a CLI flag (e.g. farm.bias) still resolve -- argparse
#: simply never sets them, so the config/default chain decides.
_COMMON = [
    ("profile", "profile", None),
    ("opt_level", "opt_level", None),
    ("resume", "cache.resume", True),
    ("cache_dir", "cache.dir", None),
    ("cache_backend", "cache.backend", None),
]

COMMAND_MAPS: dict[str, list[tuple[str, str, Any]]] = {
    "fuzz": _COMMON
    + [
        ("jobs", "fuzz.concurrency", 1),
        ("trials", "fuzz.trials", 100),
        ("seed", "fuzz.seed", 0),
        ("time_budget", "fuzz.time_budget_s", None),
        ("corpus", "fuzz.corpus", None),
        ("shrink_limit", "fuzz.shrink_limit", 8),
    ],
    "farm": _COMMON
    + [
        ("jobs", "farm.concurrency", 1),
        ("seed", "farm.seed", 0),
        ("round_trials", "farm.round_trials", 24),
        ("max_rounds", "farm.max_rounds", 0),
        ("budget", "farm.budget_s", None),
        ("state", "farm.state_dir", ".repro_farm"),
        ("bias", "farm.bias", 4.0),
        ("stability_every", "farm.stability_every", 8),
        ("shrink_limit", "farm.shrink_limit", 8),
        ("attacks", "filters.attacks", []),
        ("defenses", "filters.defenses", []),
    ],
    "matrix": _COMMON
    + [
        ("jobs", "grid.concurrency", 1),
        ("attacks", "filters.attacks", []),
        ("defenses", "filters.defenses", []),
        ("benchmarks", "filters.benchmarks", []),
    ],
    "grid": _COMMON
    + [
        ("jobs", "grid.concurrency", 1),
        ("benchmarks", "filters.benchmarks", []),
    ],
}


def apply_config(
    args,
    command: str,
    *,
    warn: Callable[[str], None] | None = None,
) -> dict[str, Any] | None:
    """Resolve every config-covered flag on ``args`` in place.

    ``args.config`` (the ``--config`` flag) names the file; without it
    only built-in defaults are applied (covered flags use ``None`` /
    ``[]`` argparse defaults so explicit-vs-absent stays detectable).
    Returns the provenance block to stamp into artifacts, or ``None``
    when no config file was given.  Flag-vs-file conflicts are recorded
    by dotted path and reported through ``warn``.
    """
    say = warn if warn is not None else (lambda _msg: None)
    resolved: ResolvedConfig | None = None
    config_path = getattr(args, "config", None)
    if config_path:
        # Non-strict here: running with a forward-compatible file is
        # fine; `config check --strict` is the gate for unknown keys.
        resolved = load_and_check(config_path, strict=False)
    for attr, path, default in COMMAND_MAPS[command]:
        cli = getattr(args, attr, None)
        explicit = bool(cli) if isinstance(cli, list) else cli is not None
        from_file = resolved.values.get(path) if resolved is not None else None
        has_file = resolved is not None and path in resolved.values
        if explicit:
            if has_file and from_file != cli:
                resolved.overrides.append(path)
                say(
                    f"config {path}={from_file!r} overridden by "
                    f"command line ({cli!r})"
                )
            continue
        setattr(args, attr, from_file if has_file else default)
    if resolved is None:
        return None
    resolved.overrides.sort()
    return resolved.provenance()


def parse_duration(text: str) -> float:
    """Parse ``90``, ``90s``, ``10m``, ``1h30m`` etc. into seconds."""
    cleaned = str(text).strip().lower()
    try:
        return float(cleaned)
    except ValueError:
        pass
    units = {"h": 3600.0, "m": 60.0, "s": 1.0}
    total = 0.0
    number = ""
    matched = False
    for char in cleaned:
        if char.isdigit() or char == ".":
            number += char
        elif char in units and number:
            total += float(number) * units[char]
            number = ""
            matched = True
        else:
            raise ValueError(f"not a duration: {text!r}")
    if number or not matched:
        raise ValueError(f"not a duration: {text!r}")
    return total
