"""The attacker's oracle: a working chip with dynamically locked scan.

Implements the exact query protocol assumed by the paper's threat model:
the attacker supplies an (incorrect) test key, so the PRNG drives the key
gates during every shift; each query is preceded by a power-on reset so
the PRNG restarts from its secret seed; the capture edge also advances the
PRNG but the key gates only sit on the scan path, so capture itself is
clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.netlist.netlist import Netlist, NetlistError
from repro.scan.chain import ScanChainSpec, shift_in, shift_out, xor_int
from repro.sim.seqsim import SequentialSimulator


class KeystreamLike(Protocol):
    """Anything producing per-cycle dynamic keys (LFSR, nonlinear PRNG)."""

    width: int

    def next_key(self) -> list[int]: ...

    def restart(self) -> None: ...


@dataclass
class ScanResponse:
    """Result of one scan query."""

    scan_out: list[int]
    primary_outputs: list[int]


class ScanOracle:
    """Protocol-level simulation of the locked chip.

    ``netlist`` is the *unlocked* functional netlist; the obfuscation is
    applied by the scan protocol layer, which is behaviourally identical
    to inserting physical XOR key gates in the scan path (the structural
    emitter in :mod:`repro.scan.structural` is cross-checked against this
    in the test suite).
    """

    def __init__(
        self,
        netlist: Netlist,
        spec: ScanChainSpec,
        keystream: KeystreamLike,
        obfuscation_enabled: bool = True,
    ):
        if spec.n_flops != netlist.n_dffs:
            raise NetlistError(
                f"chain length {spec.n_flops} != flop count {netlist.n_dffs}"
            )
        if keystream.width < spec.n_keygates:
            raise ValueError(
                "keystream width smaller than the number of key gates"
            )
        self.netlist = netlist
        self.spec = spec
        self.keystream = keystream
        self.obfuscation_enabled = obfuscation_enabled
        self._sim = SequentialSimulator(netlist)
        self.query_count = 0
        self.shift_cycles = 0

    # ------------------------------------------------------------------
    @property
    def n_flops(self) -> int:
        return self.spec.n_flops

    @property
    def n_primary_inputs(self) -> int:
        return len(self.netlist.inputs)

    def _input_map(self, primary_inputs: Sequence[int] | None) -> dict[str, int]:
        nets = self.netlist.inputs
        if primary_inputs is None:
            return {net: 0 for net in nets}
        if len(primary_inputs) != len(nets):
            raise ValueError(
                f"expected {len(nets)} primary input bits, got {len(primary_inputs)}"
            )
        return dict(zip(nets, primary_inputs))

    def _zero_key(self) -> list[int]:
        return [0] * max(1, self.keystream.width)

    # ------------------------------------------------------------------
    def query(
        self,
        scan_in: Sequence[int],
        primary_inputs: Sequence[int] | None = None,
        n_captures: int = 1,
    ) -> ScanResponse:
        """One full test operation: reset, load, capture(s), unload.

        ``scan_in[l]`` is the pattern bit aimed at chain position ``l``;
        the returned ``scan_out[l]`` is what the tester observes for the
        response bit captured in position ``l`` (both corrupted by the
        dynamic obfuscation when enabled).  ``n_captures`` functional
        edges are applied back-to-back with the same primary inputs (the
        multi-capture protocol DynUnlock's restart refinement uses);
        primary outputs are sampled before the last capture edge.
        """
        n = self.spec.n_flops
        if len(scan_in) != n:
            raise ValueError(f"scan_in must have {n} bits, got {len(scan_in)}")
        if n_captures < 1:
            raise ValueError("at least one capture edge is required")
        self.query_count += 1
        self.shift_cycles += 2 * n + n_captures - 1

        # Power-on reset: PRNG reloads the secret seed, flops go to 0.
        self.keystream.restart()
        self._sim.reset(0)

        if self.obfuscation_enabled:
            load_keys = [self.keystream.next_key() for _ in range(n)]
        else:
            load_keys = [self._zero_key() for _ in range(n)]
            for _ in range(n):
                self.keystream.next_key()
        applied = shift_in(
            self.spec, [0] * n, list(scan_in), load_keys, xor_int
        )

        # Capture edges: functional clocks; PRNG advances, scan path idle.
        self._sim.set_state_vector(applied)
        inputs = self._input_map(primary_inputs)
        primary_outputs: list[int] = []
        for _ in range(n_captures):
            self.keystream.next_key()
            pre_edge_values = self._sim.step(inputs)
            primary_outputs = [
                pre_edge_values[net] for net in self.netlist.outputs
            ]
        captured = self._sim.get_state_vector()

        if self.obfuscation_enabled:
            unload_keys = [self.keystream.next_key() for _ in range(n - 1)]
        else:
            unload_keys = [self._zero_key() for _ in range(n - 1)]
        observed = shift_out(self.spec, captured, unload_keys, xor_int, fill_bit=0)
        return ScanResponse(scan_out=observed, primary_outputs=primary_outputs)

    # ------------------------------------------------------------------
    def unlocked_query(
        self,
        scan_in: Sequence[int],
        primary_inputs: Sequence[int] | None = None,
        n_captures: int = 1,
    ) -> ScanResponse:
        """Ground-truth query with obfuscation bypassed.

        This is what a trusted tester holding the secret key would see;
        used by tests and by the post-attack verification step ("does the
        recovered seed descramble real responses correctly").
        """
        previous = self.obfuscation_enabled
        self.obfuscation_enabled = False
        try:
            return self.query(scan_in, primary_inputs, n_captures=n_captures)
        finally:
            self.obfuscation_enabled = previous
