"""Scan-chain substrate.

Models the design-for-test machinery the paper's defenses live in: a
single scan chain stitched through all flip-flops, a shift/capture test
protocol, and the *oracle* — the attacker's view of a working chip whose
scan path is obfuscated by key gates driven by a dynamic PRNG.

The shift semantics are implemented exactly once
(:mod:`repro.scan.chain`), generically over the bit type, and reused by:

* the concrete protocol oracle (:mod:`repro.scan.oracle`),
* the symbolic overlay derivation used by DynUnlock's combinational
  modeling (:mod:`repro.core.modeling`),
* the structural netlist emitter (:mod:`repro.scan.structural`) used for
  figure reproduction and cross-checking.
"""

from repro.scan.chain import ScanChainSpec, shift_in, shift_out_start_indices
from repro.scan.oracle import ScanOracle, ScanResponse
from repro.scan.structural import build_scan_netlist
from repro.scan.multichain import MultiChainScanOracle, MultiChainSpec

__all__ = [
    "MultiChainScanOracle",
    "MultiChainSpec",
    "ScanChainSpec",
    "shift_in",
    "shift_out_start_indices",
    "ScanOracle",
    "ScanResponse",
    "build_scan_netlist",
]
