"""Structural view of a locked scan design.

Where :mod:`repro.scan.oracle` applies the obfuscation at the protocol
level, this module emits the *gate-level* design the paper's Fig. 1 shows:
scan multiplexers in front of every flop, XOR key gates spliced into the
scan path, and SE/SI/SO test pins plus parallel key-control inputs.

The structural netlist serves three purposes: it can be exported to
``.bench`` for inspection, it drives the figure-reproduction examples, and
-- most importantly -- simulating it cycle-by-cycle gives an *independent*
implementation of the scan semantics against which the protocol oracle is
cross-checked in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.scan.chain import ScanChainSpec
from repro.scan.oracle import KeystreamLike, ScanResponse
from repro.sim.seqsim import SequentialSimulator


@dataclass
class ScanPins:
    """Names of the test-access pins of a structural scan netlist."""

    scan_enable: str
    scan_in: str
    scan_out: str
    key_inputs: list[str]


def build_scan_netlist(
    netlist: Netlist,
    spec: ScanChainSpec,
    se_net: str = "scan_SE",
    si_net: str = "scan_SI",
    so_net: str = "scan_SO",
    key_prefix: str = "scan_KG",
) -> tuple[Netlist, ScanPins]:
    """Insert a locked scan chain into a sequential netlist.

    Chain order follows the netlist's canonical flop order.  Returns the
    new netlist and the pin-name record.  The key inputs are primary
    inputs: during simulation they are driven with the dynamic key of the
    current cycle (shift) or the secret key (capture -- irrelevant since
    the gates only feed scan muxes).
    """
    if spec.n_flops != netlist.n_dffs:
        raise ValueError("chain spec does not match the flop count")

    locked = Netlist(name=f"{netlist.name}_scan")
    for net in netlist.inputs:
        locked.add_input(net)
    locked.add_input(se_net)
    locked.add_input(si_net)
    key_nets = [f"{key_prefix}{g}" for g in range(spec.n_keygates)]
    for net in key_nets:
        locked.add_input(net)

    q_nets = netlist.dff_q_nets()
    # Scan source for position 0 is the SI pin; for p+1 it is the possibly
    # key-gated output of position p.
    scan_src: list[str] = [si_net]
    for p in range(spec.n_flops - 1):
        gate = spec.gate_at(p)
        if gate is None:
            scan_src.append(q_nets[p])
        else:
            xor_net = f"{key_prefix}{gate}_xor"
            locked.add_gate(xor_net, GateType.XOR, [q_nets[p], key_nets[gate]])
            scan_src.append(xor_net)

    for position, q_net in enumerate(q_nets):
        d_net = netlist.dffs[q_net].d
        mux_net = f"scan_mux_{position}"
        # MUX(sel, in0, in1): functional D when SE=0, scan path when SE=1.
        locked.add_gate(mux_net, GateType.MUX, [se_net, d_net, scan_src[position]])
        locked.add_dff(q=q_net, d=mux_net)

    for gate in netlist.gates.values():
        locked.add_gate(gate.output, gate.gtype, gate.inputs)
    for net in netlist.outputs:
        locked.add_output(net)
    locked.add_gate(so_net, GateType.BUF, [q_nets[-1]])
    locked.add_output(so_net)

    pins = ScanPins(
        scan_enable=se_net, scan_in=si_net, scan_out=so_net, key_inputs=key_nets
    )
    return locked, pins


class StructuralScanSimulator:
    """Drives a structural scan netlist through the full test protocol.

    Behaviourally equivalent to :class:`repro.scan.oracle.ScanOracle`; the
    integration tests assert bit-exact agreement on random circuits, which
    pins down the protocol semantics from two independent directions.
    """

    def __init__(
        self,
        locked: Netlist,
        pins: ScanPins,
        spec: ScanChainSpec,
        keystream: KeystreamLike,
        functional_inputs: Sequence[str],
    ):
        self.locked = locked
        self.pins = pins
        self.spec = spec
        self.keystream = keystream
        self.functional_inputs = list(functional_inputs)
        self._sim = SequentialSimulator(locked)

    def _cycle_inputs(
        self,
        se: int,
        si: int,
        key: Sequence[int],
        primary_inputs: Sequence[int],
    ) -> dict[str, int]:
        inputs = dict(zip(self.functional_inputs, primary_inputs))
        inputs[self.pins.scan_enable] = se
        inputs[self.pins.scan_in] = si
        for net, bit in zip(self.pins.key_inputs, key):
            inputs[net] = bit
        return inputs

    def query(
        self,
        scan_in: Sequence[int],
        primary_inputs: Sequence[int] | None = None,
    ) -> ScanResponse:
        n = self.spec.n_flops
        if len(scan_in) != n:
            raise ValueError(f"scan_in must have {n} bits")
        pi = list(primary_inputs) if primary_inputs is not None else [
            0
        ] * len(self.functional_inputs)
        if len(pi) != len(self.functional_inputs):
            raise ValueError("primary input width mismatch")

        self.keystream.restart()
        self._sim.reset(0)

        # Load: n shift edges, farthest bit first.
        for c in range(n):
            key = self.keystream.next_key()
            gate_key = key[: self.spec.n_keygates]
            self._sim.step(
                self._cycle_inputs(1, scan_in[n - 1 - c], gate_key, pi)
            )

        # Capture edge (SE = 0); PRNG still advances.
        self.keystream.next_key()
        values = self._sim.step(
            self._cycle_inputs(0, 0, [0] * self.spec.n_keygates, pi)
        )
        primary_outputs = [
            values[net] for net in self.locked.outputs if net != self.pins.scan_out
        ]

        # Unload: read SO before each of n-1 edges plus once at the end.
        observed: list[int] = []
        for j in range(n - 1):
            so_values = self._sim.evaluate_combinational(
                self._cycle_inputs(1, 0, [0] * self.spec.n_keygates, pi)
            )
            observed.append(so_values[self.pins.scan_out])
            key = self.keystream.next_key()
            gate_key = key[: self.spec.n_keygates]
            self._sim.step(self._cycle_inputs(1, 0, gate_key, pi))
        so_values = self._sim.evaluate_combinational(
            self._cycle_inputs(1, 0, [0] * self.spec.n_keygates, pi)
        )
        observed.append(so_values[self.pins.scan_out])

        by_position = [observed[n - 1 - l] for l in range(n)]
        return ScanResponse(scan_out=by_position, primary_outputs=primary_outputs)
