"""Multiple parallel scan chains (extension beyond the paper).

Industrial designs stitch their flops into many chains driven by a shared
clock; a tester loads all chains simultaneously, shorter chains padded at
the front so every chain's last bit arrives on the final load edge.  The
defense generalises naturally -- key gates sprinkle across all chains,
all fed by the *one* LFSR -- and so does DynUnlock, because the per-cycle
keystream is still a linear function of the single seed.

Conventions (extending :mod:`repro.scan.chain`):

* flops in the netlist's canonical order are split into consecutive
  slices, one per chain; global flop index <-> (chain, position);
* a load takes ``max(chain_lengths)`` edges; chain ``c`` receives
  ``max_len - len_c`` zero-padding bits first;
* unloading takes ``max_len - 1`` edges; chain ``c``'s captured bit at
  position ``l`` is observed after ``len_c - 1 - l`` edges;
* key gate ``i`` (global numbering across chains) is driven by LFSR
  state bit ``i``, exactly like the single-chain case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.netlist.netlist import Netlist, NetlistError
from repro.scan.oracle import KeystreamLike, ScanResponse
from repro.sim.seqsim import SequentialSimulator


@dataclass(frozen=True)
class MultiChainSpec:
    """Geometry of a multi-chain locked scan architecture.

    ``keygates`` lists (chain, position) pairs in global key-bit order:
    the ``i``-th entry is controlled by LFSR state bit ``i``.  Positions
    follow the single-chain rule (gate after flop ``position`` of that
    chain, ``0 <= position <= len_c - 2``).
    """

    chain_lengths: tuple[int, ...]
    keygates: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.chain_lengths:
            raise ValueError("at least one chain is required")
        for length in self.chain_lengths:
            if length < 1:
                raise ValueError("chains must hold at least one flop")
        seen: set[tuple[int, int]] = set()
        for chain, position in self.keygates:
            if not 0 <= chain < len(self.chain_lengths):
                raise ValueError(f"key gate references unknown chain {chain}")
            if not 0 <= position <= self.chain_lengths[chain] - 2:
                raise ValueError(
                    f"key gate position {position} out of range for chain "
                    f"{chain} (length {self.chain_lengths[chain]})"
                )
            if (chain, position) in seen:
                raise ValueError(f"duplicate key gate {(chain, position)}")
            seen.add((chain, position))

    @property
    def n_flops(self) -> int:
        return sum(self.chain_lengths)

    @property
    def n_chains(self) -> int:
        return len(self.chain_lengths)

    @property
    def n_keygates(self) -> int:
        return len(self.keygates)

    @property
    def max_length(self) -> int:
        return max(self.chain_lengths)

    @classmethod
    def balanced(
        cls, n_flops: int, n_chains: int, keygates: Sequence[tuple[int, int]] = ()
    ) -> "MultiChainSpec":
        """Split ``n_flops`` into ``n_chains`` near-equal chains."""
        if n_chains < 1 or n_chains > n_flops:
            raise ValueError("need 1 <= n_chains <= n_flops")
        base, extra = divmod(n_flops, n_chains)
        lengths = tuple(base + (1 if c < extra else 0) for c in range(n_chains))
        return cls(chain_lengths=lengths, keygates=tuple(keygates))

    # -- global flop index <-> (chain, position) -------------------------
    def chain_of(self, flop_index: int) -> tuple[int, int]:
        if flop_index < 0:
            raise ValueError("flop index must be non-negative")
        offset = 0
        for chain, length in enumerate(self.chain_lengths):
            if flop_index < offset + length:
                return chain, flop_index - offset
            offset += length
        raise ValueError(f"flop index {flop_index} out of range")

    def flop_index(self, chain: int, position: int) -> int:
        return sum(self.chain_lengths[:chain]) + position

    def gates_in_chain(self, chain: int) -> list[tuple[int, int]]:
        """[(global key index, position)] for one chain, sorted by position."""
        gates = [
            (key_index, position)
            for key_index, (c, position) in enumerate(self.keygates)
            if c == chain
        ]
        return sorted(gates, key=lambda item: item[1])


class MultiChainScanOracle:
    """Protocol-level oracle for a multi-chain locked design.

    API mirrors :class:`repro.scan.oracle.ScanOracle`: patterns and
    responses use the *global* flop order, padding and per-chain routing
    are internal.
    """

    def __init__(
        self,
        netlist: Netlist,
        spec: MultiChainSpec,
        keystream: KeystreamLike,
        obfuscation_enabled: bool = True,
    ):
        if spec.n_flops != netlist.n_dffs:
            raise NetlistError(
                f"chains hold {spec.n_flops} flops, netlist has {netlist.n_dffs}"
            )
        if keystream.width < spec.n_keygates:
            raise ValueError("keystream narrower than the key-gate count")
        self.netlist = netlist
        self.spec = spec
        self.keystream = keystream
        self.obfuscation_enabled = obfuscation_enabled
        self._sim = SequentialSimulator(netlist)
        self.query_count = 0

    def _split(self, bits: Sequence[int]) -> list[list[int]]:
        chunks: list[list[int]] = []
        offset = 0
        for length in self.spec.chain_lengths:
            chunks.append(list(bits[offset: offset + length]))
            offset += length
        return chunks

    def _shift_all_chains(
        self,
        states: list[list[int]],
        scan_in_bits: list[int],
        key: Sequence[int],
    ) -> list[list[int]]:
        """One simultaneous shift edge across every chain."""
        new_states: list[list[int]] = []
        for chain, state in enumerate(states):
            gates = dict(
                (position, key_index)
                for key_index, position in self.spec.gates_in_chain(chain)
            )
            new_state = [scan_in_bits[chain]]
            for p in range(len(state) - 1):
                bit = state[p]
                key_index = gates.get(p)
                if key_index is not None and self.obfuscation_enabled:
                    bit ^= key[key_index]
                new_state.append(bit)
            new_states.append(new_state)
        return new_states

    def query(
        self,
        scan_in: Sequence[int],
        primary_inputs: Sequence[int] | None = None,
        n_captures: int = 1,
    ) -> ScanResponse:
        spec = self.spec
        if len(scan_in) != spec.n_flops:
            raise ValueError(f"scan_in must have {spec.n_flops} bits")
        if n_captures < 1:
            raise ValueError("at least one capture edge is required")
        self.query_count += 1
        self.keystream.restart()
        self._sim.reset(0)

        patterns = self._split(scan_in)
        max_len = spec.max_length
        states = [[0] * length for length in spec.chain_lengths]

        # Load: max_len edges; chain c is padded for max_len - len_c edges.
        for t in range(max_len):
            key = self.keystream.next_key()
            si_bits = []
            for chain, length in enumerate(spec.chain_lengths):
                pad = max_len - length
                if t < pad:
                    si_bits.append(0)
                else:
                    # Bit destined for position l enters at edge
                    # max_len - 1 - l; invert for the entering index.
                    si_bits.append(patterns[chain][max_len - 1 - t])
            states = self._shift_all_chains(states, si_bits, key)

        # Capture edges.
        applied: list[int] = []
        for state in states:
            applied.extend(state)
        self._sim.set_state_vector(applied)
        nets = self.netlist.inputs
        if primary_inputs is None:
            inputs = {net: 0 for net in nets}
        else:
            if len(primary_inputs) != len(nets):
                raise ValueError("primary input width mismatch")
            inputs = dict(zip(nets, primary_inputs))
        primary_outputs: list[int] = []
        for _ in range(n_captures):
            self.keystream.next_key()
            values = self._sim.step(inputs)
            primary_outputs = [values[net] for net in self.netlist.outputs]
        captured_global = self._sim.get_state_vector()
        states = self._split(captured_global)

        # Unload: max_len - 1 edges; chain c's position l is read after
        # len_c - 1 - l edges (sampled before the edge that would move it
        # past the scan-out pin).
        observed: list[list[int | None]] = [
            [None] * length for length in spec.chain_lengths
        ]
        for chain, state in enumerate(states):
            observed[chain][len(state) - 1] = state[-1]
        for j in range(max_len - 1):
            key = self.keystream.next_key()
            states = self._shift_all_chains(states, [0] * spec.n_chains, key)
            for chain, state in enumerate(states):
                length = len(state)
                position = length - 1 - (j + 1)
                if position >= 0:
                    observed[chain][position] = state[-1]

        scan_out: list[int] = []
        for chain_bits in observed:
            assert all(bit is not None for bit in chain_bits)
            scan_out.extend(int(bit) for bit in chain_bits)  # type: ignore[arg-type]
        return ScanResponse(scan_out=scan_out, primary_outputs=primary_outputs)
