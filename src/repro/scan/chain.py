"""Scan-chain geometry and generic shift semantics.

Conventions (fixed project-wide):

* chain positions are 0-indexed; position 0 is nearest the scan-in pin,
  position ``n_flops - 1`` drives the scan-out pin;
* a key gate "after flop p" XORs the bit travelling from position ``p`` to
  position ``p + 1`` during a shift cycle (``0 <= p <= n_flops - 2``);
  this matches the paper's Fig. 1 where gates sit *between* scan flops
  (the paper's 1-indexed "after the 1st flop" is our ``p = 0``);
* pattern bit ``a[l]`` is the value the attacker wants in chain position
  ``l`` when shifting completes, so the bit for the farthest position
  enters first;
* a full load takes ``n_flops`` shift edges; unloading all captured bits
  takes ``n_flops - 1`` further edges because the scan-out pin shows the
  last flop combinationally (bit 0 of the response is sampled before any
  unload edge);
* the dynamic key advances on *every* edge, including the capture edge.

The shift routines below are generic in the bit type: concrete ints for
the oracle, or any object supporting the supplied ``xor`` callable (the
symbolic derivation passes GF(2) affine expressions).  This single
implementation is what guarantees the attack model and the oracle agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

Bit = TypeVar("Bit")


@dataclass(frozen=True)
class ScanChainSpec:
    """Geometry of one locked scan chain.

    ``keygate_positions[g]`` is the flop position whose output the ``g``-th
    key gate XORs; key gate ``g`` is controlled by dynamic-key bit ``g``
    (i.e. LFSR state bit ``g``), following the paper's Algorithm 1 where
    key bit ``i`` pairs with the ``i``-th locked flop location.
    """

    n_flops: int
    keygate_positions: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_flops <= 0:
            raise ValueError("a scan chain needs at least one flop")
        seen: set[int] = set()
        for pos in self.keygate_positions:
            if not 0 <= pos <= self.n_flops - 2:
                raise ValueError(
                    f"key gate position {pos} out of range 0..{self.n_flops - 2}"
                )
            if pos in seen:
                raise ValueError(f"duplicate key gate at position {pos}")
            seen.add(pos)
        if list(self.keygate_positions) != sorted(self.keygate_positions):
            raise ValueError("key gate positions must be sorted ascending")

    @property
    def n_keygates(self) -> int:
        return len(self.keygate_positions)

    @classmethod
    def from_paper_positions(
        cls, n_flops: int, after_flops_1indexed: Sequence[int]
    ) -> "ScanChainSpec":
        """Build from the paper's 1-indexed "after the k-th flop" notation.

        Fig. 1 of the paper locks s208 with gates after the 1st, 2nd and
        5th scan flops: ``from_paper_positions(8, [1, 2, 5])``.
        """
        return cls(
            n_flops=n_flops,
            keygate_positions=tuple(sorted(k - 1 for k in after_flops_1indexed)),
        )

    def gate_at(self, position: int) -> int | None:
        """Key-gate index sitting after flop ``position`` (None when clear)."""
        try:
            return self.keygate_positions.index(position)
        except ValueError:
            return None


def shift_cycle(
    spec: ScanChainSpec,
    state: list[Bit],
    scan_in_bit: Bit,
    key: Sequence[Bit],
    xor: Callable[[Bit, Bit], Bit],
) -> list[Bit]:
    """One shift edge: returns the new chain state.

    ``key`` is the dynamic key in effect during this edge, one entry per
    key gate.
    """
    if len(state) != spec.n_flops:
        raise ValueError("state length does not match chain length")
    if len(key) < spec.n_keygates:
        raise ValueError("key vector shorter than the number of key gates")
    new_state: list[Bit] = [scan_in_bit]
    gate_lookup = {pos: g for g, pos in enumerate(spec.keygate_positions)}
    for p in range(spec.n_flops - 1):
        bit = state[p]
        gate = gate_lookup.get(p)
        if gate is not None:
            bit = xor(bit, key[gate])
        new_state.append(bit)
    return new_state


def shift_in(
    spec: ScanChainSpec,
    initial_state: list[Bit],
    pattern: Sequence[Bit],
    keys: Sequence[Sequence[Bit]],
    xor: Callable[[Bit, Bit], Bit],
) -> list[Bit]:
    """Shift a full pattern in (``n_flops`` edges).

    ``pattern[l]`` targets chain position ``l``; ``keys[c]`` is the dynamic
    key during edge ``c``.  Returns the final chain state (what actually
    got applied to the circuit -- the paper's ``a'``).
    """
    n = spec.n_flops
    if len(pattern) != n:
        raise ValueError("pattern length does not match chain length")
    if len(keys) < n:
        raise ValueError(f"need {n} per-edge keys, got {len(keys)}")
    state = list(initial_state)
    for c in range(n):
        state = shift_cycle(spec, state, pattern[n - 1 - c], keys[c], xor)
    return state


def shift_out(
    spec: ScanChainSpec,
    captured_state: list[Bit],
    keys: Sequence[Sequence[Bit]],
    xor: Callable[[Bit, Bit], Bit],
    fill_bit: Bit,
) -> list[Bit]:
    """Unload the chain (``n_flops - 1`` edges), returning observed bits.

    Returns ``observed`` where ``observed[l]`` is what the tester records
    for the bit captured in position ``l`` (the paper's ``b``): position
    ``n-1`` is read immediately, position ``l`` after ``n - 1 - l`` edges.
    ``keys[j]`` is the key during unload edge ``j`` (0-based).
    """
    n = spec.n_flops
    if len(captured_state) != n:
        raise ValueError("state length does not match chain length")
    if len(keys) < n - 1:
        raise ValueError(f"need {n - 1} per-edge keys, got {len(keys)}")
    observed: list[Bit] = [captured_state[n - 1]]  # position n-1, zero edges
    state = list(captured_state)
    for j in range(n - 1):
        state = shift_cycle(spec, state, fill_bit, keys[j], xor)
        observed.append(state[n - 1])
    # observed[c] is the bit that started at position n-1-c; re-index by
    # original position.
    by_position: list[Bit] = [observed[n - 1 - l] for l in range(n)]
    return by_position


def shift_out_start_indices(n_flops: int) -> list[int]:
    """For docs/tests: unload edge count after which position ``l`` appears."""
    return [n_flops - 1 - l for l in range(n_flops)]


def xor_int(a: int, b: int) -> int:
    """Concrete-bit XOR used by the oracle."""
    return a ^ b
