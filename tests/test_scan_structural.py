"""Cross-validation: the structural scan netlist (explicit muxes and XOR
key gates, Fig. 1 style) must agree bit-for-bit with the protocol oracle.

This is the strongest scan-semantics test in the suite: two independent
implementations of shift/capture/unload -- one operating on lists, one
clocking a gate-level netlist -- must produce identical scrambled
responses for random circuits, geometries, seeds and patterns.
"""

import random

import pytest

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import s27_netlist
from repro.locking.effdyn import lock_with_effdyn
from repro.netlist.validate import validate_netlist
from repro.scan.oracle import ScanOracle
from repro.scan.structural import StructuralScanSimulator, build_scan_netlist
from repro.util.bitvec import random_bits


class TestBuildScanNetlist:
    def test_pins_and_structure(self):
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=random.Random(0))
        locked, pins = build_scan_netlist(netlist, lock.spec)
        assert pins.scan_enable in locked.inputs
        assert pins.scan_in in locked.inputs
        assert pins.scan_out in locked.outputs
        assert len(pins.key_inputs) == 2
        # One mux per flop, one XOR per key gate, plus the SO buffer.
        assert locked.n_gates == netlist.n_gates + 3 + 2 + 1
        validate_netlist(locked)

    def test_chain_spec_mismatch_rejected(self):
        from repro.scan.chain import ScanChainSpec

        with pytest.raises(ValueError):
            build_scan_netlist(s27_netlist(), ScanChainSpec(n_flops=5))


class TestProtocolVsStructural:
    @pytest.mark.parametrize("trial", range(6))
    def test_agreement_on_random_circuits(self, trial):
        rng = random.Random(1000 + trial)
        n_flops = rng.randint(4, 12)
        config = GeneratorConfig(
            n_flops=n_flops,
            n_inputs=rng.randint(2, 5),
            n_outputs=rng.randint(1, 4),
        )
        netlist = generate_circuit(config, rng, name=f"x{trial}")
        key_bits = rng.randint(2, min(6, n_flops - 1))
        lock = lock_with_effdyn(netlist, key_bits=key_bits, rng=rng)

        protocol_oracle = ScanOracle(netlist, lock.spec, lock.keystream())
        locked, pins = build_scan_netlist(netlist, lock.spec)
        structural = StructuralScanSimulator(
            locked, pins, lock.spec, lock.keystream(), netlist.inputs
        )

        for _ in range(5):
            pattern = random_bits(n_flops, rng)
            pis = random_bits(len(netlist.inputs), rng)
            a = protocol_oracle.query(pattern, pis)
            b = structural.query(pattern, pis)
            assert a.scan_out == b.scan_out, (
                f"scan-out mismatch for flops={n_flops} key={key_bits}"
            )
            assert a.primary_outputs == b.primary_outputs

    def test_agreement_on_s27(self):
        rng = random.Random(77)
        netlist = s27_netlist()
        lock = lock_with_effdyn(netlist, key_bits=2, rng=rng)
        protocol_oracle = ScanOracle(netlist, lock.spec, lock.keystream())
        locked, pins = build_scan_netlist(netlist, lock.spec)
        structural = StructuralScanSimulator(
            locked, pins, lock.spec, lock.keystream(), netlist.inputs
        )
        for _ in range(10):
            pattern = random_bits(3, rng)
            pis = random_bits(4, rng)
            assert (
                protocol_oracle.query(pattern, pis).scan_out
                == structural.query(pattern, pis).scan_out
            )
