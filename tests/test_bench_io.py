"""Tests for ISCAS-89 .bench parsing and serialisation."""

import pytest

from repro.bench_suite.iscas import S27_BENCH, s27_netlist
from repro.netlist.bench_io import parse_bench, write_bench
from repro.netlist.gates import GateType
from repro.netlist.netlist import NetlistError
from repro.netlist.validate import validate_netlist


class TestParse:
    def test_s27_shape(self):
        netlist = s27_netlist()
        assert len(netlist.inputs) == 4
        assert len(netlist.outputs) == 1
        assert netlist.n_dffs == 3
        assert netlist.n_gates == 10

    def test_s27_validates(self):
        report = validate_netlist(s27_netlist())
        assert report["gates"] == 10

    def test_comments_and_blank_lines_ignored(self):
        netlist = parse_bench("# hello\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert netlist.inputs == ["a"]
        assert netlist.gates["y"].gtype == GateType.NOT

    def test_inline_comment(self):
        netlist = parse_bench("INPUT(a) # the input\nOUTPUT(y)\ny = BUFF(a)")
        assert netlist.inputs == ["a"]

    def test_case_insensitive_keywords(self):
        netlist = parse_bench("input(a)\noutput(y)\ny = nand(a, a)")
        assert netlist.gates["y"].gtype == GateType.NAND

    def test_dff(self):
        netlist = parse_bench("INPUT(a)\nq = DFF(a)")
        assert netlist.dffs["q"].d == "a"

    def test_dff_wrong_arity(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nq = DFF(a, a)")

    def test_unknown_gate(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\ny = FROB(a)")

    def test_garbage_line(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nthis is not a gate")

    def test_multi_input_gate(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\ny = AND(a, b, c)")
        assert netlist.gates["y"].inputs == ("a", "b", "c")


class TestRoundTrip:
    def test_s27_roundtrip(self):
        original = s27_netlist()
        reparsed = parse_bench(write_bench(original), name="s27")
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert set(reparsed.gates) == set(original.gates)
        for net, gate in original.gates.items():
            assert reparsed.gates[net].gtype == gate.gtype
            assert reparsed.gates[net].inputs == gate.inputs
        assert {q: d.d for q, d in reparsed.dffs.items()} == {
            q: d.d for q, d in original.dffs.items()
        }

    def test_s27_source_is_parseable_twice(self):
        assert write_bench(parse_bench(S27_BENCH, name="s27")) == write_bench(
            s27_netlist()
        )
