"""Tests for ISCAS-89 .bench parsing and serialisation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.bench_suite.iscas import S27_BENCH, s27_netlist
from repro.netlist.bench_io import parse_bench, write_bench
from repro.netlist.gates import GateType
from repro.netlist.netlist import NetlistError
from repro.netlist.validate import validate_netlist


class TestParse:
    def test_s27_shape(self):
        netlist = s27_netlist()
        assert len(netlist.inputs) == 4
        assert len(netlist.outputs) == 1
        assert netlist.n_dffs == 3
        assert netlist.n_gates == 10

    def test_s27_validates(self):
        report = validate_netlist(s27_netlist())
        assert report["gates"] == 10

    def test_comments_and_blank_lines_ignored(self):
        netlist = parse_bench("# hello\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        assert netlist.inputs == ["a"]
        assert netlist.gates["y"].gtype == GateType.NOT

    def test_inline_comment(self):
        netlist = parse_bench("INPUT(a) # the input\nOUTPUT(y)\ny = BUFF(a)")
        assert netlist.inputs == ["a"]

    def test_case_insensitive_keywords(self):
        netlist = parse_bench("input(a)\noutput(y)\ny = nand(a, a)")
        assert netlist.gates["y"].gtype == GateType.NAND

    def test_dff(self):
        netlist = parse_bench("INPUT(a)\nq = DFF(a)")
        assert netlist.dffs["q"].d == "a"

    def test_dff_wrong_arity(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nq = DFF(a, a)")

    def test_unknown_gate(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\ny = FROB(a)")

    def test_garbage_line(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nthis is not a gate")

    def test_multi_input_gate(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nINPUT(c)\ny = AND(a, b, c)")
        assert netlist.gates["y"].inputs == ("a", "b", "c")


class TestParserHardening:
    """Messy-but-legal input is tolerated; violations carry line numbers."""

    def test_crlf_line_endings(self):
        netlist = parse_bench("INPUT(a)\r\nOUTPUT(y)\r\ny = NOT(a)\r\n")
        assert netlist.inputs == ["a"]
        assert netlist.outputs == ["y"]

    def test_blank_and_whitespace_lines(self):
        netlist = parse_bench("\n   \nINPUT(a)\n\t\nOUTPUT(y)\n\ny = BUFF(a)\n\n")
        assert netlist.outputs == ["y"]

    def test_trailing_comment_on_every_line(self):
        src = "INPUT(a) # in\nOUTPUT(y)# out\ny = NOT(a)  ## negate\n"
        netlist = parse_bench(src)
        assert netlist.gates["y"].gtype == GateType.NOT

    def test_output_before_declaration(self):
        netlist = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)")
        assert netlist.outputs == ["y"]

    def test_duplicate_output_reports_line(self):
        src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nOUTPUT(y)\n"
        with pytest.raises(NetlistError, match=r"line 4:.*already a primary output"):
            parse_bench(src)

    def test_duplicate_driver_reports_line(self):
        src = "INPUT(a)\ny = NOT(a)\ny = BUFF(a)\n"
        with pytest.raises(NetlistError, match=r"line 3:"):
            parse_bench(src)

    def test_duplicate_input_reports_line(self):
        with pytest.raises(NetlistError, match=r"line 2:"):
            parse_bench("INPUT(a)\nINPUT(a)\n")

    def test_bad_arity_reports_line(self):
        with pytest.raises(NetlistError, match=r"line 2:"):
            parse_bench("INPUT(a)\ny = NOT(a, a)\n")

    def test_garbage_reports_line(self):
        with pytest.raises(NetlistError, match=r"line 3:"):
            parse_bench("INPUT(a)\ny = NOT(a)\nthis is not a gate\n")

    def test_unknown_op_reports_line(self):
        with pytest.raises(NetlistError, match=r"line 2:.*FROB"):
            parse_bench("INPUT(a)\ny = FROB(a)\n")


class TestRoundTripProperties:
    @staticmethod
    def _sampled(seed: int):
        rng = random.Random(seed)
        config = GeneratorConfig(
            n_flops=2 + seed % 5,
            n_inputs=1 + seed % 4,
            n_outputs=1 + seed % 3,
            gates_per_flop=1.0 + (seed % 3),
            max_fanin=2 + seed % 3,
        )
        return generate_circuit(config, rng, name=f"rt{seed}")

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_write_parse_identity(self, seed):
        original = self._sampled(seed)
        reparsed = parse_bench(write_bench(original), name=original.name)
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert list(reparsed.gates) == list(original.gates)
        for net, gate in original.gates.items():
            assert reparsed.gates[net].gtype == gate.gtype
            assert reparsed.gates[net].inputs == gate.inputs
        assert {q: d.d for q, d in reparsed.dffs.items()} == {
            q: d.d for q, d in original.dffs.items()
        }

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_write_is_a_fixed_point(self, seed):
        original = self._sampled(seed)
        text = write_bench(original)
        assert write_bench(parse_bench(text, name=original.name)) == text

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_crlf_and_comments_do_not_change_the_parse(self, seed):
        original = self._sampled(seed)
        text = write_bench(original)
        mangled = "\r\n".join(
            f"{line} # noise" if line and not line.startswith("#") else line
            for line in text.split("\n")
        )
        clean = parse_bench(text, name="x")
        messy = parse_bench(mangled, name="x")
        assert write_bench(clean) == write_bench(messy)


class TestRoundTrip:
    def test_s27_roundtrip(self):
        original = s27_netlist()
        reparsed = parse_bench(write_bench(original), name="s27")
        assert reparsed.inputs == original.inputs
        assert reparsed.outputs == original.outputs
        assert set(reparsed.gates) == set(original.gates)
        for net, gate in original.gates.items():
            assert reparsed.gates[net].gtype == gate.gtype
            assert reparsed.gates[net].inputs == gate.inputs
        assert {q: d.d for q, d in reparsed.dffs.items()} == {
            q: d.d for q, d in original.dffs.items()
        }

    def test_s27_source_is_parseable_twice(self):
        assert write_bench(parse_bench(S27_BENCH, name="s27")) == write_bench(
            s27_netlist()
        )
