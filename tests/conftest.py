"""Shared test configuration.

The library runs without numpy (the scalar netlist/sim/sat/opt paths are
stdlib-only, see ``repro.ir``), but the attack core does not: building a
combinational model unrolls the LFSR through the GF(2) substrate.  Tests
that exercise that path carry ``@pytest.mark.requires_numpy`` and are
skipped -- not failed -- on the numpy-less CI leg; six whole modules
(gf2, prng, sim, analysis, seed-equivalence, solver-vs-gf2) instead use
``pytest.importorskip`` at import time.
"""

import pytest

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised by the numpy-less CI leg
    HAVE_NUMPY = False


def pytest_collection_modifyitems(config, items):
    if HAVE_NUMPY:
        return
    skip = pytest.mark.skip(
        reason="requires numpy (combinational modeling / GF(2) substrate)"
    )
    for item in items:
        if "requires_numpy" in item.keywords:
            item.add_marker(skip)
