"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "s5378", "--key-bits", "8", "--lock-seed", "3"]
        )
        assert args.benchmark == "s5378"
        assert args.key_bits == 8
        assert args.lock_seed == 3

    def test_profile_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--profile", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s35932" in out and "b17" in out

    def test_info(self, capsys):
        assert main(["info", "s5378", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "paper flops  : 160" in out

    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        assert "success=True" in capsys.readouterr().out

    def test_attack_small(self, capsys):
        code = main(
            ["attack", "s5378", "--scale", "64", "--key-bits", "4",
             "--timeout", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success          : True" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["info", "nope"])


class TestRunnerSurfaces:
    """The --jobs/--resume/--emit-json flags and the `run` subcommand."""

    def test_runner_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["table2", "s5378"])
        assert args.jobs == 1
        assert args.resume is True
        assert args.cache_dir is None
        assert args.emit_json is None

    def test_no_resume_and_jobs(self):
        args = build_parser().parse_args(
            ["table2", "s5378", "--jobs", "4", "--no-resume"]
        )
        assert args.jobs == 4
        assert args.resume is False

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tableX"])

    def test_table2_emits_artifacts_and_caches(self, tmp_path, capsys):
        argv = [
            "table2", "s5378", "--profile", "quick",
            "--cache-dir", str(tmp_path / "cache"),
            "--emit-json", str(tmp_path / "results"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "results" / "BENCH_table2.json").is_file()
        assert (tmp_path / "results" / "BENCH_table2.csv").is_file()
        first = capsys.readouterr().out
        assert main(argv) == 0  # second run: served from cache
        assert capsys.readouterr().out == first

    def test_run_subcommand_table2_subset(self, tmp_path, capsys):
        assert main(
            ["run", "table2", "--benchmarks", "s5378",
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        assert "Table II" in capsys.readouterr().out


class TestMatrixCommand:
    """The `dynunlock matrix` surface (grid filters + paper check)."""

    def test_matrix_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["matrix"])
        assert args.attacks == [] and args.defenses == []
        assert args.benchmarks == []
        assert args.check_paper is True
        assert args.jobs == 1 and args.resume is True

    def test_no_check_paper_flag(self):
        args = build_parser().parse_args(["matrix", "--no-check-paper"])
        assert args.check_paper is False

    def test_unknown_plugin_name_is_a_usage_error(self, capsys):
        assert main(["matrix", "--attacks", "nope"]) == 2
        assert "unknown attack/defense" in capsys.readouterr().err

    def test_unknown_benchmark_is_a_usage_error(self, capsys):
        assert main(["matrix", "--benchmarks", "s9999"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_filtered_matrix_runs_and_emits_artifact(self, tmp_path, capsys):
        argv = [
            "matrix", "--defenses", "eff", "--attacks", "scansat", "bruteforce",
            "--benchmarks", "s5378", "--profile", "quick",
            "--cache-dir", str(tmp_path / "cache"),
            "--emit-json", str(tmp_path / "results"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resilience matrix" in out and "broken" in out
        artifact = tmp_path / "results" / "BENCH_matrix.json"
        assert artifact.is_file()
        import json

        meta = json.loads(artifact.read_text())["meta"]
        assert meta["verdicts"]["scansat|eff"] == "broken"
        assert meta["n_paper_mismatches"] == 0
        assert main(argv) == 0  # second run: served from cache
        assert capsys.readouterr().out == out
