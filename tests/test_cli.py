"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "s5378", "--key-bits", "8", "--lock-seed", "3"]
        )
        assert args.benchmark == "s5378"
        assert args.key_bits == 8
        assert args.lock_seed == 3

    def test_profile_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--profile", "huge"])

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--no-resume"]
        )
        assert args.port == 0
        assert args.jobs == 2
        assert args.resume is False

    def test_submit_options(self):
        args = build_parser().parse_args(
            ["submit", "table2", "--url", "http://h:1", "--batch-size", "4"]
        )
        assert args.experiment == "table2"
        assert args.url == "http://h:1"
        assert args.batch_size == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "not-a-grid"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s35932" in out and "b17" in out

    def test_info(self, capsys):
        assert main(["info", "s5378", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "paper flops  : 160" in out

    @pytest.mark.requires_numpy
    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        assert "success=True" in capsys.readouterr().out

    @pytest.mark.requires_numpy
    def test_attack_small(self, capsys):
        code = main(
            ["attack", "s5378", "--scale", "64", "--key-bits", "4",
             "--timeout", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success          : True" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["info", "nope"])


class TestRunnerSurfaces:
    """The --jobs/--resume/--emit-json flags and the `run` subcommand."""

    def test_runner_flags_parse_with_defaults(self):
        # Parse leaves runner flags as None sentinels so config-file
        # resolution can tell "unset" from an explicit flag; applying
        # the (empty) config fills in the built-in defaults.
        from repro.config import apply_config

        args = build_parser().parse_args(["table2", "s5378"])
        assert args.jobs is None
        assert args.resume is None
        apply_config(args, "grid")
        assert args.jobs == 1
        assert args.resume is True
        assert args.cache_dir is None
        assert args.emit_json is None

    def test_no_resume_and_jobs(self):
        args = build_parser().parse_args(
            ["table2", "s5378", "--jobs", "4", "--no-resume"]
        )
        assert args.jobs == 4
        assert args.resume is False

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tableX"])

    @pytest.mark.requires_numpy
    def test_table2_emits_artifacts_and_caches(self, tmp_path, capsys):
        argv = [
            "table2", "s5378", "--profile", "quick",
            "--cache-dir", str(tmp_path / "cache"),
            "--emit-json", str(tmp_path / "results"),
        ]
        assert main(argv) == 0
        assert (tmp_path / "results" / "BENCH_table2.json").is_file()
        assert (tmp_path / "results" / "BENCH_table2.csv").is_file()
        first = capsys.readouterr().out
        assert main(argv) == 0  # second run: served from cache
        assert capsys.readouterr().out == first

    @pytest.mark.requires_numpy
    def test_run_subcommand_table2_subset(self, tmp_path, capsys):
        assert main(
            ["run", "table2", "--benchmarks", "s5378",
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        assert "Table II" in capsys.readouterr().out


class TestMatrixCommand:
    """The `dynunlock matrix` surface (grid filters + paper check)."""

    def test_matrix_flags_parse_with_defaults(self):
        from repro.config import apply_config

        args = build_parser().parse_args(["matrix"])
        assert args.attacks == [] and args.defenses == []
        assert args.benchmarks == []
        assert args.check_paper is True
        assert args.jobs is None and args.resume is None
        apply_config(args, "matrix")
        assert args.jobs == 1 and args.resume is True

    def test_no_check_paper_flag(self):
        args = build_parser().parse_args(["matrix", "--no-check-paper"])
        assert args.check_paper is False

    def test_unknown_plugin_name_is_a_usage_error(self, capsys):
        assert main(["matrix", "--attacks", "nope"]) == 2
        assert "unknown attack/defense" in capsys.readouterr().err

    def test_unknown_benchmark_is_a_usage_error(self, capsys):
        assert main(["matrix", "--benchmarks", "s9999"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_filtered_matrix_runs_and_emits_artifact(self, tmp_path, capsys):
        argv = [
            "matrix", "--defenses", "eff", "--attacks", "scansat", "bruteforce",
            "--benchmarks", "s5378", "--profile", "quick",
            "--cache-dir", str(tmp_path / "cache"),
            "--emit-json", str(tmp_path / "results"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resilience matrix" in out and "broken" in out
        artifact = tmp_path / "results" / "BENCH_matrix.json"
        assert artifact.is_file()
        from repro.runner.artifacts import load_artifact

        meta = load_artifact(artifact)["meta"]
        assert meta["verdicts"]["scansat|eff"] == "broken"
        assert meta["n_paper_mismatches"] == 0
        assert main(argv) == 0  # second run: served from cache
        assert capsys.readouterr().out == out


class TestFuzzCommand:
    def test_parser_defaults(self):
        from repro.config import apply_config

        args = build_parser().parse_args(["fuzz"])
        assert args.trials is None and args.seed is None
        apply_config(args, "fuzz")
        assert args.trials == 100 and args.seed == 0
        assert args.time_budget is None and args.corpus is None
        replay = build_parser().parse_args(["fuzz-replay"])
        assert replay.corpus == ".fuzz_corpus"

    @pytest.mark.requires_numpy
    def test_small_campaign_is_green(self, capsys, tmp_path):
        code = main(
            ["fuzz", "--trials", "6", "--seed", "0",
             "--cache-dir", str(tmp_path / "cache"),
             "--corpus", str(tmp_path / "corpus")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Differential fuzz campaign" in captured.out
        assert "0 violation(s)" in captured.err
        # Green campaign => no corpus directory is conjured.
        assert not (tmp_path / "corpus").exists()

    def test_emit_json_writes_campaign_artifact(self, capsys, tmp_path):
        import json

        code = main(
            ["fuzz", "--trials", "4", "--seed", "1", "--no-resume",
             "--emit-json", str(tmp_path)]
        )
        assert code == 0
        from repro.runner.artifacts import load_artifact

        artifact = load_artifact(tmp_path / "BENCH_fuzz.json")
        assert artifact["meta"]["campaign_seed"] == 1
        assert artifact["meta"]["n_trials"] == 4
        assert artifact["meta"]["violations"] == []

    def test_replay_of_a_missing_corpus_is_clean(self, capsys, tmp_path):
        assert main(["fuzz-replay", str(tmp_path / "none")]) == 0
        assert "nothing to replay" in capsys.readouterr().out

    def test_replay_of_a_damaged_corpus_reports_instead_of_crashing(
        self, capsys, tmp_path
    ):
        bad = tmp_path / "attack-replay" / "junk.json"
        bad.parent.mkdir(parents=True)
        bad.write_text("not json at all")
        assert main(["fuzz-replay", str(tmp_path)]) == 2
        assert "damaged" in capsys.readouterr().err

    def test_replay_flags_entries_that_no_longer_reproduce(
        self, capsys, tmp_path
    ):
        from repro.fuzz.campaign import sample_trial_params
        from repro.fuzz.corpus import CrashEntry, write_entry
        from repro.reports.profiles import PROFILES, profile_to_dict

        # A healthy trial filed as if it once violated attack-replay:
        # replay must notice the failure is gone and exit non-zero.
        trial = sample_trial_params(0, 0)
        write_entry(
            tmp_path,
            CrashEntry(
                invariant="attack-replay",
                detail="stale",
                trial=trial,
                original_trial=trial,
                profile=profile_to_dict(PROFILES["quick"]),
            ),
        )
        code = main(["fuzz-replay", str(tmp_path), "--verbose"])
        captured = capsys.readouterr()
        assert code == 1
        assert "NO LONGER REPRODUCES" in captured.out
        assert "no longer reproduce" in captured.err


class TestOptCommands:
    def test_opt_level_flags_parse(self):
        args = build_parser().parse_args(["table2", "--no-opt"])
        assert args.opt_level == 0
        args = build_parser().parse_args(["attack", "s5378", "--opt-level", "2"])
        assert args.opt_level == 2
        # Default is None: the attacks resolve the active level themselves.
        assert build_parser().parse_args(["fuzz"]).opt_level is None
        assert build_parser().parse_args(["matrix"]).opt_level is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--opt-level", "9"])

    @pytest.mark.requires_numpy
    def test_opt_stats_command(self, capsys, tmp_path):
        code = main(["opt", "s5378", "--scale", "32", "--emit-json", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "structhash" in captured.out and "TOTAL" in captured.out
        assert "effdyn-model" in captured.out
        assert (tmp_path / "BENCH_opt.json").exists()

    @pytest.mark.requires_numpy
    def test_opt_command_level2_runs_satsweep(self, capsys):
        assert main(["opt", "s5378", "--scale", "32", "--level", "2"]) == 0
        assert "satsweep" in capsys.readouterr().out

    @pytest.mark.requires_numpy
    def test_attack_with_no_opt(self, capsys):
        code = main(
            ["attack", "s5378", "--scale", "64", "--key-bits", "4",
             "--timeout", "120", "--no-opt"]
        )
        assert code == 0
        assert "success          : True" in capsys.readouterr().out

    @pytest.mark.requires_numpy
    def test_opt_bench_single_benchmark(self, capsys, tmp_path):
        import json

        code = main(
            ["opt-bench", "--profile", "quick", "--benchmarks", "s5378",
             "--emit-json", str(tmp_path)]
        )
        captured = capsys.readouterr()
        # The timing gate may trip on one tiny benchmark's noise; what
        # must hold is the artifact shape and outcome stability.
        assert code in (0, 1)
        assert "Optimized vs raw attack pipeline" in captured.out
        from repro.runner.artifacts import load_artifact

        artifact = load_artifact(tmp_path / "BENCH_opt.json")
        assert artifact["meta"]["outcome_mismatches"] == []
        assert artifact["meta"]["total_no_opt_time_s"] > 0
        assert len(artifact["rows"]) == 1

    def test_opt_bench_rejects_level_zero(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["opt-bench", "--level", "0"])
