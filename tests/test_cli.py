"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "s5378", "--key-bits", "8", "--lock-seed", "3"]
        )
        assert args.benchmark == "s5378"
        assert args.key_bits == 8
        assert args.lock_seed == 3

    def test_profile_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--profile", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "s35932" in out and "b17" in out

    def test_info(self, capsys):
        assert main(["info", "s5378", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "paper flops  : 160" in out

    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        assert "success=True" in capsys.readouterr().out

    def test_attack_small(self, capsys):
        code = main(
            ["attack", "s5378", "--scale", "64", "--key-bits", "4",
             "--timeout", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "success          : True" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["info", "nope"])
