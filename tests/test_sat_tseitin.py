"""Tseitin encoding correctness: CNF models must match circuit simulation."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench_suite.generator import GeneratorConfig, generate_circuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import extract_combinational_core
from repro.sat.solver import CdclSolver
from repro.sat.tseitin import CircuitEncoder
from repro.sim.logicsim import evaluate


def single_gate_netlist(gtype: GateType, n_inputs: int) -> Netlist:
    netlist = Netlist("g")
    ins = []
    for i in range(n_inputs):
        net = f"x{i}"
        netlist.add_input(net)
        ins.append(net)
    netlist.add_gate("y", gtype, ins)
    netlist.add_output("y")
    return netlist


GATE_CASES = [
    (GateType.AND, 2), (GateType.AND, 4),
    (GateType.NAND, 2), (GateType.NAND, 3),
    (GateType.OR, 2), (GateType.OR, 4),
    (GateType.NOR, 2), (GateType.NOR, 3),
    (GateType.XOR, 2), (GateType.XOR, 3), (GateType.XOR, 5),
    (GateType.XNOR, 2), (GateType.XNOR, 4),
    (GateType.NOT, 1), (GateType.BUF, 1), (GateType.MUX, 3),
]


class TestGateEncodings:
    @pytest.mark.parametrize("gtype,n_inputs", GATE_CASES)
    def test_encoding_matches_simulation_exhaustively(self, gtype, n_inputs):
        netlist = single_gate_netlist(gtype, n_inputs)
        for bits in itertools.product([0, 1], repeat=n_inputs):
            encoder = CircuitEncoder()
            mapping = encoder.encode_netlist(netlist)
            solver = CdclSolver(encoder.cnf)
            assumptions = [
                mapping[f"x{i}"] if bit else -mapping[f"x{i}"]
                for i, bit in enumerate(bits)
            ]
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable is True
            expected = evaluate(netlist, {f"x{i}": b for i, b in enumerate(bits)})
            assert result.model[mapping["y"]] == expected["y"]

    def test_constants(self):
        netlist = Netlist("c")
        netlist.add_gate("one", GateType.CONST1, [])
        netlist.add_gate("zero", GateType.CONST0, [])
        netlist.add_output("one")
        netlist.add_output("zero")
        encoder = CircuitEncoder()
        mapping = encoder.encode_netlist(netlist)
        result = CdclSolver(encoder.cnf).solve()
        assert result.model[mapping["one"]] == 1
        assert result.model[mapping["zero"]] == 0


class TestWholeCircuitEncoding:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_circuit_encoding_matches_simulation(self, seed):
        rng = random.Random(seed)
        config = GeneratorConfig(n_flops=5, n_inputs=4, n_outputs=3)
        core, _, _ = extract_combinational_core(
            generate_circuit(config, rng, name="enc")
        )
        encoder = CircuitEncoder()
        mapping = encoder.encode_netlist(core)
        solver = CdclSolver(encoder.cnf)
        for _ in range(5):
            bits = {net: rng.randrange(2) for net in core.inputs}
            assumptions = [
                mapping[net] if bit else -mapping[net] for net, bit in bits.items()
            ]
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable is True
            expected = evaluate(core, bits)
            for net in core.outputs:
                assert result.model[mapping[net]] == expected[net]

    def test_sequential_netlist_rejected(self):
        netlist = Netlist("seq")
        netlist.add_input("a")
        netlist.add_dff("q", "a")
        with pytest.raises(ValueError):
            CircuitEncoder().encode_netlist(netlist)


class TestSharing:
    def test_alias_shares_variables(self):
        netlist = single_gate_netlist(GateType.NOT, 1)
        encoder = CircuitEncoder()
        shared = encoder.var_for("shared_key")
        encoder.alias("A::x0", shared)
        encoder.alias("B::x0", shared)
        map_a = encoder.encode_netlist(netlist, prefix="A::")
        map_b = encoder.encode_netlist(netlist, prefix="B::")
        assert map_a["x0"] == map_b["x0"] == shared
        # Outputs are distinct nets but must be logically equal.
        solver = CdclSolver(encoder.cnf)
        solver.add_clause([map_a["y"], map_b["y"]])
        solver.add_clause([-map_a["y"], -map_b["y"]])  # y_a != y_b
        assert solver.solve().satisfiable is False

    def test_alias_conflict_rejected(self):
        encoder = CircuitEncoder()
        v = encoder.var_for("a")
        w = encoder.var_for("b")
        with pytest.raises(ValueError):
            encoder.alias("a", w)
        encoder.alias("a", v)  # idempotent alias is fine
