"""Tests for the typed programmatic facade (repro.api).

The CLI tests pin that the command surface still behaves; these pin
the facade's own contract -- the one the service and external callers
program against: ValueError (not KeyError) on bad names, structured
results, and parity between facade calls and the raw building blocks.
"""

import pytest

from repro import api
from repro.reports.profiles import PROFILES, ExperimentProfile
from repro.runner.spec import JobSpec

TINY = ExperimentProfile(
    name="tiny",
    scale=64,
    key_bits=6,
    n_seeds=1,
    timeout_s=120.0,
    table3_key_sizes=(6,),
)


class TestResolveProfile:
    def test_none_uses_active(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert api.resolve_profile(None).name == "quick"
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert api.resolve_profile(None).name == "full"

    def test_name_and_instance_pass_through(self):
        assert api.resolve_profile("paper") is PROFILES["paper"]
        assert api.resolve_profile(TINY) is TINY

    def test_unknown_name_is_value_error(self):
        with pytest.raises(ValueError, match="unknown profile"):
            api.resolve_profile("huge")


class TestGridEnumeration:
    def test_grid_names_cover_the_registry(self):
        names = api.grid_names()
        for expected in ("table1", "table2", "table3", "scaling", "ablation"):
            assert expected in names

    def test_grid_specs_match_profile(self):
        specs = api.grid_specs("table2", "quick", benchmarks=["s5378"])
        assert specs
        assert all(isinstance(s, JobSpec) for s in specs)
        assert all(s.experiment == "table2" for s in specs)
        assert all(s.profile["name"] == "quick" for s in specs)
        assert {s.params["benchmark"] for s in specs} == {"s5378"}

    def test_unknown_grid_is_value_error(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            api.grid_specs("table9")
        with pytest.raises(ValueError, match="unknown experiment"):
            api.aggregate_grid("table9", [])


class TestSubmitJobs:
    def spec_of(self, payload):
        return JobSpec.make("selfcheck", TINY, payload=payload)

    def test_runs_specs_and_reports(self):
        report = api.submit_jobs([self.spec_of("a"), self.spec_of("b")])
        assert len(report.outcomes) == 2
        assert [o.result["payload"] for o in report.outcomes] == ["a", "b"]

    def test_progress_receives_strings(self):
        lines = []
        api.submit_jobs([self.spec_of("p")], progress=lines.append)
        assert lines and all(isinstance(line, str) for line in lines)

    def test_failures_land_in_report_not_raise(self, tmp_path):
        # A one-shot failing cell: the report carries the error.
        spec = JobSpec.make(
            "selfcheck", TINY, fail_marker=str(tmp_path / "m")
        )
        report = api.submit_jobs([spec])
        assert report.n_failed == 1
        assert "injected" in report.outcomes[0].error


class TestRunGrid:
    @pytest.mark.requires_numpy
    def test_run_grid_returns_structured_result(self):
        grid = api.run_grid("table2", profile="quick", benchmarks=["s5378"])
        assert grid.name == "table2"
        assert grid.headers[0] == "Benchmark"
        assert len(grid.rows) == 1
        cells = grid.as_cells()
        assert cells[0][0] == "s5378"
        assert grid.report.n_failed == 0
        # aggregate_grid over the same outcomes reproduces the rows.
        again = api.aggregate_grid("table2", grid.report.outcomes)
        assert [r.as_cells() for r in again] == cells


class TestRunAttack:
    @pytest.mark.requires_numpy
    def test_attack_small_benchmark(self):
        run = api.run_attack(
            "s5378", profile=TINY, key_bits=4, scale=64, timeout_s=120.0
        )
        assert run.success
        assert run.benchmark == "s5378"
        assert run.key_bits == 4
        assert run.n_scan_flops > 0

    def test_unknown_profile_rejected_before_work(self):
        with pytest.raises(ValueError, match="unknown profile"):
            api.run_attack("s5378", profile="huge")
